/root/repo/target/debug/deps/fig17-558f324247bcd5ac.d: crates/bench/benches/fig17.rs Cargo.toml

/root/repo/target/debug/deps/libfig17-558f324247bcd5ac.rmeta: crates/bench/benches/fig17.rs Cargo.toml

crates/bench/benches/fig17.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
