//! Configuration search: the paper's closing recommendation — "strategy-
//! aware, topology-conscious tuning of system parameters" — as an
//! executable tool.
//!
//! [`search_configs`] enumerates every feasible parallelism configuration
//! for a model × cluster pair, scores each with the fast analytic estimator
//! ([`charllm_sim::analytic`]), and fully simulates the top candidates to
//! produce a ranked list with power/thermal context.

use std::cmp::Ordering;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::enumerate::{valid_configs, EnumerateOptions};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::analytic::{estimate, AnalyticEstimate};
use charllm_sim::SimConfig;
use charllm_trace::{lower_train, DeviceHints};

use crate::cache::SimCache;
use crate::error::CoreError;
use crate::executor::Executor;
use crate::experiment::Experiment;
use crate::report::RunReport;
use crate::sweep::rank_desc;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Maximize training throughput (tokens/s).
    #[default]
    Throughput,
    /// Maximize energy efficiency (tokens/J).
    Efficiency,
}

/// One scored candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration.
    pub spec: ParallelismSpec,
    /// The fast analytic screen.
    pub analytic: AnalyticEstimate,
    /// The full simulation report (only for finalists).
    pub report: Option<RunReport>,
}

/// Search options.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// Objective to rank by.
    pub objective: Objective,
    /// How many analytically screened candidates get a full simulation.
    pub finalists: usize,
    /// Simulator configuration for the finalists.
    pub sim: SimConfig,
    /// Worker threads for the finalist simulations: `0` (the default)
    /// means one per available core, `1` simulates serially.
    pub workers: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            objective: Objective::default(),
            finalists: 3,
            sim: SimConfig::default(),
            workers: 0,
        }
    }
}

/// Enumerate, screen and rank configurations for a job on a cluster.
///
/// Returns candidates sorted best-first in two explicit tiers: the
/// simulated finalists ranked by the objective's measured metric, then
/// every remaining screened candidate ranked by its analytic throughput
/// estimate. A finalist always precedes a non-finalist — the two tiers'
/// metrics live on different scales (measured tokens/J vs estimated
/// tokens/s) and are never compared against each other.
///
/// Finalist simulations are independent, so they fan out across an
/// [`Executor`] worker pool (`opts.workers`; `1` is exactly serial) and
/// are reassembled in screening order before ranking, keeping the result
/// deterministic.
///
/// # Errors
///
/// Propagates lowering/simulation errors for finalists (the error of the
/// earliest failing finalist, independent of worker scheduling);
/// screening errors silently drop a candidate (infeasible corners are
/// expected).
pub fn search_configs(
    job: &TrainJob,
    cluster: &Cluster,
    opts: SearchOptions,
) -> Result<Vec<Candidate>, CoreError> {
    // Screening lowers every candidate; finalists are lowered again inside
    // their full simulation. Publishing the screen-phase traces into a
    // shared cache turns that second lowering into a lookup.
    search_configs_with_cache(job, cluster, opts, Arc::new(SimCache::new()))
}

/// [`search_configs`] against a caller-provided cache, so long-lived
/// holders (sweep drivers, the job server) share lowered traces and plans
/// across searches — and across concurrent sweeps — instead of rebuilding
/// them per call. A persistent cache additionally survives the process.
///
/// # Errors
///
/// See [`search_configs`].
pub fn search_configs_with_cache(
    job: &TrainJob,
    cluster: &Cluster,
    opts: SearchOptions,
    cache: Arc<SimCache>,
) -> Result<Vec<Candidate>, CoreError> {
    let specs = valid_configs(job, cluster, EnumerateOptions::default());
    let hints = DeviceHints::for_spec(cluster.gpu());
    let mut screened: Vec<Candidate> = Vec::new();
    for spec in specs {
        let Ok(partition) = StagePartition::even(job.arch.num_layers, spec.pp) else {
            continue;
        };
        let key = SimCache::lowered_key(
            job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints,
            None,
        );
        let Ok((lowered, _)) = cache.lowered(&key, || {
            lower_train(job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(CoreError::from)
        }) else {
            continue;
        };
        let Ok(placement) = Placement::identity(cluster, spec.world()) else {
            continue;
        };
        let Ok(analytic) = estimate(cluster, &placement, &lowered.trace) else {
            continue;
        };
        screened.push(Candidate {
            spec,
            analytic,
            report: None,
        });
    }
    // Analytic ranking (throughput; efficiency needs power, so the full
    // simulation refines it among the finalists). A degenerate estimate
    // (NaN) ranks last instead of panicking the comparator.
    screened.sort_by(|a, b| rank_desc(a.analytic.tokens_per_s, b.analytic.tokens_per_s));

    let n = opts.finalists.min(screened.len());
    let cluster = Arc::new(cluster.clone());
    let finalists: Vec<ParallelismSpec> = screened[..n].iter().map(|c| c.spec).collect();
    let reports = Executor::with_workers(opts.workers).run(&finalists, |_, spec| {
        Experiment::builder()
            .cluster(Arc::clone(&cluster))
            .job(job.clone())
            .spec(*spec)
            .sim_config(opts.sim)
            .cache(Arc::clone(&cache))
            .run()
    });
    for (candidate, report) in screened.iter_mut().zip(reports) {
        candidate.report = Some(report?);
    }

    // Final ranking, in two explicit tiers: simulated finalists by the
    // objective's measured metric, then screened-only candidates by their
    // analytic throughput estimate. The tiers are ordered structurally
    // (report presence), never by comparing measured against estimated
    // values.
    let objective_metric = |r: &RunReport| match opts.objective {
        Objective::Throughput => r.tokens_per_s,
        Objective::Efficiency => r.tokens_per_joule,
    };
    screened.sort_by(|a, b| match (&a.report, &b.report) {
        (Some(ra), Some(rb)) => rank_desc(objective_metric(ra), objective_metric(rb)),
        (Some(_), None) => Ordering::Less,
        (None, Some(_)) => Ordering::Greater,
        (None, None) => rank_desc(a.analytic.tokens_per_s, b.analytic.tokens_per_s),
    });
    Ok(screened)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    #[test]
    fn search_ranks_feasible_configs() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            finalists: 2,
            sim: SimConfig::fast(),
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        assert!(ranked.len() >= 2, "expected several feasible configs");
        // Finalists carry full reports and are sorted by the objective.
        assert!(ranked[0].report.is_some());
        assert!(ranked[1].report.is_some());
        let a = ranked[0].report.as_ref().unwrap().tokens_per_s;
        let b = ranked[1].report.as_ref().unwrap().tokens_per_s;
        assert!(a >= b);
    }

    #[test]
    fn finalists_reuse_screen_phase_lowering() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            finalists: 2,
            sim: SimConfig::fast(),
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        for finalist in ranked.iter().filter(|c| c.report.is_some()) {
            let stats = finalist.report.as_ref().unwrap().cache.unwrap();
            assert_eq!(
                stats.lowered_hits, 1,
                "the analytic screen already lowered every finalist"
            );
        }
    }

    #[test]
    fn efficiency_objective_uses_energy() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            objective: Objective::Efficiency,
            finalists: 2,
            sim: SimConfig::fast(),
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        let a = ranked[0].report.as_ref().unwrap().tokens_per_joule;
        let b = ranked[1].report.as_ref().unwrap().tokens_per_joule;
        assert!(a >= b);
    }

    #[test]
    fn analytic_screen_orders_like_full_sim_for_extremes() {
        // The screen must put a clearly bad config (pure DP-less deep TP on
        // one node vs balanced) below a clearly good one.
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            finalists: 0,
            sim: SimConfig::fast(),
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        assert!(!ranked.is_empty());
        let first = ranked.first().unwrap().analytic.tokens_per_s;
        let last = ranked.last().unwrap().analytic.tokens_per_s;
        assert!(first >= last);
    }

    #[test]
    fn finalist_tier_strictly_precedes_screened_tier() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let opts = SearchOptions {
            finalists: 1,
            sim: SimConfig::fast(),
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts).unwrap();
        assert!(ranked.len() > 1, "need both tiers populated");
        let boundary = ranked.iter().position(|c| c.report.is_none()).unwrap();
        assert_eq!(boundary, 1, "exactly the one finalist leads");
        assert!(
            ranked[boundary..].iter().all(|c| c.report.is_none()),
            "no simulated candidate may rank below a screened-only one"
        );
        // The screened tier keeps its analytic order.
        let analytic: Vec<f64> = ranked[boundary..]
            .iter()
            .map(|c| c.analytic.tokens_per_s)
            .collect();
        assert!(analytic.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn parallel_search_matches_serial() {
        let cluster = single_hgx_node();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let serial = SearchOptions {
            finalists: 3,
            sim: SimConfig::fast(),
            workers: 1,
            ..Default::default()
        };
        let parallel = SearchOptions {
            workers: 4,
            ..serial
        };
        let a = search_configs(&job, &cluster, serial).unwrap();
        let b = search_configs(&job, &cluster, parallel).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(
                x.report, y.report,
                "finalist reports identical across worker counts"
            );
        }
    }
}
