/root/repo/target/debug/deps/criterion_micro-21f3374f478f5a4f.d: crates/bench/benches/criterion_micro.rs

/root/repo/target/debug/deps/criterion_micro-21f3374f478f5a4f: crates/bench/benches/criterion_micro.rs

crates/bench/benches/criterion_micro.rs:
