/root/repo/target/debug/deps/charllm_hw-ac83f110cc9d97ca.d: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_hw-ac83f110cc9d97ca.rmeta: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/airflow.rs:
crates/hw/src/cluster.rs:
crates/hw/src/error.rs:
crates/hw/src/gpu.rs:
crates/hw/src/link.rs:
crates/hw/src/node.rs:
crates/hw/src/presets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
