/root/repo/target/debug/examples/moe_expert_parallelism-ba3a86369f9a29ba.d: examples/moe_expert_parallelism.rs

/root/repo/target/debug/examples/moe_expert_parallelism-ba3a86369f9a29ba: examples/moe_expert_parallelism.rs

examples/moe_expert_parallelism.rs:
