//! Run reports: one experiment's metrics in figure-ready form.

use serde::{Deserialize, Serialize};

use charllm_sim::{KernelBreakdown, SimResult};
use charllm_telemetry::{Phase, Profile};

/// The outcome of one experiment: identification metadata, the headline
/// metrics every figure plots, front-vs-rear thermal grouping (§6), and the
/// full [`SimResult`] for detailed analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Free-form label (model + config + optimizations).
    pub label: String,
    /// Cluster name (e.g. `"32xH200"`).
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Parallelism label (e.g. `"TP2-PP16"`).
    pub parallelism: String,
    /// Optimization label (`Base`, `cc`, `act`, `cc+act`, `lora`).
    pub optimization: String,
    /// Microbatch size.
    pub microbatch: usize,

    /// Mean training-step time, seconds.
    pub step_time_s: f64,
    /// Throughput, tokens/second.
    pub tokens_per_s: f64,
    /// Throughput per GPU, tokens/second/GPU.
    pub tokens_per_s_per_gpu: f64,
    /// Energy efficiency, tokens/joule.
    pub tokens_per_joule: f64,
    /// Energy per step, joules.
    pub energy_per_step_j: f64,

    /// Cluster-mean average GPU power, watts.
    pub mean_power_w: f64,
    /// Peak GPU power, watts.
    pub peak_power_w: f64,
    /// Cluster-mean average GPU temperature, °C.
    pub mean_temp_c: f64,
    /// Peak GPU temperature, °C.
    pub peak_temp_c: f64,
    /// Cluster-mean average clock, MHz.
    pub mean_freq_mhz: f64,
    /// Mean temperature of intake-row (front) GPUs, °C.
    pub front_temp_c: f64,
    /// Mean temperature of exhaust-row (rear) GPUs, °C.
    pub rear_temp_c: f64,
    /// Mean throttle residency across GPUs.
    pub mean_throttle: f64,
    /// Worst single-GPU throttle residency.
    pub max_throttle: f64,

    /// Hit/miss counts against the sweep's [`SimCache`](crate::SimCache)
    /// for this run (`None` when the experiment ran uncached).
    pub cache: Option<crate::CacheStats>,

    /// Host-side wall time per pipeline stage (`lower`, `plan_setup`,
    /// `event_loop`, `report`), recorded only when the experiment opted in
    /// via [`self_profile`](crate::ExperimentBuilder::self_profile).
    /// `None` by default so reports stay comparable across runs that did
    /// and did not profile (stage walls are host noise, not sim output).
    pub stages: Option<charllm_telemetry::StageTimings>,

    /// Full simulation result (kernel breakdowns, traffic, telemetry).
    pub sim: SimResult,
}

impl RunReport {
    /// Mean kernel-class breakdown across ranks.
    pub fn mean_kernel_time(&self) -> KernelBreakdown {
        self.sim.mean_kernel_time()
    }

    /// Rear-vs-front relative temperature gap (`(rear-front)/front`), the
    /// Fig. 17a differential.
    pub fn thermal_gap(&self) -> f64 {
        if self.front_temp_c <= 0.0 {
            0.0
        } else {
            (self.rear_temp_c - self.front_temp_c) / self.front_temp_c
        }
    }

    /// Short single-line summary for terminal output.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<28} {:>9.1} tok/s  {:>7.2} tok/J  {:>6.2}s/step  {:>5.0}W avg  {:>5.1}C peak  thr {:>4.1}%",
            format!("{} {}", self.parallelism, self.optimization),
            self.tokens_per_s,
            self.tokens_per_joule,
            self.step_time_s,
            self.mean_power_w,
            self.peak_temp_c,
            self.mean_throttle * 100.0
        )
    }

    /// Serialize to pretty JSON (for the artifact-style result files).
    ///
    /// # Panics
    ///
    /// Never panics: all fields are serializable.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }

    /// Render the run's phase attribution (per-phase table + top spans), or
    /// a one-line note when the run was not profiled.
    pub fn profile_summary(&self) -> String {
        match &self.sim.profile {
            Some(profile) => format!("{}\n{}", phase_table(profile), top_spans_table(profile, 10)),
            None => "(no profile: run with profiling enabled)".to_string(),
        }
    }
}

/// Render a cluster-level per-phase wall-time/energy table (the paper's
/// Fig. 4-style breakdown, plus the energy split across the same buckets).
pub fn phase_table(profile: &Profile) -> String {
    let total = profile.cluster_total();
    let secs = total.total_seconds().max(1e-12);
    let joules = total.total_energy_j();
    let mut out = String::from("phase            time[s]  time%   energy[J]  energy%\n");
    for phase in Phase::all() {
        let s = total.seconds(phase);
        let e = total.energy_j(phase);
        let e_pct = if joules > 0.0 {
            100.0 * e / joules
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<16} {:>8.3} {:>6.1} {:>11.1} {:>8.1}\n",
            phase.to_string(),
            s,
            100.0 * s / secs,
            e,
            e_pct,
        ));
    }
    out.push_str(&format!(
        "ranks {}  makespan {:.3}s  measured energy {:.1}J",
        profile.world(),
        profile.makespan_s,
        joules,
    ));
    out
}

/// Render the top-`k` kernels/collectives by total busy time across ranks.
pub fn top_spans_table(profile: &Profile, k: usize) -> String {
    let mut out = String::from("top spans         busy[s]   count\n");
    for span in profile.top_spans.iter().take(k) {
        out.push_str(&format!(
            "{:<16} {:>8.3} {:>7}\n",
            span.label, span.seconds, span.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            label: "x".into(),
            cluster: "32xH200".into(),
            model: "GPT3-175B".into(),
            parallelism: "TP8-PP4".into(),
            optimization: "Base".into(),
            microbatch: 1,
            step_time_s: 10.0,
            tokens_per_s: 26214.4,
            tokens_per_s_per_gpu: 819.2,
            tokens_per_joule: 1.5,
            energy_per_step_j: 170_000.0,
            mean_power_w: 520.0,
            peak_power_w: 700.0,
            mean_temp_c: 66.0,
            peak_temp_c: 84.0,
            mean_freq_mhz: 1900.0,
            front_temp_c: 62.0,
            rear_temp_c: 78.0,
            mean_throttle: 0.12,
            max_throttle: 0.4,
            cache: None,
            stages: None,
            sim: charllm_sim::SimResult {
                step_time_s: 10.0,
                iteration_times_s: vec![10.0],
                tokens_per_s: 26214.4,
                energy_per_step_j: 170_000.0,
                tokens_per_joule: 1.5,
                kernel_time: vec![],
                traffic: charllm_sim::TrafficMatrix::new(0),
                telemetry: charllm_telemetry::TelemetryStore::new(0),
                throttle_ratio: vec![],
                thermal_throttle_ratio: vec![],
                occupancy: vec![],
                sim_time_s: 30.0,
                goodput_tokens_per_s: 26214.4,
                energy_wasted_j: 0.0,
                restarts: 0,
                fault_downtime_s: 0.0,
                profile: None,
            },
        }
    }

    #[test]
    fn thermal_gap_matches_definition() {
        let r = dummy();
        assert!((r.thermal_gap() - (78.0 - 62.0) / 62.0).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_config() {
        let s = dummy().summary_line();
        assert!(s.contains("TP8-PP4"));
        assert!(s.contains("tok/s"));
    }

    #[test]
    fn json_roundtrip() {
        let r = dummy();
        let json = r.to_json();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.parallelism, r.parallelism);
        assert_eq!(back.tokens_per_s, r.tokens_per_s);
    }
}
