//! Cross-crate integration tests: the full lower → simulate → report
//! pipeline on small configurations.

use charllm::prelude::*;
use charllm_trace::InferenceConfig;

fn small_job() -> TrainJob {
    TrainJob::pretrain(gpt3_13b()).with_global_batch(8)
}

fn node() -> charllm_hw::Cluster {
    single_hgx_node()
}

#[test]
fn report_metrics_are_mutually_consistent() {
    let r = Experiment::builder()
        .cluster(node())
        .job(small_job())
        .parallelism("TP2-PP2")
        .unwrap()
        .sim_config(SimConfig::fast())
        .run()
        .unwrap();
    // Throughput, step time and token count must agree.
    let tokens = small_job().tokens_per_step() as f64;
    assert!((r.tokens_per_s * r.step_time_s - tokens).abs() / tokens < 1e-6);
    // Energy metrics agree.
    assert!((r.tokens_per_joule * r.energy_per_step_j - tokens).abs() / tokens < 1e-6);
    // Telemetry is physically sane.
    assert!(r.mean_power_w >= node().gpu().idle_w);
    assert!(r.peak_power_w <= node().gpu().tdp_w * 1.05);
    assert!(r.mean_temp_c > 25.0 && r.peak_temp_c < 95.0);
    let boost = node().gpu().boost_clock_mhz;
    assert!(r.mean_freq_mhz <= boost + 1.0);
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        Experiment::builder()
            .cluster(node())
            .job(small_job())
            .parallelism("TP4-PP2")
            .unwrap()
            .sim_config(SimConfig::fast())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.step_time_s, b.step_time_s);
    assert_eq!(a.tokens_per_joule, b.tokens_per_joule);
    assert_eq!(a.sim.throttle_ratio, b.sim.throttle_ratio);
}

#[test]
fn seeds_change_hardware_variability_but_not_structure() {
    let run = |seed| {
        Experiment::builder()
            .cluster(node())
            .job(small_job())
            .parallelism("TP2-PP2")
            .unwrap()
            .sim_config(SimConfig {
                seed,
                ..SimConfig::fast()
            })
            .run()
            .unwrap()
    };
    let a = run(1);
    let b = run(2);
    // Different silicon lottery shifts timing slightly but not wildly.
    assert_ne!(a.step_time_s, b.step_time_s);
    let rel = (a.step_time_s - b.step_time_s).abs() / a.step_time_s;
    assert!(
        rel < 0.2,
        "seed should not change results structurally: {rel}"
    );
}

#[test]
fn all_paper_models_lower_and_simulate_on_h200() {
    // Every Table 1 model runs end-to-end on its paper cluster (tiny batch).
    let cluster = hgx_h200_cluster();
    for arch in [gpt3_175b(), llama3_70b(), mixtral_8x22b(), mixtral_8x7b()] {
        let specs = paper_parallelisms(&arch, cluster.num_gpus());
        assert!(!specs.is_empty(), "{}", arch.name);
        let spec = specs[specs.len() / 2];
        let job = TrainJob::pretrain(arch.clone())
            .with_global_batch(spec.dp * 2)
            .with_recompute(true);
        let r = Experiment::builder()
            .cluster(cluster.clone())
            .job(job)
            .spec(spec)
            .sim_config(SimConfig::fast())
            .run()
            .unwrap_or_else(|e| panic!("{} {}: {e}", arch.name, spec.label()));
        assert!(r.tokens_per_s > 0.0, "{} {}", arch.name, spec.label());
    }
}

#[test]
fn thermal_imbalance_emerges_from_airflow() {
    let r = Experiment::builder()
        .cluster(node())
        .job(small_job().with_recompute(true))
        .parallelism("TP4-PP2")
        .unwrap()
        .run()
        .unwrap();
    assert!(
        r.rear_temp_c > r.front_temp_c + 5.0,
        "rear {} vs front {}",
        r.rear_temp_c,
        r.front_temp_c
    );
}

#[test]
fn uniform_cooling_removes_the_imbalance() {
    let cluster = node()
        .with_airflow(charllm_hw::AirflowLayout::uniform(8, 26.0))
        .unwrap();
    let r = Experiment::builder()
        .cluster(cluster)
        .job(small_job())
        .parallelism("TP4-PP2")
        .unwrap()
        .sim_config(SimConfig::fast())
        .run()
        .unwrap();
    // A uniform layout has no rear slots: the rear group is empty.
    assert_eq!(r.rear_temp_c, 0.0);
    // And per-GPU temperatures spread only by silicon variability.
    let means: Vec<f64> = (0..8).map(|g| r.sim.telemetry.temp(g).mean()).collect();
    let max = means.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = means.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(max - min < 6.0, "spread {max} - {min}");
}

#[test]
fn inference_is_less_communication_bound_than_training() {
    let job = TrainJob::pretrain(gpt3_13b());
    let train = Experiment::builder()
        .cluster(node())
        .job(job.clone().with_global_batch(8))
        .parallelism("TP4-PP2")
        .unwrap()
        .sim_config(SimConfig::fast())
        .run()
        .unwrap();
    let infer = Experiment::builder()
        .cluster(node())
        .job(job)
        .parallelism("TP4-PP2")
        .unwrap()
        .inference(InferenceConfig {
            batch: 4,
            prompt_len: 256,
            decode_tokens: 8,
        })
        .sim_config(SimConfig::fast())
        .run()
        .unwrap();
    // Communication *volume* per processed token is far lower in inference
    // (weights fixed: no gradient sync, no optimizer gathers).
    let bytes_per_token = |r: &charllm::RunReport, tokens: f64| -> f64 {
        (0..8).map(|g| r.sim.traffic.total(g)).sum::<f64>() / tokens
    };
    let train_tokens = 8.0 * 2048.0;
    let infer_tokens = (4 * (256 + 8)) as f64; // prefill + decode
    let t = bytes_per_token(&train, train_tokens);
    let i = bytes_per_token(&infer, infer_tokens);
    assert!(i < t, "train {t:.0} B/token vs infer {i:.0} B/token");
    // Inference also draws less average power (§7.2).
    assert!(infer.mean_power_w < train.mean_power_w);
}

#[test]
fn json_report_roundtrips_through_serde() {
    let r = Experiment::builder()
        .cluster(node())
        .job(small_job())
        .parallelism("TP2-PP2")
        .unwrap()
        .sim_config(SimConfig::fast())
        .run()
        .unwrap();
    let json = r.to_json();
    let back: charllm::RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.tokens_per_s, r.tokens_per_s);
    assert_eq!(back.sim.kernel_time.len(), r.sim.kernel_time.len());
}

#[test]
fn node_power_failure_creates_cluster_wide_stragglers() {
    // §1 anecdote: a node-level power failure made its GPUs run >4x slower,
    // stalling the whole (synchronization-heavy) pipeline.
    use charllm_hw::presets::hgx_h200_with_nodes;
    let cluster = hgx_h200_with_nodes(2);
    // A compute-bound layout so the frequency collapse dominates.
    let job = TrainJob::pretrain(gpt3_13b())
        .with_global_batch(32)
        .with_recompute(true);
    let run = |cap: Option<(u32, f64)>| {
        Experiment::builder()
            .cluster(cluster.clone())
            .job(job.clone())
            .parallelism("TP1-PP2")
            .unwrap()
            .sim_config(SimConfig {
                node_power_cap: cap,
                ..SimConfig::fast()
            })
            .run()
            .unwrap()
    };
    let healthy = run(None);
    // Starve node 0's GPUs to ~1/5 of TDP.
    let degraded = run(Some((0, 140.0)));
    assert!(
        degraded.step_time_s > 1.8 * healthy.step_time_s,
        "degraded {:.2}s vs healthy {:.2}s",
        degraded.step_time_s,
        healthy.step_time_s
    );
    // The healthy node is dragged down too (TP/PP synchronization): its
    // GPUs spend far more time waiting in communication.
    let healthy_node1_comm: f64 = (8..16)
        .map(|r| healthy.sim.kernel_time[r].comm_total())
        .sum();
    let degraded_node1_comm: f64 = (8..16)
        .map(|r| degraded.sim.kernel_time[r].comm_total())
        .sum();
    assert!(degraded_node1_comm > 1.5 * healthy_node1_comm);
}
