/root/repo/target/debug/deps/ablation_schedule-54480448e999f2bf.d: crates/bench/benches/ablation_schedule.rs

/root/repo/target/debug/deps/ablation_schedule-54480448e999f2bf: crates/bench/benches/ablation_schedule.rs

crates/bench/benches/ablation_schedule.rs:
