/root/repo/target/debug/deps/charllm-2f5e7363155b325d.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm-2f5e7363155b325d.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/insights.rs:
crates/core/src/presets.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
