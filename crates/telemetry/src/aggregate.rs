//! Summary statistics over groups of series.

use serde::{Deserialize, Serialize};

use crate::timeseries::TimeSeries;

/// Mean/peak/min summary of one series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Maximum.
    pub peak: f64,
    /// Minimum.
    pub min: f64,
}

impl SeriesSummary {
    /// Summarize a series.
    pub fn of(series: &TimeSeries) -> Self {
        SeriesSummary {
            mean: series.mean(),
            peak: series.peak(),
            min: series.min(),
        }
    }
}

/// Mean of per-series means over a group (e.g. front-row GPUs).
pub fn group_mean<'a>(series: impl Iterator<Item = &'a TimeSeries>) -> f64 {
    let means: Vec<f64> = series.map(TimeSeries::mean).collect();
    if means.is_empty() {
        0.0
    } else {
        means.iter().sum::<f64>() / means.len() as f64
    }
}

/// Relative gap between two group means: `(a - b) / b`.
///
/// Used for the paper's front-vs-rear temperature differentials ("reaching
/// up to 27 %", Fig. 17a).
pub fn relative_gap(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        0.0
    } else {
        (a - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_series() {
        let mut s = TimeSeries::new();
        s.push(0.0, 2.0);
        s.push(1.0, 4.0);
        let sum = SeriesSummary::of(&s);
        assert_eq!(sum.mean, 3.0);
        assert_eq!(sum.peak, 4.0);
        assert_eq!(sum.min, 2.0);
    }

    #[test]
    fn group_mean_averages_series_means() {
        let mut a = TimeSeries::new();
        a.push(0.0, 10.0);
        let mut b = TimeSeries::new();
        b.push(0.0, 20.0);
        assert_eq!(group_mean([&a, &b].into_iter()), 15.0);
        assert_eq!(group_mean([].into_iter()), 0.0);
    }

    #[test]
    fn relative_gap_basics() {
        assert!((relative_gap(81.0, 65.0) - 0.246).abs() < 0.001);
        assert_eq!(relative_gap(1.0, 0.0), 0.0);
    }
}
