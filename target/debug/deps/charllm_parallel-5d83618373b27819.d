/root/repo/target/debug/deps/charllm_parallel-5d83618373b27819.d: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_parallel-5d83618373b27819.rmeta: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs Cargo.toml

crates/parallel/src/lib.rs:
crates/parallel/src/enumerate.rs:
crates/parallel/src/error.rs:
crates/parallel/src/mapping.rs:
crates/parallel/src/memory.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/spec.rs:
crates/parallel/src/thermal_aware.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
