//! The execution trace: per-rank step streams plus shared collectives.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::task::{CollectiveId, CollectiveInstance, Step};

/// Metadata describing what one iteration of the trace represents.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceMeta {
    /// Human-readable label (model + parallelism + optimizations).
    pub label: String,
    /// Tokens processed per traced iteration.
    pub tokens_per_iteration: u64,
    /// Whether compute–communication overlap is enabled (the simulator
    /// applies contention slowdown to concurrent compute).
    pub cc_overlap: bool,
}

/// A complete lowered workload iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    steps: Vec<Vec<Step>>,
    collectives: Vec<CollectiveInstance>,
    meta: TraceMeta,
}

impl ExecutionTrace {
    /// Assemble a trace (normally via [`crate::TraceBuilder`]).
    pub fn new(
        steps: Vec<Vec<Step>>,
        collectives: Vec<CollectiveInstance>,
        meta: TraceMeta,
    ) -> Self {
        ExecutionTrace {
            steps,
            collectives,
            meta,
        }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.steps.len()
    }

    /// The step stream of one rank.
    pub fn steps(&self, rank: usize) -> &[Step] {
        &self.steps[rank]
    }

    /// All collective instances.
    pub fn collectives(&self) -> &[CollectiveInstance] {
        &self.collectives
    }

    /// One collective instance.
    pub fn collective(&self, id: CollectiveId) -> &CollectiveInstance {
        &self.collectives[id.index()]
    }

    /// Number of collective instances.
    pub fn num_collectives(&self) -> usize {
        self.collectives.len()
    }

    /// For each collective, how many `CollWait` steps reference it across
    /// all ranks in one iteration of the trace.
    ///
    /// The simulator uses this to retire per-iteration collective state as
    /// soon as every waiter has passed its wait: within one iteration each
    /// rank executes each of its steps exactly once, so once a collective
    /// instance is complete and `wait_counts()[c]` waits on it have been
    /// observed, no rank can ever consult that instance's state again.
    pub fn wait_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.collectives.len()];
        for steps in &self.steps {
            for step in steps {
                if let Step::CollWait { coll } = step {
                    if let Some(c) = counts.get_mut(coll.index()) {
                        *c += 1;
                    }
                }
            }
        }
        counts
    }

    /// Trace metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Total compute FLOPs across all ranks.
    pub fn total_flops(&self) -> f64 {
        self.steps
            .iter()
            .flatten()
            .map(|s| match s {
                Step::Compute { flops, .. } => *flops,
                _ => 0.0,
            })
            .sum()
    }

    /// Total collective payload bytes per rank summed over instances
    /// (useful for quick communication-volume comparisons).
    pub fn total_comm_bytes(&self) -> u64 {
        self.collectives
            .iter()
            .map(|c| c.bytes_per_rank * c.group.len() as u64)
            .sum()
    }

    /// Structural validation: every referenced collective exists, every
    /// waited collective is eventually started by someone who can start it,
    /// and every group member of a non-P2P collective arrives exactly once.
    ///
    /// Returns a list of problems (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut starts: HashMap<u32, Vec<usize>> = HashMap::new();
        for (rank, steps) in self.steps.iter().enumerate() {
            for step in steps {
                let id = match step {
                    Step::CollStart { coll } | Step::CollWait { coll } => *coll,
                    _ => continue,
                };
                if id.index() >= self.collectives.len() {
                    problems.push(format!("rank {rank} references missing collective {id:?}"));
                    continue;
                }
                if matches!(step, Step::CollStart { .. }) {
                    starts.entry(id.0).or_default().push(rank);
                }
                let inst = &self.collectives[id.index()];
                if !inst.group.contains(&rank) && !inst.eager_p2p {
                    problems.push(format!(
                        "rank {rank} participates in collective {id:?} but is not in its group"
                    ));
                }
            }
        }
        for (idx, inst) in self.collectives.iter().enumerate() {
            let arrived = starts.get(&(idx as u32)).cloned().unwrap_or_default();
            if inst.eager_p2p {
                if arrived.len() != 1 {
                    problems.push(format!(
                        "eager p2p collective {idx} has {} senders (expected 1)",
                        arrived.len()
                    ));
                }
            } else {
                let mut sorted = arrived.clone();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted != {
                    let mut g = inst.group.clone();
                    g.sort_unstable();
                    g
                } {
                    problems.push(format!(
                        "collective {idx} ({:?}) group {:?} but arrivals {:?}",
                        inst.kind, inst.group, arrived
                    ));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{CollKey, TraceBuilder};
    use crate::task::ComputeKind;
    use charllm_net::{ChunkingPolicy, CollectiveKind};

    #[test]
    fn totals() {
        let mut b = TraceBuilder::new(2);
        b.compute(0, ComputeKind::Gemm, 100.0);
        b.compute(1, ComputeKind::Attention, 50.0);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            1000,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id);
        b.blocking(1, id);
        let t = b.build(TraceMeta::default());
        assert_eq!(t.total_flops(), 150.0);
        assert_eq!(t.total_comm_bytes(), 2000);
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn wait_counts_tally_collwait_steps_per_collective() {
        let mut b = TraceBuilder::new(3);
        let ar = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            64,
            vec![0, 1, 2],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, ar);
        b.blocking(1, ar);
        b.blocking(2, ar);
        let p2p = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            64,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, p2p); // eager sender never waits
        b.wait(1, p2p);
        let t = b.build(TraceMeta::default());
        assert_eq!(t.num_collectives(), 2);
        assert_eq!(t.wait_counts(), vec![3, 1]);
    }

    #[test]
    fn validation_flags_missing_arrivals() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            8,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id); // rank 1 never arrives
        let t = b.build(TraceMeta::default());
        assert!(!t.validate().is_empty());
    }

    #[test]
    fn validation_accepts_eager_p2p_receiver_wait() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            8,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, id); // sender
        b.wait(1, id); // receiver
        let t = b.build(TraceMeta::default());
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn validation_flags_two_senders_on_p2p() {
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            8,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.start(0, id);
        b.start(1, id);
        let t = b.build(TraceMeta::default());
        assert!(!t.validate().is_empty());
    }
}
