/root/repo/target/debug/deps/charllm_ppt-1307b23fb0fcffc4.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_ppt-1307b23fb0fcffc4.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
