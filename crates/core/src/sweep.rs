//! Configuration sweeps: run many experiments and collect reports.

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::ParallelismSpec;
use charllm_sim::SimConfig;

use crate::error::CoreError;
use crate::experiment::Experiment;
use crate::report::RunReport;

/// A cartesian sweep over parallelism specs, optimization variants and
/// microbatch sizes for one model on one cluster.
#[derive(Debug, Clone)]
pub struct Sweep {
    cluster: Cluster,
    base_job: TrainJob,
    specs: Vec<ParallelismSpec>,
    jobs_per_spec: Vec<TrainJob>,
    microbatches: Vec<usize>,
    sim: SimConfig,
    skip_failures: bool,
}

impl Sweep {
    /// A sweep of `specs` for one job on a cluster.
    pub fn new(cluster: Cluster, job: TrainJob, specs: Vec<ParallelismSpec>) -> Self {
        Sweep {
            cluster,
            jobs_per_spec: vec![job.clone()],
            base_job: job,
            specs,
            microbatches: vec![1],
            sim: SimConfig::default(),
            skip_failures: true,
        }
    }

    /// Replace the job variants (e.g. the Base/cc/act/cc+act set).
    pub fn with_job_variants(mut self, jobs: Vec<TrainJob>) -> Self {
        self.jobs_per_spec = jobs;
        self
    }

    /// Microbatch sizes to sweep.
    pub fn with_microbatches(mut self, microbatches: Vec<usize>) -> Self {
        self.microbatches = microbatches;
        self
    }

    /// Simulator configuration for every run.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Fail the whole sweep on the first error instead of skipping
    /// infeasible points.
    pub fn strict(mut self) -> Self {
        self.skip_failures = false;
        self
    }

    /// Execute every point of the sweep.
    ///
    /// # Errors
    ///
    /// In strict mode, the first point failure aborts the sweep; otherwise
    /// failing points are skipped (infeasible geometry is expected when
    /// sweeping broadly).
    pub fn run(&self) -> Result<Vec<RunReport>, CoreError> {
        let mut out = Vec::new();
        for spec in &self.specs {
            for job in &self.jobs_per_spec {
                for &mb in &self.microbatches {
                    let job = job.clone().with_microbatch(mb);
                    let result = Experiment::builder()
                        .cluster(self.cluster.clone())
                        .job(job)
                        .spec(*spec)
                        .sim_config(self.sim)
                        .run();
                    match result {
                        Ok(report) => out.push(report),
                        Err(e) if self.skip_failures => {
                            eprintln!("sweep: skipping {} ({e})", spec.label());
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(out)
    }

    /// The base job the sweep was constructed with.
    pub fn base_job(&self) -> &TrainJob {
        &self.base_job
    }
}

/// The best report by a metric (higher is better).
pub fn best_by<'a>(
    reports: &'a [RunReport],
    metric: impl Fn(&RunReport) -> f64,
) -> Option<&'a RunReport> {
    reports.iter().max_by(|a, b| {
        metric(a).partial_cmp(&metric(b)).expect("metrics are finite")
    })
}

/// Normalize a metric across reports to the best value (the paper's
/// "efficiency normalized per model, best = 1").
pub fn normalized<'a>(
    reports: &'a [RunReport],
    metric: impl Fn(&RunReport) -> f64 + 'a,
) -> impl Iterator<Item = (&'a RunReport, f64)> + 'a {
    let best = reports.iter().map(&metric).fold(f64::NEG_INFINITY, f64::max);
    reports.iter().map(move |r| {
        let v = metric(r);
        (r, if best > 0.0 { v / best } else { 0.0 })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    #[test]
    fn sweep_runs_multiple_specs() {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = Sweep::new(single_hgx_node(), job, specs)
            .with_sim_config(SimConfig::fast())
            .run()
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0].parallelism, reports[1].parallelism);
    }

    #[test]
    fn infeasible_points_skipped() {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        // PP=16 does not divide into 8 GPUs with TP2: invalid world.
        let specs = vec![
            ParallelismSpec::new(2, 16, 1, 1, false).unwrap(),
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
        ];
        let reports = Sweep::new(single_hgx_node(), job, specs)
            .with_sim_config(SimConfig::fast())
            .run()
            .unwrap();
        assert_eq!(reports.len(), 1, "bad point skipped, good one kept");
    }

    #[test]
    fn strict_mode_propagates_errors() {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        let specs = vec![ParallelismSpec::new(2, 16, 1, 1, false).unwrap()];
        let err = Sweep::new(single_hgx_node(), job, specs)
            .with_sim_config(SimConfig::fast())
            .strict()
            .run();
        assert!(err.is_err());
    }

    #[test]
    fn normalization_maps_best_to_one() {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = Sweep::new(single_hgx_node(), job, specs)
            .with_sim_config(SimConfig::fast())
            .run()
            .unwrap();
        let values: Vec<f64> =
            normalized(&reports, |r| r.tokens_per_joule).map(|(_, v)| v).collect();
        assert!(values.iter().cloned().fold(0.0, f64::max) == 1.0);
        assert!(values.iter().all(|&v| v > 0.0 && v <= 1.0));
    }
}
