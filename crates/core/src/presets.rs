//! Paper-configuration presets: the parallelism shapes each figure sweeps.

use charllm_hw::{Cluster, GpuModel, NodeLayout};
use charllm_models::{TrainJob, TransformerArch};
use charllm_parallel::ParallelismSpec;

/// A single HGX H200 node (8 GPUs) — handy for tests and the quickstart.
pub fn single_hgx_node() -> Cluster {
    Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1)
        .expect("preset node is statically valid")
}

/// The parallelism configurations the paper sweeps for a model, instantiated
/// for a cluster of `world` GPUs (leftover capacity becomes DP, matching
/// §3.1). Shapes that do not divide the model's layers/heads/experts or the
/// world size are dropped.
pub fn paper_parallelisms(arch: &TransformerArch, world: usize) -> Vec<ParallelismSpec> {
    // (ep, tp, pp) model-parallel shapes per model family.
    let shapes: Vec<(usize, usize, usize)> = match &arch.moe {
        Some(moe) if moe.num_experts >= 8 => {
            vec![(8, 4, 1), (8, 2, 2), (8, 1, 4), (4, 2, 4), (2, 8, 2)]
        }
        Some(_) => vec![(4, 4, 1), (4, 2, 2), (4, 1, 4), (2, 2, 4)],
        None if arch.num_layers >= 96 => {
            vec![(1, 8, 4), (1, 4, 8), (1, 2, 16), (1, 1, 32)]
        }
        None if arch.num_layers >= 80 => vec![(1, 8, 1), (1, 8, 2), (1, 4, 4), (1, 2, 8)],
        None if arch.num_layers >= 48 => vec![(1, 8, 2), (1, 4, 4), (1, 2, 8), (1, 1, 16)],
        None => vec![(1, 8, 1), (1, 4, 2), (1, 2, 4), (1, 1, 8)],
    };
    let mut out = Vec::new();
    for (ep, tp, pp) in shapes {
        if !arch.num_layers.is_multiple_of(pp)
            || !arch.num_heads.is_multiple_of(tp)
            || !arch.num_kv_heads.is_multiple_of(tp)
        {
            continue;
        }
        if let Some(moe) = &arch.moe {
            if moe.num_experts % ep != 0 {
                continue;
            }
        } else if ep > 1 {
            continue;
        }
        if let Ok(spec) = ParallelismSpec::infer_dp(tp, pp, ep, world, false) {
            out.push(spec);
        }
    }
    // The TP8-FSDP 2D configuration, for dense models with capacity left.
    if !arch.is_moe()
        && world > 8
        && arch.num_heads.is_multiple_of(8)
        && arch.num_kv_heads.is_multiple_of(8)
    {
        if let Ok(spec) = ParallelismSpec::new(8, 1, 1, world / 8, true) {
            out.push(spec);
        }
    }
    out
}

/// The paper's optimization variants in figure order: `Base`, `cc`, `act`,
/// `cc+act`, applied to a base job.
pub fn optimization_variants(job: &TrainJob) -> Vec<TrainJob> {
    vec![
        job.clone().with_cc_overlap(false).with_recompute(false),
        job.clone().with_cc_overlap(true).with_recompute(false),
        job.clone().with_cc_overlap(false).with_recompute(true),
        job.clone().with_cc_overlap(true).with_recompute(true),
    ]
}

/// The microbatch sizes the Fig. 13/14 sweeps use.
pub const MICROBATCH_SWEEP: [usize; 3] = [1, 2, 4];

/// The models evaluated on the NVIDIA clusters (Fig. 2).
pub fn nvidia_models() -> Vec<TransformerArch> {
    vec![
        charllm_models::presets::gpt3_175b(),
        charllm_models::presets::llama3_70b(),
        charllm_models::presets::mixtral_8x22b(),
        charllm_models::presets::mixtral_8x7b(),
    ]
}

/// The scaled-down models evaluated on the MI250 cluster.
pub fn amd_models() -> Vec<TransformerArch> {
    vec![
        charllm_models::presets::gpt3_30b(),
        charllm_models::presets::llama3_30b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_models::presets as models;

    #[test]
    fn gpt3_175b_configs_match_paper() {
        let labels: Vec<String> = paper_parallelisms(&models::gpt3_175b(), 32)
            .iter()
            .map(|s| s.label())
            .collect();
        for expect in ["TP8-PP4", "TP4-PP8", "TP2-PP16", "TP1-PP32", "TP8-FSDP4"] {
            assert!(
                labels.contains(&expect.to_string()),
                "{labels:?} missing {expect}"
            );
        }
    }

    #[test]
    fn mixtral_configs_include_ep8_tp1_pp4() {
        let labels: Vec<String> = paper_parallelisms(&models::mixtral_8x22b(), 32)
            .iter()
            .map(|s| s.label())
            .collect();
        assert!(labels.contains(&"EP8-TP1-PP4".to_string()), "{labels:?}");
        assert!(
            labels.iter().all(|l| !l.contains("FSDP")),
            "no FSDP for MoE"
        );
    }

    #[test]
    fn all_configs_fill_world() {
        for arch in nvidia_models() {
            for world in [32usize, 64] {
                for spec in paper_parallelisms(&arch, world) {
                    assert_eq!(spec.world(), world, "{} {}", arch.name, spec);
                }
            }
        }
    }

    #[test]
    fn llama_includes_dp_heavy_config() {
        let specs = paper_parallelisms(&models::llama3_70b(), 32);
        assert!(
            specs.iter().any(|s| s.pp == 1 && !s.fsdp && s.dp >= 4),
            "{specs:?}"
        );
    }

    #[test]
    fn amd_models_are_30b_scale() {
        for arch in amd_models() {
            let p = arch.total_params() as f64;
            assert!((25e9..35e9).contains(&p), "{}: {p:e}", arch.name);
            assert!(!paper_parallelisms(&arch, 32).is_empty());
        }
    }

    #[test]
    fn optimization_variants_cover_the_four_labels() {
        let job = TrainJob::pretrain(models::gpt3_175b());
        let labels: Vec<String> = optimization_variants(&job)
            .iter()
            .map(|j| j.optim.label())
            .collect();
        assert_eq!(labels, vec!["Base", "cc", "act", "cc+act"]);
    }

    #[test]
    fn single_node_preset() {
        assert_eq!(single_hgx_node().num_gpus(), 8);
    }
}
