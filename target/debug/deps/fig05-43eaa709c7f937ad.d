/root/repo/target/debug/deps/fig05-43eaa709c7f937ad.d: crates/bench/benches/fig05.rs Cargo.toml

/root/repo/target/debug/deps/libfig05-43eaa709c7f937ad.rmeta: crates/bench/benches/fig05.rs Cargo.toml

crates/bench/benches/fig05.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
