/root/repo/target/debug/deps/parallel_executor-2cc5b94fbc28d3bb.d: tests/parallel_executor.rs

/root/repo/target/debug/deps/parallel_executor-2cc5b94fbc28d3bb: tests/parallel_executor.rs

tests/parallel_executor.rs:
