//! The event-driven work-progress simulation engine.
//!
//! Semantically this engine is the scan-based [`crate::ReferenceSimulator`]
//! (the seed engine, kept as the executable spec); structurally it replaces
//! every per-event global recomputation with incremental state:
//!
//! - **Collective plan cache** — `lower_collective` + route resolution are
//!   pure functions of `(CollectiveId, placement, cluster)`, so each
//!   collective is lowered once into a `CollPlan` of flows with
//!   precomputed routes, work, payload ratios, and per-flow *charge lists*
//!   of `(gpu, LinkClass)` telemetry owners (replacing the per-event
//!   per-route ownership `match`).
//! - **Incremental link loads** — `link_load` is updated on flow
//!   launch/retire instead of being rebuilt from all flows × routes in
//!   every `next_dt`; per-flow bottleneck rates are cached and invalidated
//!   by a load-epoch counter.
//! - **Waiter wake-lists** — completing collectives wake exactly their
//!   registered waiters and completing computes re-enqueue only their own
//!   rank, instead of re-scanning every rank per event. The two-queue
//!   drain (`ready_now` min-heap + `ready_next`) reproduces the reference
//!   scan order exactly; see the queue fields for the invariant.
//! - **CollState pruning** — per-`(iteration, collective)` bookkeeping is
//!   retired as soon as the collective is complete and every `CollWait`
//!   that references it has passed, bounding the map to the in-flight
//!   iteration window.
//!
//! Results are byte-identical to the reference engine; the golden tests in
//! `tests/engine_golden.rs` enforce this on serialized [`SimResult`]s.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use charllm_hw::{Cluster, GpuId, LinkClass};
use charllm_net::{lower_collective, ArenaItem, LinkHealth, SliceArena, SliceRef};
use charllm_parallel::Placement;
use charllm_telemetry::metrics::{Gauge, MetricsShard};
use charllm_telemetry::{phase, GpuSample, SpanRecorder, TelemetryStore};
use charllm_thermal::{GovernorConfig, GpuThermal, GpuVariability, ThermalSpec};
use charllm_trace::{ExecutionTrace, KernelClass, Step};

use crate::accrual;
use crate::arena::{FlowArena, MAX_ROUTE_LINKS};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::fault::{FaultEvent, FaultPlan, RecoveryPolicy};
use crate::observer::{NoopObserver, SimObserver, TaskKind};
use crate::result::{KernelBreakdown, OccupancyStats, SimResult, TrafficMatrix};

/// What a rank is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RankMode {
    /// Ready to process its next step.
    Ready,
    /// Running a compute kernel.
    Computing {
        kind: charllm_trace::ComputeKind,
        remaining_flops: f64,
    },
    /// Blocked on a collective.
    Waiting { coll: u32 },
    /// All iterations done.
    Finished,
}

#[derive(Debug)]
struct RankState {
    gpu: GpuId,
    step_idx: usize,
    iteration: usize,
    mode: RankMode,
}

#[derive(Debug, Default)]
struct CollState {
    arrived: u32,
    launched: bool,
    flows_remaining: u32,
    complete: bool,
    /// `CollWait`s that have passed this instance (immediately or via a
    /// wake); once it reaches the trace-wide wait count the entry is dead.
    waits_passed: u32,
    /// Ranks blocked in `CollWait` on this instance, woken on completion.
    waiters: Vec<usize>,
}

impl CollState {
    /// Reset for a fresh instance, keeping the waiter list's allocation.
    fn reset(&mut self) {
        self.arrived = 0;
        self.launched = false;
        self.flows_remaining = 0;
        self.complete = false;
        self.waits_passed = 0;
        self.waiters.clear();
    }
}

/// One parity slot of the flat collective-state slab. Live instances of a
/// collective id are at most two iterations apart (a rank can only run
/// ahead of a group peer by the in-flight iteration window the trace's
/// waits enforce), so `[coll][iteration & 1]` addresses every live
/// instance with a dense array instead of a hash map. `arrive` asserts the
/// invariant on every miss.
#[derive(Debug, Default)]
struct CollSlot {
    iter: u32,
    live: bool,
    state: CollState,
}

/// One flow of a cached collective plan in its *portable* form: fixed
/// inline arrays sized by [`MAX_ROUTE_LINKS`] (the longest route any preset
/// topology produces: pcie → nic → leaf → spine → leaf → nic → pcie on a
/// rail-fabric cluster). This is the cross-process representation —
/// persisted through the packed [`PlanSetSnapshot`] encoding (every field
/// an integer or an `f64` printed shortest-roundtrip, so a snapshot reloads
/// bit-exact) and shared through [`SharedPlans`]. At install time each
/// `PlanFlow` is interned into the engine's route/charge arenas as a
/// [`PlanFlowRef`], which is what the hot loops read.
#[derive(Debug, Clone, Copy)]
struct PlanFlow {
    /// Effective work in byte-equivalents (payload + overhead).
    work: f64,
    /// Payload bytes per unit of work.
    payload_ratio: f64,
    src: GpuId,
    dst: GpuId,
    route_len: u8,
    /// Link indices along the route.
    links: [u32; MAX_ROUTE_LINKS],
    /// Per-link `bw_gbps * 1e9`, premultiplied so the rate loop divides
    /// the exact product the reference engine computes.
    bw1e9: [f64; MAX_ROUTE_LINKS],
    /// Per-link load multiplier. Always 1 in an unfolded run. A
    /// symmetry-folded run simulates one replica's intra-replica flows and
    /// stands them in for all `D` replicas' load on *shared* (switch-tier)
    /// links by attaching/detaching `D` load units there; replica-private
    /// links (NVLink, PCIe, NIC) keep 1.
    mult: [u16; MAX_ROUTE_LINKS],
    /// Telemetry/traffic owners along the route, in charge order: the
    /// `(gpu index, link class)` pairs for which the reference engine's
    /// per-link ownership match returns true.
    charge_len: u8,
    charge_gpu: [u32; MAX_ROUTE_LINKS],
    charge_class: [LinkClass; MAX_ROUTE_LINKS],
}

/// A collective lowered once: reused for every launch of its id.
#[derive(Debug, Clone)]
pub(crate) struct CollPlan {
    flows: Box<[PlanFlow]>,
}

/// A thread-safe set of collective plans shared across simulator runs.
///
/// Plans are pure functions of `(cluster, placement, trace)`: lowering a
/// collective resolves routes, effective work and telemetry charge lists
/// from topology and rank→GPU assignment alone. A `SharedPlans` built for
/// one such triple can therefore seed any number of simulators replaying
/// the same triple — each run clones ready-made plans into its local cache
/// instead of re-lowering every collective (counted in
/// [`EngineStats::shared_plan_hits`]), and publishes the plans it does
/// build for later runs.
///
/// Plans are keyed by `CollectiveId`, i.e. by position in the trace.
/// Sharing a plan set across *different* traces (or a different cluster or
/// placement) would silently misroute flows, so [`Simulator`] rejects a
/// set whose size disagrees with the trace and callers are expected to key
/// shared sets by the full triple (see `charllm-core`'s `SimCache`).
#[derive(Debug, Default)]
pub struct SharedPlans {
    plans: Vec<OnceLock<CollPlan>>,
}

impl SharedPlans {
    /// An empty plan set sized for `trace`: one slot per collective, each
    /// built at most once across every simulator sharing the set.
    pub fn for_trace(trace: &ExecutionTrace) -> Self {
        SharedPlans {
            plans: (0..trace.num_collectives())
                .map(|_| OnceLock::new())
                .collect(),
        }
    }

    /// Slots in the set (the trace's collective count).
    pub fn num_collectives(&self) -> usize {
        self.plans.len()
    }

    /// Slots whose plan has been built and published.
    pub fn num_built(&self) -> usize {
        self.plans.iter().filter(|p| p.get().is_some()).count()
    }

    /// The published plan for collective `ci`, if any (cloned: plans are
    /// small route tables, and the local cache wants them inline).
    fn get(&self, ci: usize) -> Option<CollPlan> {
        self.plans[ci].get().cloned()
    }

    /// Publish a freshly built plan; first writer wins, later ones no-op
    /// (every builder of the same slot produces identical bits).
    fn put(&self, ci: usize, plan: &CollPlan) {
        let _ = self.plans[ci].set(plan.clone());
    }

    /// A serializable copy of the set's current contents: built slots carry
    /// their flows, unbuilt slots are `None`. Plans are pure functions of
    /// `(cluster, placement, trace)`, so a snapshot taken after a run can
    /// seed any later process replaying the same triple (see
    /// `charllm-core`'s persistent `SimCache` tier).
    pub fn snapshot(&self) -> PlanSetSnapshot {
        PlanSetSnapshot {
            plans: self
                .plans
                .iter()
                .map(|slot| {
                    slot.get().map(|p| PlanEntry {
                        flows: p.flows.to_vec(),
                    })
                })
                .collect(),
        }
    }

    /// Rebuild a plan set from a [`snapshot`](SharedPlans::snapshot):
    /// `Some` slots come back published, `None` slots come back empty (a
    /// simulator replaying the triple builds and republishes them).
    pub fn from_snapshot(snap: &PlanSetSnapshot) -> Self {
        SharedPlans {
            plans: snap
                .plans
                .iter()
                .map(|entry| {
                    let slot = OnceLock::new();
                    if let Some(e) = entry {
                        let _ = slot.set(CollPlan {
                            flows: e.flows.clone().into_boxed_slice(),
                        });
                    }
                    slot
                })
                .collect(),
        }
    }
}

/// The disk form of a [`SharedPlans`] set: built slots in collective-id
/// order, `None` where no simulator has lowered the collective yet. See
/// [`SharedPlans::snapshot`] / [`SharedPlans::from_snapshot`].
///
/// Serialized by hand into a packed form — `{"n": slots, "built":
/// [[slot, "flows"], ...]}` where each built slot's flows are one
/// whitespace/`;`-delimited numeric string — instead of the derived
/// object-per-flow layout. A 32-GPU MoE plan set is tens of thousands of
/// flows; packing them into strings shrinks the file ~10x and lets the
/// JSON layer move each plan as a single bulk string instead of building
/// a `Value` node per field, which is what makes a disk-tier load cheap
/// enough to beat re-lowering. Floats print shortest-roundtrip, so the
/// packed form is still bit-exact.
#[derive(Debug, Clone)]
pub struct PlanSetSnapshot {
    plans: Vec<Option<PlanEntry>>,
}

/// One built slot of a [`PlanSetSnapshot`].
#[derive(Debug, Clone)]
struct PlanEntry {
    flows: Vec<PlanFlow>,
}

/// `LinkClass` codes for the packed flow encoding (stable on disk; extend
/// only by appending).
fn link_class_code(class: LinkClass) -> u64 {
    match class {
        LinkClass::NvLink => 0,
        LinkClass::XgmiPackage => 1,
        LinkClass::XgmiPort => 2,
        LinkClass::Pcie => 3,
        LinkClass::Nic => 4,
        LinkClass::Switch => 5,
    }
}

fn link_class_of(code: u64) -> Result<LinkClass, serde::Error> {
    Ok(match code {
        0 => LinkClass::NvLink,
        1 => LinkClass::XgmiPackage,
        2 => LinkClass::XgmiPort,
        3 => LinkClass::Pcie,
        4 => LinkClass::Nic,
        5 => LinkClass::Switch,
        other => return Err(serde::Error::custom(format!("bad link class code {other}"))),
    })
}

/// Shared float dictionary for the packed encoding: flows carry u32
/// indices into it instead of printed floats. Distinct float values in a
/// plan set number in the hundreds (collective sizes × link bandwidths)
/// against tens of thousands of flows, and integer tokens both shrink
/// the file and parse several times faster than `f64` text.
#[derive(Default)]
struct FloatDict {
    values: Vec<f64>,
    index: std::collections::HashMap<u64, u32>,
}

impl FloatDict {
    fn intern(&mut self, v: f64) -> u32 {
        *self.index.entry(v.to_bits()).or_insert_with(|| {
            self.values.push(v);
            (self.values.len() - 1) as u32
        })
    }
}

/// Pack one plan's flows:
/// `work pr src dst rl links*rl bw*rl mult*rl cl gpu*cl class*cl` per
/// flow (`work`/`pr`/`bw` as [`FloatDict`] indices), flows joined with
/// `;`.
fn pack_flows(flows: &[PlanFlow], dict: &mut FloatDict) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (i, f) in flows.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        let (rl, cl) = (f.route_len as usize, f.charge_len as usize);
        let _ = write!(
            out,
            "{} {} {} {} {rl}",
            dict.intern(f.work),
            dict.intern(f.payload_ratio),
            f.src.0,
            f.dst.0
        );
        for l in 0..rl {
            let _ = write!(out, " {}", f.links[l]);
        }
        for l in 0..rl {
            let _ = write!(out, " {}", dict.intern(f.bw1e9[l]));
        }
        for l in 0..rl {
            let _ = write!(out, " {}", f.mult[l]);
        }
        let _ = write!(out, " {cl}");
        for l in 0..cl {
            let _ = write!(out, " {}", f.charge_gpu[l]);
        }
        for l in 0..cl {
            let _ = write!(out, " {}", link_class_code(f.charge_class[l]));
        }
    }
    out
}

fn unpack_flows(text: &str, floats: &[f64]) -> Result<Vec<PlanFlow>, serde::Error> {
    fn next<'a>(t: &mut impl Iterator<Item = &'a str>) -> Result<&'a str, serde::Error> {
        t.next()
            .ok_or_else(|| serde::Error::custom("truncated packed flow"))
    }
    fn num<T: std::str::FromStr>(tok: &str) -> Result<T, serde::Error> {
        tok.parse()
            .map_err(|_| serde::Error::custom(format!("bad packed-flow token {tok:?}")))
    }
    let float_at = |i: u32| -> Result<f64, serde::Error> {
        floats
            .get(i as usize)
            .copied()
            .ok_or_else(|| serde::Error::custom(format!("float index {i} out of range")))
    };
    if text.is_empty() {
        return Ok(Vec::new());
    }
    let mut flows = Vec::new();
    for chunk in text.split(';') {
        let mut t = chunk.split_ascii_whitespace();
        let mut flow = PlanFlow {
            work: float_at(num(next(&mut t)?)?)?,
            payload_ratio: float_at(num(next(&mut t)?)?)?,
            src: GpuId(num(next(&mut t)?)?),
            dst: GpuId(num(next(&mut t)?)?),
            route_len: 0,
            links: [0; MAX_ROUTE_LINKS],
            bw1e9: [0.0; MAX_ROUTE_LINKS],
            mult: [1; MAX_ROUTE_LINKS],
            charge_len: 0,
            charge_gpu: [0; MAX_ROUTE_LINKS],
            charge_class: [LinkClass::Nic; MAX_ROUTE_LINKS],
        };
        let rl: usize = num(next(&mut t)?)?;
        if rl > MAX_ROUTE_LINKS {
            return Err(serde::Error::custom(format!("route length {rl} too long")));
        }
        flow.route_len = rl as u8;
        for l in 0..rl {
            flow.links[l] = num(next(&mut t)?)?;
        }
        for l in 0..rl {
            flow.bw1e9[l] = float_at(num(next(&mut t)?)?)?;
        }
        for l in 0..rl {
            flow.mult[l] = num(next(&mut t)?)?;
        }
        let cl: usize = num(next(&mut t)?)?;
        if cl > MAX_ROUTE_LINKS {
            return Err(serde::Error::custom(format!("charge length {cl} too long")));
        }
        flow.charge_len = cl as u8;
        for l in 0..cl {
            flow.charge_gpu[l] = num(next(&mut t)?)?;
        }
        for l in 0..cl {
            flow.charge_class[l] = link_class_of(num(next(&mut t)?)?)?;
        }
        if t.next().is_some() {
            return Err(serde::Error::custom("trailing tokens in packed flow"));
        }
        flows.push(flow);
    }
    Ok(flows)
}

impl serde::Serialize for PlanSetSnapshot {
    fn serialize_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert(
            "n",
            serde::Value::Number(serde::Number::from_u64(self.plans.len() as u64)),
        );
        let mut dict = FloatDict::default();
        let built: Vec<serde::Value> = self
            .plans
            .iter()
            .enumerate()
            .filter_map(|(i, entry)| entry.as_ref().map(|e| (i, e)))
            .map(|(i, e)| {
                serde::Value::Array(vec![
                    serde::Value::Number(serde::Number::from_u64(i as u64)),
                    serde::Value::String(pack_flows(&e.flows, &mut dict)),
                ])
            })
            .collect();
        let floats = dict
            .values
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        map.insert("floats", serde::Value::String(floats));
        map.insert("built", serde::Value::Array(built));
        serde::Value::Object(map)
    }
}

impl serde::Deserialize for PlanSetSnapshot {
    fn deserialize_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let n = v
            .get("n")
            .and_then(serde::Value::as_number)
            .and_then(serde::Number::to_u64)
            .ok_or_else(|| serde::Error::custom("plan snapshot: missing slot count"))?
            as usize;
        let built = v
            .get("built")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| serde::Error::custom("plan snapshot: missing built list"))?;
        let floats = v
            .get("floats")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| serde::Error::custom("plan snapshot: missing float table"))?
            .split_ascii_whitespace()
            .map(|tok| {
                tok.parse::<f64>()
                    .map_err(|_| serde::Error::custom(format!("plan snapshot: bad float {tok:?}")))
            })
            .collect::<Result<Vec<f64>, serde::Error>>()?;
        let mut plans: Vec<Option<PlanEntry>> = vec![None; n];
        for slot in built {
            let pair = slot
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| serde::Error::custom("plan snapshot: bad built entry"))?;
            let idx = pair[0]
                .as_number()
                .and_then(serde::Number::to_u64)
                .ok_or_else(|| serde::Error::custom("plan snapshot: bad slot index"))?
                as usize;
            let text = pair[1]
                .as_str()
                .ok_or_else(|| serde::Error::custom("plan snapshot: bad flow string"))?;
            let entry = plans
                .get_mut(idx)
                .ok_or_else(|| serde::Error::custom("plan snapshot: slot out of range"))?;
            *entry = Some(PlanEntry {
                flows: unpack_flows(text, &floats)?,
            });
        }
        Ok(PlanSetSnapshot { plans })
    }
}

impl PlanSetSnapshot {
    /// Slots in the snapshot (the trace's collective count).
    pub fn num_collectives(&self) -> usize {
        self.plans.len()
    }

    /// Slots carrying a built plan.
    pub fn num_built(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }
}

/// One hop of an interned route: the link index, its fair-share bandwidth
/// numerator (`bw_gbps * 1e9`, premultiplied so the rate loop divides the
/// exact product the reference engine computes) and the folded load
/// multiplier. Routes live deduplicated in a [`SliceArena`]; launching a
/// flow stores a [`SliceRef`]-sized handle instead of copying hop arrays.
#[derive(Debug, Clone, Copy)]
struct RouteHop {
    link: u32,
    mult: u16,
    bw1e9: f64,
}

impl ArenaItem for RouteHop {
    fn key_bits(&self) -> u64 {
        (u64::from(self.link) << 16 | u64::from(self.mult)) ^ self.bw1e9.to_bits().rotate_left(17)
    }

    fn same(&self, other: &Self) -> bool {
        self.link == other.link
            && self.mult == other.mult
            && self.bw1e9.to_bits() == other.bw1e9.to_bits()
    }
}

/// One telemetry/traffic charge of an interned charge list: the owning GPU
/// and the link class its payload is booked under.
#[derive(Debug, Clone, Copy)]
struct ChargeItem {
    gpu: u32,
    class: LinkClass,
}

impl ArenaItem for ChargeItem {
    fn key_bits(&self) -> u64 {
        u64::from(self.gpu) << 8 | link_class_code(self.class)
    }

    fn same(&self, other: &Self) -> bool {
        self.gpu == other.gpu && self.class == other.class
    }
}

/// One flow of an *installed* collective plan: the arena-resident form the
/// hot loops read. 40 bytes against [`PlanFlow`]'s ~280: the route and
/// charge arrays collapse to [`SliceRef`] handles into the engine's shared
/// [`SliceArena`]s, so launching a flow is a few index writes and the
/// per-event rate loop walks a deduplicated hop slice instead of inline
/// copies.
#[derive(Debug, Clone, Copy)]
struct PlanFlowRef {
    /// Effective work in byte-equivalents (payload + overhead).
    work: f64,
    /// Payload bytes per unit of work.
    payload_ratio: f64,
    src: u32,
    dst: u32,
    route: SliceRef,
    charges: SliceRef,
}

/// An installed plan: a contiguous run of [`PlanFlowRef`]s in the engine's
/// `plan_flows` arena (plans are installed append-only, once per collective
/// id per run).
#[derive(Debug, Clone, Copy)]
struct PlanRange {
    start: u32,
    len: u32,
}

/// The bottleneck fair-share rate of the flow in `slot`: the min over its
/// route hops of `health × bw / load`. A pure function of frozen loads and
/// link health — free of `&mut` state — so dirty batches can be rated on
/// any worker in any order and still produce the exact bits the serial
/// path produces (write-back order is what stays serial).
#[inline]
fn flow_rate(
    slot: usize,
    pf_of: &[u32],
    plan_flows: &[PlanFlowRef],
    route_arena: &SliceArena<RouteHop>,
    link_load: &[u32],
    link_health: &LinkHealth,
) -> f64 {
    let pf = plan_flows[pf_of[slot] as usize];
    let mut rate = f64::INFINITY;
    for hop in route_arena.get(pf.route) {
        let load = link_load[hop.link as usize].max(1) as f64;
        rate = rate.min(link_health.scale(hop.link as usize) * hop.bw1e9 / load);
    }
    rate
}

/// One entry of the scheduler's completion calendar, packed to 16 bytes:
/// `key` is a conservative (lower-bound) absolute completion time computed
/// when the entry was pushed; `meta` packs the entry kind (bit 63: 1 =
/// compute rank, 0 = flow slot), the owner id (bits 62..32) and the
/// owner's epoch at push time (bits 31..0; for flows, the arena slot's
/// generation stamp). Entries are removed *at the site that invalidates
/// them* (re-key, retirement) via the owner's stored location, so the
/// queue holds exactly one live entry per schedulable entity; the epoch
/// survives as a belt-and-braces stale check (counted in
/// [`EngineStats::heap_skips`], expected ~0). Drain order
/// never affects results: `next_dt` takes an order-independent `f64::min`
/// over the exact candidates of every drained live entry.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: f64,
    meta: u64,
}

const ENTRY_COMPUTE: u64 = 1 << 63;

impl HeapEntry {
    fn flow(key: f64, slot: u32, epoch: u32) -> Self {
        HeapEntry {
            key,
            meta: (u64::from(slot) << 32) | u64::from(epoch),
        }
    }

    fn compute(key: f64, rank: u32, epoch: u32) -> Self {
        HeapEntry {
            key,
            meta: ENTRY_COMPUTE | (u64::from(rank) << 32) | u64::from(epoch),
        }
    }

    fn is_compute(self) -> bool {
        self.meta & ENTRY_COMPUTE != 0
    }

    fn id(self) -> usize {
        ((self.meta >> 32) & 0x7fff_ffff) as usize
    }

    fn epoch(self) -> u32 {
        self.meta as u32
    }
}

/// Smallest dirty-flow batch worth fanning out over the scoped worker
/// pool: below this, thread spawn/join overhead dwarfs the pure rate
/// computations (and the serial path is identical bit-for-bit anyway).
const PAR_RERATE_MIN: usize = 64;

/// Global re-key cadence: every this-many events the calendar is rebuilt
/// from live state, re-basing the wheel at the current time and resetting
/// the floating-point drift of conservative keys (see `next_dt`'s margin
/// derivation).
const REKEY_INTERVAL: u64 = 8192;

/// Buckets in the calendar wheel. With the bucket width sized to ~1 mean
/// event spacing at rebuild, the wheel horizon covers roughly a
/// [`REKEY_INTERVAL`] of simulated progress before entries spill to the
/// overflow list, and a drained bucket hands back ~1 candidate per event
/// instead of the ~4 a coarser wheel would.
const CAL_BUCKETS: usize = 8192;

/// Bucket index encoding the overflow list in a packed location.
const CAL_OVERFLOW: u32 = u32::MAX;

/// Packed location meaning "no live entry".
const LOC_NONE: u64 = u64::MAX;

fn pack_loc(bucket: u32, idx: u32) -> u64 {
    (u64::from(bucket) << 32) | u64::from(idx)
}

/// The scheduler's completion calendar: a bucketed time wheel over
/// absolute predicted completion times, plus an overflow list for keys
/// beyond the wheel horizon.
///
/// The wheel is re-based (fresh `base`/`width`) at every `rekey_all`;
/// between rebuilds, pushes land in `(key - base) / width` and `next_dt`
/// drains whole buckets from the cursor up to the event bound. Draining a
/// bucket hands back *every* entry in it — conservative keys make extra
/// candidates harmless (each is recomputed exactly and folded with `min`),
/// so bucket granularity cannot perturb results. Removal is O(1) by packed
/// location (`bucket << 32 | index`), with `swap_remove` move fix-ups
/// resolved through the moved entry's own meta word.
#[derive(Debug)]
struct CalendarQueue {
    base: f64,
    width: f64,
    inv_width: f64,
    buckets: Vec<Vec<HeapEntry>>,
    overflow: Vec<HeapEntry>,
    /// First bucket that may hold entries (all earlier ones are empty).
    cursor: usize,
    len: usize,
    /// Run-wide high-water mark of the overflow list (survives rebases:
    /// an [`EngineStats`] counter, not wheel state).
    overflow_peak: usize,
}

impl CalendarQueue {
    fn new() -> Self {
        CalendarQueue {
            base: 0.0,
            width: 1.0,
            inv_width: 1.0,
            buckets: Vec::new(),
            overflow: Vec::new(),
            cursor: CAL_BUCKETS,
            len: 0,
            overflow_peak: 0,
        }
    }

    /// Re-base the wheel at `base` with the given bucket `width`, dropping
    /// every entry (callers re-push live state afterwards).
    fn reset(&mut self, base: f64, width: f64) {
        self.base = base;
        self.width = width;
        self.inv_width = 1.0 / width;
        if self.buckets.is_empty() {
            self.buckets = vec![Vec::new(); CAL_BUCKETS];
        }
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.cursor = 0;
        self.len = 0;
    }

    /// Drop every entry (mode crossing down; owners' locations are cleared
    /// by the caller).
    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.cursor = CAL_BUCKETS;
        self.len = 0;
    }

    /// Absolute start time of bucket `i`.
    fn start_of(&self, i: usize) -> f64 {
        self.base + i as f64 * self.width
    }

    /// First key beyond the wheel (overflow keys are all ≥ this).
    fn horizon(&self) -> f64 {
        self.start_of(CAL_BUCKETS)
    }

    /// Whether `t` has drifted past half the wheel: time to re-base before
    /// fresh keys start spilling into the overflow list wholesale.
    fn needs_rebase(&self, t: f64) -> bool {
        t - self.base > 0.5 * CAL_BUCKETS as f64 * self.width
    }

    /// Insert an entry; returns its packed location. Keys are always
    /// ≥ `base` (they are `t + positive` and the wheel is based at a past
    /// `t`), so only the far side can miss the wheel.
    fn push(&mut self, e: HeapEntry) -> u64 {
        self.len += 1;
        let d = (e.key - self.base) * self.inv_width;
        if d >= CAL_BUCKETS as f64 {
            self.overflow.push(e);
            self.overflow_peak = self.overflow_peak.max(self.overflow.len());
            return pack_loc(CAL_OVERFLOW, (self.overflow.len() - 1) as u32);
        }
        let b = d as usize;
        self.cursor = self.cursor.min(b);
        self.buckets[b].push(e);
        pack_loc(b as u32, (self.buckets[b].len() - 1) as u32)
    }

    /// Remove the entry at `loc`; returns the meta word of the entry
    /// swapped into the vacated position (its owner's stored location must
    /// be re-pointed to `loc`), if any.
    fn remove(&mut self, loc: u64) -> Option<u64> {
        let bucket = (loc >> 32) as u32;
        let idx = (loc & 0xffff_ffff) as usize;
        let v = if bucket == CAL_OVERFLOW {
            &mut self.overflow
        } else {
            &mut self.buckets[bucket as usize]
        };
        v.swap_remove(idx);
        self.len -= 1;
        v.get(idx).map(|e| e.meta)
    }
}

/// One engine-level fault action. Windowed plan events (`LinkDegrade`,
/// `Straggler`, `ThermalRunaway`) are split into an on/off pair at
/// `with_faults` time; `GpuFailStop` becomes a `FailStop` (plus a `Regrow`
/// under elastic recovery).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    FailStop { gpu: u32 },
    LinkDown { link: u32, factor: f64 },
    LinkUp { link: u32 },
    SlowRank { rank: u32, speed: f64 },
    RestoreRank { rank: u32 },
    HeatGpu { gpu: u32, delta_c: f64 },
    CoolGpu { gpu: u32 },
    Regrow,
}

/// A fault action pinned to its firing time and originating plan event.
#[derive(Debug, Clone, Copy)]
struct ScheduledFault {
    t: f64,
    /// Index of the originating event in the `FaultPlan` (span identity).
    fault: u32,
    action: FaultAction,
}

/// Live fault-injection state: the compiled schedule plus the recovery
/// cost-model accumulators that `finish` folds into the resilience metrics.
#[derive(Debug)]
struct FaultRuntime {
    /// Actions sorted by firing time (stable: ties fire in plan order).
    schedule: Vec<ScheduledFault>,
    cursor: usize,
    recovery: RecoveryPolicy,
    restarts: u64,
    energy_wasted_j: f64,
    /// Simulated time spent in outages, whole run.
    downtime_s: f64,
    /// Outage time that fell inside the measured window.
    downtime_measured_s: f64,
    /// Elastic-shrink capacity state.
    dead_gpus: u32,
    world: u32,
    token_scale: f64,
    /// Time-weighted integral of `token_scale` up to `last_scale_t`.
    scale_integral: f64,
    last_scale_t: f64,
}

impl FaultRuntime {
    /// Close the current token-scale segment at `t` and start a new one.
    fn set_token_scale(&mut self, scale: f64, t: f64) {
        self.scale_integral += self.token_scale * (t - self.last_scale_t);
        self.last_scale_t = t;
        self.token_scale = scale;
    }

    /// Mean token scale over `[0, t]` (1.0 when capacity never shrank).
    fn mean_token_scale(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 1.0;
        }
        (self.scale_integral + self.token_scale * (t - self.last_scale_t)) / t
    }
}

/// Counters describing how much work the event-driven engine avoided.
///
/// Returned by [`Simulator::run_stats`]; every field is monotone over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct EngineStats {
    /// Scheduler rounds that advanced simulated time.
    pub events: u64,
    /// Collectives lowered into a cached plan (≤ distinct collective ids).
    pub plan_builds: u64,
    /// Collective launches served from the plan cache.
    pub plan_reuses: u64,
    /// Flows launched across all collective instances.
    pub flows_launched: u64,
    /// Ranks woken from a collective wait via a wake-list.
    pub wakes: u64,
    /// `(iteration, collective)` state entries pruned after their last wait.
    pub colls_retired: u64,
    /// High-water mark of live collective state entries.
    pub peak_live_colls: u64,
    /// High-water mark of schedulable entities (in-flight flows plus
    /// computing ranks) — the population the scan/heap crossover
    /// ([`SimConfig::sched_heap_threshold`]) is judged against.
    pub peak_live: u64,
    /// Entries pushed onto the completion heap (re-keys included).
    pub heap_pushes: u64,
    /// Live entries popped and evaluated by `next_dt`.
    pub heap_pops: u64,
    /// Stale entries (epoch mismatch) discarded on pop.
    pub heap_skips: u64,
    /// Collective launches served from a cross-run shared plan set
    /// (zero unless the simulator was built with [`SharedPlans`]).
    pub shared_plan_hits: u64,
    /// Calendar-wheel rebuilds: `rekey_all` rebases, whether periodic
    /// (every `REKEY_INTERVAL` = 8192 events), drift-forced (the current
    /// time passed half the wheel horizon), or a scan→heap mode crossing.
    pub cal_rekeys: u64,
    /// Calendar buckets drained by `next_dt` (the overflow list counts as
    /// one bucket per drain). Each drain hands every entry in the bucket
    /// to the exact-candidate evaluation, so `heap_pops / cal_bucket_drains`
    /// is the mean occupancy of the buckets the scheduler actually visits.
    pub cal_bucket_drains: u64,
    /// Run-wide high-water mark of the overflow list — entries whose
    /// conservative completion key lay beyond the wheel horizon when
    /// pushed. A large peak relative to `peak_live` means the bucket width
    /// (the event-spacing EWMA at each rebuild) is too narrow for the
    /// workload's completion-time spread.
    pub cal_overflow_peak: u64,
    /// Flow-arena slots reused from the free list (launches minus arena
    /// growth): how often the steady-state launch path ran allocation-free.
    pub arena_slot_reuses: u64,
    /// Dirty-flow re-rate batches fanned out over the scoped worker pool
    /// (zero when [`SimConfig::rerate_workers`] ≤ 1 or batches stayed under
    /// the parallel threshold).
    pub parallel_rerate_batches: u64,
    /// Calendar entries removed by exact location at a retire site (flow
    /// retirement or compute completion) — pops the drain loop never had
    /// to evaluate or skip.
    pub cal_exact_removals: u64,
}

/// Engine-side configuration of a symmetry-folded run, prepared by
/// [`crate::fold`]: which ranks/nodes stay live, the switch-tier load
/// multiplier for lazily built (intra-replica) plans, and the pre-built
/// full-ring plans for cross-replica collectives.
#[derive(Debug)]
pub(crate) struct FoldSetup {
    /// Replica count: switch-link load multiplier for lazily built plans.
    pub(crate) switch_mult: u16,
    /// Representative ranks (ascending).
    pub(crate) active_ranks: Vec<u32>,
    /// Nodes hosting representative ranks (ascending).
    pub(crate) active_nodes: Vec<u32>,
    /// `(collective id, plan)` pairs seeded into the plan cache: the full
    /// original rings of the trimmed cross-replica collectives, laid onto
    /// the fabric with multiplier 1 (they exist once in the unfolded run
    /// too).
    pub(crate) injected: Vec<(u32, CollPlan)>,
}

/// Executes a trace on a cluster with thermal/DVFS feedback.
///
/// ```no_run
/// use charllm_sim::{SimConfig, Simulator};
/// # fn demo(cluster: charllm_hw::Cluster, placement: charllm_parallel::Placement,
/// #         trace: charllm_trace::ExecutionTrace) -> Result<(), charllm_sim::SimError> {
/// let result = Simulator::new(&cluster, &placement, &trace, SimConfig::default())?.run()?;
/// println!("step time {:.2}s, {:.0} tokens/s", result.step_time_s, result.tokens_per_s);
/// # Ok(())
/// # }
/// ```
///
/// The engine is generic over a [`SimObserver`] whose hooks fire at every
/// scheduling event; the default [`NoopObserver`] monomorphizes them away,
/// and no observer can perturb results (the golden suite pins this).
pub struct Simulator<'a, O: SimObserver = NoopObserver> {
    obs: O,
    cluster: &'a Cluster,
    trace: &'a ExecutionTrace,
    cfg: SimConfig,

    ranks: Vec<RankState>,
    /// Flat collective-state slab: `[coll][iteration & 1]` (see
    /// [`CollSlot`] for the two-live-instances invariant).
    colls: Vec<[CollSlot; 2]>,
    /// Count of live slots in `colls` (the old hash map's `len`).
    live_colls: u64,
    /// The flow arena: structure-of-arrays per-flow state in stable,
    /// generation-stamped slots recycled through a free list.
    fa: FlowArena,
    /// Live flow slots in the reference engine's dense iteration order:
    /// launches append, retirement `swap_remove`s — reproducing the exact
    /// advance-loop visit sequence the old dense `Vec` had, over stable
    /// slots that never move.
    flow_order: Vec<u32>,
    /// Installed plan flows, append-only ([`PlanRange`]s index into it).
    plan_flows: Vec<PlanFlowRef>,
    /// Deduplicated route-hop slices shared by all installed plans.
    route_arena: SliceArena<RouteHop>,
    /// Deduplicated telemetry charge lists shared by all installed plans.
    charge_arena: SliceArena<ChargeItem>,
    /// Number of active flows touching each GPU (as src or dst).
    gpu_flow_count: Vec<u32>,
    /// Flow load per link, maintained incrementally on launch/retire.
    link_load: Vec<u32>,
    /// Bumped whenever any `link_load` changes. A flow's cached rate is
    /// current iff `rate_epoch == load_epoch` or none of its route links
    /// changed since — unchanged loads would reproduce the identical rate
    /// bits, so skipping the recompute cannot perturb results.
    load_epoch: u64,
    /// Links whose load changed since the last `next_dt` (deduplicated via
    /// `link_dirty`); their flows are re-rated and re-keyed in batch.
    dirty_links: Vec<u32>,
    link_dirty: Vec<bool>,
    /// Exact membership: flow slots currently routed through each link, as
    /// `(slot, route index)`; kept O(route length) per update via the
    /// `FlowArena::link_pos` back-pointers.
    link_flows: Vec<Vec<(u32, u8)>>,

    /// The completion calendar: conservative predicted completion times
    /// for computes and flows, drained bucket-wise in `next_dt`.
    calq: CalendarQueue,
    /// Buffer for live entries drained in a `next_dt` round (re-inserted
    /// after the drain loop so they cannot be drained twice in one round).
    repush: Vec<HeapEntry>,
    /// Whether the scheduler is currently in heap mode (live-entity count
    /// above [`SimConfig::sched_heap_threshold`]). In scan mode the
    /// calendar is empty and no entries are maintained.
    heap_mode: bool,
    /// Key of each computing rank's live calendar entry (`INFINITY` =
    /// none). Lets `push_compute_key` skip the push when the stored entry
    /// is still a valid lower bound, mirroring `rekey_rated_flow`'s `heap_key`
    /// test.
    rank_key: Vec<f64>,
    /// Location of each rank's live calendar entry ([`LOC_NONE`] = none).
    rank_loc: Vec<u64>,
    /// Per-rank epoch for compute entries: an entry for rank `r` is live
    /// iff its epoch matches (flows use the arena generation stamp). With
    /// push-site removal this is a belt-and-braces check only.
    rank_epoch: Vec<u32>,
    /// EWMA of recent event spacing, sizing the calendar's bucket width at
    /// each rebuild.
    avg_dt: f64,
    /// Computing ranks whose rate inputs changed (deduplicated via
    /// `rank_dirty`); re-keyed in batch by `next_dt`.
    dirty_ranks: Vec<u32>,
    rank_dirty: Vec<bool>,
    /// Ranks placed on each GPU: compute rates depend on the GPU's flow
    /// presence, so 0↔nonzero `gpu_flow_count` transitions dirty these.
    ranks_of_gpu: Vec<Vec<u32>>,
    /// Events since the last full re-key (see [`REKEY_INTERVAL`]).
    events_since_rekey: u64,
    /// Gather buffer for the dirty-flow re-rate pass (slots, gather order).
    rerate_slots: Vec<u32>,
    /// Rates computed for `rerate_slots`, index-aligned; filled serially or
    /// by the scoped worker pool, always written back in gather order.
    rerate_rates: Vec<f64>,

    /// One installed plan per `CollectiveId`, interned lazily at first
    /// launch (or at construction for fold-injected plans).
    plan_cache: Vec<Option<PlanRange>>,
    /// Cross-run plan set (same `(cluster, placement, trace)` triple):
    /// consulted before building, fed after (see [`SharedPlans`]).
    shared_plans: Option<Arc<SharedPlans>>,
    /// Per-collective kernel class (for waiting-time attribution).
    coll_class: Vec<KernelClass>,
    /// Per-collective eager-p2p flag and group size.
    coll_eager: Vec<bool>,
    coll_group_len: Vec<u32>,
    /// Per-collective `CollWait` count across the whole trace: how many
    /// wait passes an instance sees before its state can be pruned.
    wait_count: Vec<u32>,

    /// Ranks to process this drain pass, popped in ascending rank order.
    /// A wake issued while processing rank `c` goes here only for waiters
    /// `w > c` — exactly the waiters the reference engine's 0..n scan
    /// would still have reached in the same pass.
    ready_now: BinaryHeap<Reverse<usize>>,
    /// Ranks that become runnable next pass: compute completions, wakes
    /// from flow retirement, and wakes of waiters `w ≤ c`.
    ready_next: Vec<usize>,
    /// Ranks currently in `Computing` mode (unordered; `next_dt` takes an
    /// order-independent min over them).
    computing_ranks: Vec<usize>,
    /// Position of each rank in `computing_ranks` (`u32::MAX` = absent).
    computing_pos: Vec<u32>,
    /// Scratch: ranks whose compute completed this event, processed in
    /// ascending rank order to preserve the world-scan completion order.
    completed_scratch: Vec<u32>,
    finished_ranks: usize,

    thermals: Vec<GpuThermal>,
    freq_ratio: Vec<f64>,
    last_power_w: Vec<f64>,
    /// Cached `cluster.gpu().peak_fp16_flops`, read per computing rank per
    /// event in `compute_rate`.
    peak_flops: f64,

    /// Time-weighted activity accumulation since the last control boundary.
    activity_acc: Vec<f64>,
    util_acc: Vec<f64>,
    pcie_window_bytes: Vec<f64>,

    /// Time each rank's accounting was last brought current (segment start
    /// for lazy accrual; see `crate::accrual`).
    rank_acc_since: Vec<f64>,
    /// Whether each rank participates in accounting (`active_ranks` as a
    /// bitmap: every rank unfolded, representatives only when folded).
    rank_active: Vec<bool>,
    /// During a fail-stop outage the clock advances with no rank or flow
    /// progress: flushes only rebase `acc_since` instead of accruing.
    accrual_frozen: bool,

    kernel_time: Vec<KernelBreakdown>,
    traffic: TrafficMatrix,
    occ_acc: Vec<(f64, f64, f64)>,
    telemetry: TelemetryStore,

    /// Switch-tier load multiplier applied to lazily built plans
    /// (1 unfolded; the replica count in a symmetry-folded run).
    fold_switch_mult: u16,
    /// Ranks advanced and accounted per event: every rank unfolded, the
    /// representative replica's ranks when folded. Ascending, fixed for
    /// the run — keeping the unfolded iteration order bit-exact.
    active_ranks: Vec<u32>,
    /// Nodes whose thermal/power physics are stepped at control
    /// boundaries (all nodes unfolded; representative nodes folded).
    active_nodes: Vec<u32>,
    /// GPUs sampled into telemetry: those on `active_nodes`, ascending.
    active_gpus: Vec<u32>,
    /// Ranks whose iteration has reached `cfg.warmup_iterations` — an O(1)
    /// stand-in for the reference engine's all-ranks warmup scan at every
    /// iteration boundary (the scan is O(world) per boundary, which a
    /// folded 16k-GPU run crosses ~world times at t = 0).
    ranks_past_warmup: usize,

    t: f64,
    next_control: f64,
    next_sample: f64,
    iteration_complete_at: Vec<f64>,
    measure_start: Option<f64>,
    energy_measured_j: f64,

    /// Fault-injection state (`None` = no plan attached). The pristine
    /// identities of the fields below (`×1.0`, `+0.0`, `min(∞)`) keep the
    /// no-fault path byte-identical to an engine without fault support.
    fault: Option<Box<FaultRuntime>>,
    /// Per-link bandwidth scale in `(0, 1]` (1.0 = healthy).
    link_health: LinkHealth,
    /// Per-rank compute speed multiplier (1.0 = healthy, <1 = straggler).
    rank_speed: Vec<f64>,
    /// Per-GPU inlet temperature offset forced by thermal-runaway faults.
    inlet_offset_c: Vec<f64>,
    /// Firing time of the next scheduled fault (`INFINITY` when none).
    next_fault_t: f64,

    stats: EngineStats,
    /// Live-metrics publication state (`None` = no hub attached). Gauges
    /// are published at control boundaries and at run end only — never on
    /// the per-event path — so an unattached engine runs the exact same
    /// instructions and an attached one stays byte-identical (the hub
    /// feeds nothing back).
    metrics: Option<Box<EngineMetrics>>,
}

/// Pre-registered gauge handles promoting [`EngineStats`] (and a few live
/// quantities) into sampleable metrics, labeled by the owning shard's
/// worker index. Built once at [`Simulator::with_metrics`].
#[derive(Debug)]
struct EngineMetrics {
    /// Host wall clock at the last publication (event-rate window start).
    last_wall: Instant,
    /// `stats.events` at the last publication.
    last_events: u64,
    sim_time_s: Gauge,
    events: Gauge,
    event_rate_per_s: Gauge,
    live_flows: Gauge,
    live_computing: Gauge,
    flows_launched: Gauge,
    plan_builds: Gauge,
    plan_reuses: Gauge,
    shared_plan_hits: Gauge,
    cal_rekeys: Gauge,
    cal_bucket_drains: Gauge,
    cal_overflow_len: Gauge,
    cal_overflow_peak: Gauge,
    heap_pushes: Gauge,
    heap_pops: Gauge,
    heap_skips: Gauge,
    arena_slot_reuses: Gauge,
    parallel_rerate_batches: Gauge,
    cal_exact_removals: Gauge,
    fault_downtime_s: Gauge,
    fault_restarts: Gauge,
    fault_energy_wasted_j: Gauge,
}

impl EngineMetrics {
    fn new(shard: &MetricsShard) -> Self {
        let worker = shard.index().to_string();
        let labels: [(&str, &str); 1] = [("worker", worker.as_str())];
        let g = |name: &str| shard.gauge(name, &labels);
        EngineMetrics {
            last_wall: Instant::now(),
            last_events: 0,
            sim_time_s: g("sim_time_s"),
            events: g("sim_events"),
            event_rate_per_s: g("sim_event_rate_per_s"),
            live_flows: g("sim_live_flows"),
            live_computing: g("sim_live_computing"),
            flows_launched: g("sim_flows_launched"),
            plan_builds: g("sim_plan_builds"),
            plan_reuses: g("sim_plan_reuses"),
            shared_plan_hits: g("sim_shared_plan_hits"),
            cal_rekeys: g("sim_cal_rekeys"),
            cal_bucket_drains: g("sim_cal_bucket_drains"),
            cal_overflow_len: g("sim_cal_overflow_len"),
            cal_overflow_peak: g("sim_cal_overflow_peak"),
            heap_pushes: g("sim_heap_pushes"),
            heap_pops: g("sim_heap_pops"),
            heap_skips: g("sim_heap_skips"),
            arena_slot_reuses: g("sim_arena_slot_reuses"),
            parallel_rerate_batches: g("sim_parallel_rerate_batches"),
            cal_exact_removals: g("sim_cal_exact_removals"),
            fault_downtime_s: g("sim_fault_downtime_s"),
            fault_restarts: g("sim_fault_restarts"),
            fault_energy_wasted_j: g("sim_fault_energy_wasted_j"),
        }
    }
}

impl<'a> Simulator<'a> {
    /// Build an unobserved simulator after validating trace/placement/
    /// cluster agreement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] or [`SimError::PlacementMismatch`].
    pub fn new(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        Self::with_observer(cluster, placement, trace, cfg, NoopObserver)
    }
}

impl<'a> Simulator<'a, SpanRecorder> {
    /// Build a profiling simulator: records span streams and attaches a
    /// [`phase::attribute`] profile to the result of
    /// [`Simulator::run_profiled`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::new`].
    pub fn profiled(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        let recorder = SpanRecorder::for_trace(trace, cfg.iterations);
        Self::with_observer(cluster, placement, trace, cfg, recorder)
    }

    /// Run to completion and attach the span-level [`phase`] attribution as
    /// `result.profile` (all other result fields stay byte-identical to an
    /// unobserved run).
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_profiled(self) -> Result<SimResult, SimError> {
        let iterations = self.cfg.iterations;
        let (mut result, recorder) = self.run_observed()?;
        result.profile = Some(phase::attribute(&recorder, result.sim_time_s, iterations));
        Ok(result)
    }
}

impl<'a, O: SimObserver> Simulator<'a, O> {
    /// Build a simulator with an attached observer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] or [`SimError::PlacementMismatch`].
    pub fn with_observer(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
        obs: O,
    ) -> Result<Self, SimError> {
        Self::with_observer_fold(cluster, placement, trace, cfg, obs, None)
    }

    /// [`Simulator::with_observer`] with an optional [`FoldSetup`]
    /// restricting the live rank/node sets (see [`crate::fold`]). `None`
    /// reproduces the unfolded engine bit-for-bit.
    pub(crate) fn with_observer_fold(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
        obs: O,
        fold: Option<FoldSetup>,
    ) -> Result<Self, SimError> {
        let problems = trace.validate();
        if !problems.is_empty() {
            return Err(SimError::InvalidTrace(problems));
        }
        if placement.world() < trace.world() {
            return Err(SimError::PlacementMismatch {
                trace_world: trace.world(),
                placement_world: placement.world(),
            });
        }
        let num_gpus = cluster.num_gpus();
        let ranks: Vec<RankState> = (0..trace.world())
            .map(|r| RankState {
                gpu: placement.gpu(r),
                step_idx: 0,
                iteration: 0,
                mode: RankMode::Ready,
            })
            .collect();
        let mut ranks_of_gpu: Vec<Vec<u32>> = vec![Vec::new(); num_gpus];
        for (r, state) in ranks.iter().enumerate() {
            ranks_of_gpu[state.gpu.index()].push(r as u32);
        }

        let (fold_switch_mult, active_ranks, active_nodes, injected) = match fold {
            Some(f) => (f.switch_mult, f.active_ranks, f.active_nodes, f.injected),
            None => (
                1,
                (0..trace.world() as u32).collect(),
                (0..cluster.num_nodes() as u32).collect(),
                Vec::new(),
            ),
        };
        let mut node_active = vec![false; cluster.num_nodes()];
        for &n in &active_nodes {
            node_active[n as usize] = true;
        }
        let active_gpus: Vec<u32> = (0..num_gpus as u32)
            .filter(|&g| node_active[cluster.node_of(GpuId(g)).index()])
            .collect();

        let num_colls = trace.num_collectives();
        let coll_class = trace.collectives().iter().map(|c| c.class()).collect();
        let coll_eager = trace.collectives().iter().map(|c| c.eager_p2p).collect();
        let coll_group_len = trace
            .collectives()
            .iter()
            .map(|c| c.group.len() as u32)
            .collect();

        let airflow = &cluster.node_layout().airflow;
        let mut thermals = Vec::with_capacity(num_gpus);
        for gpu in cluster.gpus() {
            let spec = cluster.gpu().clone();
            let variability = if cfg.uniform_variability {
                GpuVariability::nominal()
            } else {
                GpuVariability::for_gpu(gpu, cfg.seed)
            };
            let slot = cluster.slot_of(gpu);
            let mut governor_cfg = GovernorConfig::for_spec(&spec);
            if let Some(cap_w) = cfg.gpu_power_cap_w {
                governor_cfg.power_cap_w = cap_w;
            }
            if let Some((node, cap_w)) = cfg.node_power_cap {
                if cluster.node_of(gpu) == charllm_hw::NodeId(node) {
                    governor_cfg.power_cap_w = cap_w;
                }
            }
            let mut thermal = GpuThermal::new(
                spec.clone(),
                ThermalSpec::for_model(spec.model),
                governor_cfg,
                variability,
                airflow.ambient_c,
            );
            if cfg.prewarm && cfg.thermal_feedback && node_active[cluster.node_of(gpu).index()] {
                // Settle near a loaded operating point, including the
                // inlet preheat a busy node would produce. Skipped for
                // nodes a folded run never steps — their 400-step settles
                // dominate construction at 16k GPUs.
                let node_power = spec.tdp_w * 0.85;
                let powers = vec![node_power; airflow.num_slots()];
                let inlet = airflow.inlet_temp_c(slot, &powers);
                for _ in 0..400 {
                    thermal.step(0.75, inlet, 1.0);
                }
            }
            thermals.push(thermal);
        }
        let freq_ratio = thermals.iter().map(GpuThermal::freq_ratio).collect();
        let last_power_w = thermals.iter().map(GpuThermal::power_w).collect();

        let mut rank_active = vec![false; ranks.len()];
        for &r in &active_ranks {
            rank_active[r as usize] = true;
        }

        let mut sim = Simulator {
            obs,
            cluster,
            trace,
            ranks,
            colls: (0..num_colls)
                .map(|_| [CollSlot::default(), CollSlot::default()])
                .collect(),
            live_colls: 0,
            fa: FlowArena::new(),
            flow_order: Vec::new(),
            plan_flows: Vec::new(),
            route_arena: SliceArena::new(),
            charge_arena: SliceArena::new(),
            gpu_flow_count: vec![0; num_gpus],
            link_load: vec![0; cluster.num_links()],
            load_epoch: 0,
            dirty_links: Vec::new(),
            link_dirty: vec![false; cluster.num_links()],
            link_flows: vec![Vec::new(); cluster.num_links()],
            calq: CalendarQueue::new(),
            repush: Vec::new(),
            heap_mode: false,
            rank_key: vec![f64::INFINITY; trace.world()],
            rank_loc: vec![LOC_NONE; trace.world()],
            rank_epoch: vec![0; trace.world()],
            avg_dt: cfg.control_period_s / 256.0,
            dirty_ranks: Vec::new(),
            rank_dirty: vec![false; trace.world()],
            ranks_of_gpu,
            events_since_rekey: 0,
            rerate_slots: Vec::new(),
            rerate_rates: Vec::new(),
            plan_cache: (0..num_colls).map(|_| None).collect(),
            shared_plans: None,
            coll_class,
            coll_eager,
            coll_group_len,
            wait_count: trace.wait_counts(),
            ready_now: BinaryHeap::new(),
            ready_next: Vec::new(),
            computing_ranks: Vec::new(),
            computing_pos: vec![u32::MAX; trace.world()],
            completed_scratch: Vec::new(),
            finished_ranks: 0,
            thermals,
            freq_ratio,
            last_power_w,
            peak_flops: cluster.gpu().peak_fp16_flops,
            activity_acc: vec![0.0; num_gpus],
            util_acc: vec![0.0; num_gpus],
            pcie_window_bytes: vec![0.0; num_gpus],
            rank_acc_since: vec![0.0; trace.world()],
            rank_active,
            accrual_frozen: false,
            kernel_time: vec![KernelBreakdown::default(); trace.world()],
            traffic: TrafficMatrix::new(num_gpus),
            occ_acc: vec![(0.0, 0.0, 0.0); num_gpus],
            telemetry: TelemetryStore::new(num_gpus),
            fold_switch_mult,
            active_ranks,
            active_nodes,
            active_gpus,
            ranks_past_warmup: 0,
            t: 0.0,
            next_control: cfg.control_period_s,
            next_sample: cfg.sample_period_s,
            iteration_complete_at: vec![0.0; cfg.iterations],
            measure_start: if cfg.warmup_iterations == 0 {
                Some(0.0)
            } else {
                None
            },
            energy_measured_j: 0.0,
            fault: None,
            link_health: LinkHealth::pristine(cluster.num_links()),
            rank_speed: vec![1.0; trace.world()],
            inlet_offset_c: vec![0.0; num_gpus],
            next_fault_t: f64::INFINITY,
            stats: EngineStats::default(),
            metrics: None,
            cfg,
        };
        for (ci, plan) in injected {
            sim.install_plan(ci as usize, &plan);
        }
        Ok(sim)
    }

    /// Intern `plan` into the engine's arenas and record its range in the
    /// plan cache: routes and charge lists deduplicate into the shared
    /// [`SliceArena`]s, so launching one of its flows is a few index
    /// writes instead of a ~280-byte plan copy.
    fn install_plan(&mut self, ci: usize, plan: &CollPlan) -> PlanRange {
        let start = self.plan_flows.len() as u32;
        let mut hops: Vec<RouteHop> = Vec::with_capacity(MAX_ROUTE_LINKS);
        let mut charges: Vec<ChargeItem> = Vec::with_capacity(MAX_ROUTE_LINKS);
        for pf in plan.flows.iter() {
            hops.clear();
            charges.clear();
            for l in 0..pf.route_len as usize {
                hops.push(RouteHop {
                    link: pf.links[l],
                    mult: pf.mult[l],
                    bw1e9: pf.bw1e9[l],
                });
            }
            for c in 0..pf.charge_len as usize {
                charges.push(ChargeItem {
                    gpu: pf.charge_gpu[c],
                    class: pf.charge_class[c],
                });
            }
            self.plan_flows.push(PlanFlowRef {
                work: pf.work,
                payload_ratio: pf.payload_ratio,
                src: pf.src.index() as u32,
                dst: pf.dst.index() as u32,
                route: self.route_arena.intern(&hops),
                charges: self.charge_arena.intern(&charges),
            });
        }
        let range = PlanRange {
            start,
            len: plan.flows.len() as u32,
        };
        self.plan_cache[ci] = Some(range);
        range
    }

    /// Attach a cross-run [`SharedPlans`] set: collective plans already
    /// published there are cloned instead of rebuilt (counted in
    /// [`EngineStats::shared_plan_hits`]), and plans this run builds are
    /// published back. The set must come from the same
    /// `(cluster, placement, trace)` triple as this simulator; results are
    /// byte-identical with or without it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PlanSetMismatch`] when the set was sized for a
    /// different trace.
    pub fn with_shared_plans(mut self, plans: Arc<SharedPlans>) -> Result<Self, SimError> {
        if plans.num_collectives() != self.plan_cache.len() {
            return Err(SimError::PlanSetMismatch {
                trace_collectives: self.plan_cache.len(),
                shared_collectives: plans.num_collectives(),
            });
        }
        self.shared_plans = Some(plans);
        Ok(self)
    }

    /// Publish live engine gauges to a [`MetricsShard`] of a metrics hub:
    /// simulated time, event count and host-side event rate, live entity
    /// counts, plan-cache and calendar counters, and fault accruals, each
    /// labeled `worker="<shard index>"`. Publication happens at control
    /// boundaries and at run end — never on the per-event path — and the
    /// hub feeds nothing back, so results stay byte-identical with or
    /// without it (a disabled shard costs one pointer check per control
    /// tick).
    pub fn with_metrics(mut self, shard: &MetricsShard) -> Self {
        if !shard.enabled() {
            return self;
        }
        let m = EngineMetrics::new(shard);
        if self.fold_switch_mult > 1 {
            let worker = shard.index().to_string();
            shard
                .gauge("sim_fold_replicas", &[("worker", worker.as_str())])
                .set(f64::from(self.fold_switch_mult));
        }
        self.metrics = Some(Box::new(m));
        self
    }

    /// Attach a [`FaultPlan`]: its events are compiled into a time-sorted
    /// schedule the run loop drains alongside control boundaries. An empty
    /// plan ([`FaultPlan::none`]) leaves the simulator untouched, so the
    /// result stays byte-identical to a run without fault support (pinned
    /// by the golden suite). Events that fall inside a recovery outage fire
    /// immediately after it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFaultPlan`] when an event targets a
    /// GPU/link/rank outside this cluster/trace or has a non-finite time,
    /// factor, or slowdown.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        plan.validate(
            self.cluster.num_gpus() as u32,
            self.cluster.num_links() as u32,
            self.trace.world() as u32,
        )
        .map_err(SimError::InvalidFaultPlan)?;
        if plan.is_empty() {
            return Ok(self);
        }
        let mut schedule = Vec::with_capacity(plan.events.len() * 2);
        for (i, ev) in plan.events.iter().enumerate() {
            let fault = i as u32;
            match *ev {
                FaultEvent::GpuFailStop { gpu, at_s } => {
                    schedule.push(ScheduledFault {
                        t: at_s,
                        fault,
                        action: FaultAction::FailStop { gpu },
                    });
                    if let RecoveryPolicy::ElasticShrink { regrow_after_s, .. } = plan.recovery {
                        if regrow_after_s > 0.0 {
                            schedule.push(ScheduledFault {
                                t: at_s + regrow_after_s,
                                fault,
                                action: FaultAction::Regrow,
                            });
                        }
                    }
                }
                FaultEvent::LinkDegrade {
                    link,
                    at_s,
                    duration_s,
                    factor,
                } => {
                    schedule.push(ScheduledFault {
                        t: at_s,
                        fault,
                        action: FaultAction::LinkDown { link, factor },
                    });
                    schedule.push(ScheduledFault {
                        t: at_s + duration_s,
                        fault,
                        action: FaultAction::LinkUp { link },
                    });
                }
                FaultEvent::Straggler {
                    rank,
                    at_s,
                    duration_s,
                    slowdown,
                } => {
                    schedule.push(ScheduledFault {
                        t: at_s,
                        fault,
                        action: FaultAction::SlowRank {
                            rank,
                            speed: 1.0 / slowdown,
                        },
                    });
                    schedule.push(ScheduledFault {
                        t: at_s + duration_s,
                        fault,
                        action: FaultAction::RestoreRank { rank },
                    });
                }
                FaultEvent::ThermalRunaway {
                    gpu,
                    at_s,
                    duration_s,
                    inlet_delta_c,
                } => {
                    schedule.push(ScheduledFault {
                        t: at_s,
                        fault,
                        action: FaultAction::HeatGpu {
                            gpu,
                            delta_c: inlet_delta_c,
                        },
                    });
                    schedule.push(ScheduledFault {
                        t: at_s + duration_s,
                        fault,
                        action: FaultAction::CoolGpu { gpu },
                    });
                }
            }
        }
        // Stable sort: same-time actions keep plan order (down before up
        // for zero-duration windows).
        schedule.sort_by(|a, b| a.t.total_cmp(&b.t));
        self.next_fault_t = schedule.first().map_or(f64::INFINITY, |s| s.t);
        self.fault = Some(Box::new(FaultRuntime {
            schedule,
            cursor: 0,
            recovery: plan.recovery,
            restarts: 0,
            energy_wasted_j: 0.0,
            downtime_s: 0.0,
            downtime_measured_s: 0.0,
            dead_gpus: 0,
            world: self.trace.world() as u32,
            token_scale: 1.0,
            scale_integral: 0.0,
            last_scale_t: 0.0,
        }));
        Ok(self)
    }

    /// Drain every fault action due at the current time. A fail-stop stalls
    /// the clock inside `apply_fault`, so later actions that land inside
    /// the outage window fire right after it ends.
    fn process_due_faults(&mut self) {
        let Some(mut rt) = self.fault.take() else {
            self.next_fault_t = f64::INFINITY;
            return;
        };
        while rt.cursor < rt.schedule.len() && rt.schedule[rt.cursor].t <= self.t + 1e-12 {
            let ev = rt.schedule[rt.cursor];
            rt.cursor += 1;
            self.apply_fault(&mut rt, ev);
        }
        self.next_fault_t = rt.schedule.get(rt.cursor).map_or(f64::INFINITY, |s| s.t);
        self.fault = Some(rt);
    }

    fn apply_fault(&mut self, rt: &mut FaultRuntime, ev: ScheduledFault) {
        match ev.action {
            FaultAction::LinkDown { link, factor } => {
                self.obs.fault_begin(ev.fault, "link-degrade", link, self.t);
                self.link_health.set_scale(link as usize, factor);
                self.mark_link_dirty(link as usize);
                // Rates on this link must be recomputed even in heap mode:
                // `next_dt`'s dirty-link pass keys off a stale epoch.
                self.load_epoch += 1;
            }
            FaultAction::LinkUp { link } => {
                self.link_health.restore(link as usize);
                self.mark_link_dirty(link as usize);
                self.load_epoch += 1;
                self.obs.fault_end(ev.fault, self.t);
            }
            FaultAction::SlowRank { rank, speed } => {
                self.obs.fault_begin(ev.fault, "straggler", rank, self.t);
                self.rank_speed[rank as usize] = speed;
                self.mark_rank_dirty(rank as usize);
            }
            FaultAction::RestoreRank { rank } => {
                self.rank_speed[rank as usize] = 1.0;
                self.mark_rank_dirty(rank as usize);
                self.obs.fault_end(ev.fault, self.t);
            }
            FaultAction::HeatGpu { gpu, delta_c } => {
                self.obs
                    .fault_begin(ev.fault, "thermal-runaway", gpu, self.t);
                self.inlet_offset_c[gpu as usize] = delta_c;
            }
            FaultAction::CoolGpu { gpu } => {
                self.inlet_offset_c[gpu as usize] = 0.0;
                self.obs.fault_end(ev.fault, self.t);
            }
            FaultAction::FailStop { gpu } => {
                rt.restarts += 1;
                self.obs.fault_begin(ev.fault, "gpu-fail-stop", gpu, self.t);
                match rt.recovery {
                    RecoveryPolicy::CheckpointRestart {
                        checkpoint_interval_s,
                        restart_latency_s,
                    } => {
                        // Productive time since the last checkpoint is lost
                        // and recomputed after the restart.
                        let productive = self.t - rt.downtime_s;
                        let lost = if checkpoint_interval_s > 0.0 {
                            productive % checkpoint_interval_s
                        } else {
                            0.0
                        };
                        self.fault_stall(rt, restart_latency_s, lost);
                    }
                    RecoveryPolicy::SpareSwap { swap_latency_s } => {
                        self.fault_stall(rt, swap_latency_s, 0.0);
                    }
                    RecoveryPolicy::ElasticShrink {
                        reconfig_latency_s, ..
                    } => {
                        self.fault_stall(rt, reconfig_latency_s, 0.0);
                        rt.dead_gpus = (rt.dead_gpus + 1).min(rt.world);
                        let scale = f64::from(rt.world - rt.dead_gpus) / f64::from(rt.world);
                        rt.set_token_scale(scale, self.t);
                    }
                }
                self.obs.fault_end(ev.fault, self.t);
            }
            FaultAction::Regrow => {
                if rt.dead_gpus > 0 {
                    if let RecoveryPolicy::ElasticShrink {
                        reconfig_latency_s, ..
                    } = rt.recovery
                    {
                        self.fault_stall(rt, reconfig_latency_s, 0.0);
                    }
                    rt.dead_gpus -= 1;
                    let scale = f64::from(rt.world - rt.dead_gpus) / f64::from(rt.world);
                    rt.set_token_scale(scale, self.t);
                }
            }
        }
    }

    /// Stall the whole cluster for a recovery outage: `idle_s` of restart /
    /// reconfiguration at idle activity, then `redo_s` recomputing lost work
    /// at nominal training activity. Thermal and power physics keep running
    /// on control boundaries (the DVFS governor sees a real idle window);
    /// every joule accrued here is counted as wasted. In-flight kernels and
    /// flows hold their remaining work — the outage shifts their completion
    /// by its length.
    fn fault_stall(&mut self, rt: &mut FaultRuntime, idle_s: f64, redo_s: f64) {
        let start = self.t;
        let end = start + idle_s.max(0.0) + redo_s.max(0.0);
        if end <= start {
            return;
        }
        let redo_from = start + idle_s.max(0.0);
        // Close every open segment at the outage start, then freeze
        // accrual: ranks and flows hold their work during the stall, so a
        // lazy segment spanning it would charge kernel/traffic time that
        // never ran. Frozen flushes only rebase `acc_since` (the control
        // updates below still read the synthetic redo activity).
        self.flush_accruals(start);
        self.accrual_frozen = true;
        let energy_before: f64 = self.thermals.iter().map(GpuThermal::energy_j).sum();
        while end - self.t > 1e-9 {
            let dt = (self.next_control - self.t).min(end - self.t).max(1e-9);
            let redo_overlap = (self.t + dt - redo_from.max(self.t)).max(0.0).min(dt);
            if redo_overlap > 0.0 {
                for acc in &mut self.activity_acc {
                    *acc += 0.75 * redo_overlap;
                }
            }
            self.t += dt;
            if self.t >= self.next_control - 1e-12 {
                self.control_update();
                self.next_control += self.cfg.control_period_s;
            }
        }
        self.accrual_frozen = false;
        self.rebase_accruals(self.t);
        let energy_after: f64 = self.thermals.iter().map(GpuThermal::energy_j).sum();
        rt.energy_wasted_j += energy_after - energy_before;
        let outage = self.t - start;
        rt.downtime_s += outage;
        if self.measure_start.is_some() {
            rt.downtime_measured_s += outage;
        }
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no progress is possible and
    /// [`SimError::Timeout`] when the simulated-time cap is hit.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_observed().map(|(result, _)| result)
    }

    /// Run to completion, also returning the engine's internal counters.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_stats(mut self) -> Result<(SimResult, EngineStats), SimError> {
        self.run_loop()?;
        let stats = self.stats;
        Ok((self.finish().0, stats))
    }

    /// Run to completion, returning the observer for post-run analysis.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::run`].
    pub fn run_observed(mut self) -> Result<(SimResult, O), SimError> {
        self.run_loop()?;
        Ok(self.finish())
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        for rank in 0..self.ranks.len() {
            self.ready_now.push(Reverse(rank));
        }
        loop {
            let progressed = self.drain_ready();

            if self.finished_ranks == self.ranks.len() {
                break;
            }

            let dt = match self.next_dt() {
                Some(dt) => dt,
                None => {
                    if progressed {
                        continue;
                    }
                    return Err(SimError::Deadlock {
                        at_s: self.t,
                        detail: self.blocked_summary(),
                    });
                }
            };

            self.advance(dt);
            self.stats.events += 1;
            // Event-spacing EWMA, sizing the calendar's bucket width at
            // the next rebuild.
            self.avg_dt += 0.125 * (dt - self.avg_dt);

            if self.t >= self.next_fault_t - 1e-12 {
                self.process_due_faults();
            }
            if self.t >= self.next_control - 1e-12 {
                self.control_update();
                self.next_control += self.cfg.control_period_s;
            }
            if self.t > self.cfg.max_sim_time_s {
                return Err(SimError::Timeout {
                    cap_s: self.cfg.max_sim_time_s,
                });
            }
        }
        self.stats.cal_overflow_peak = self.calq.overflow_peak as u64;
        self.publish_metrics();
        Ok(())
    }

    /// Push the current engine counters and live quantities into the
    /// attached metrics shard (no-op without one). Called at control
    /// boundaries and once at run end; never on the per-event path.
    fn publish_metrics(&mut self) {
        let Some(m) = self.metrics.as_deref_mut() else {
            return;
        };
        let now = Instant::now();
        let wall = now.duration_since(m.last_wall).as_secs_f64();
        if wall > 0.0 {
            m.event_rate_per_s
                .set((self.stats.events - m.last_events) as f64 / wall);
        }
        m.last_wall = now;
        m.last_events = self.stats.events;
        m.sim_time_s.set(self.t);
        m.events.set(self.stats.events as f64);
        m.live_flows.set(self.flow_order.len() as f64);
        m.live_computing.set(self.computing_ranks.len() as f64);
        m.flows_launched.set(self.stats.flows_launched as f64);
        m.plan_builds.set(self.stats.plan_builds as f64);
        m.plan_reuses.set(self.stats.plan_reuses as f64);
        m.shared_plan_hits.set(self.stats.shared_plan_hits as f64);
        m.cal_rekeys.set(self.stats.cal_rekeys as f64);
        m.cal_bucket_drains.set(self.stats.cal_bucket_drains as f64);
        m.cal_overflow_len.set(self.calq.overflow.len() as f64);
        m.cal_overflow_peak.set(self.calq.overflow_peak as f64);
        m.heap_pushes.set(self.stats.heap_pushes as f64);
        m.heap_pops.set(self.stats.heap_pops as f64);
        m.heap_skips.set(self.stats.heap_skips as f64);
        m.arena_slot_reuses.set(self.stats.arena_slot_reuses as f64);
        m.parallel_rerate_batches
            .set(self.stats.parallel_rerate_batches as f64);
        m.cal_exact_removals
            .set(self.stats.cal_exact_removals as f64);
        if let Some(rt) = &self.fault {
            m.fault_downtime_s.set(rt.downtime_s);
            m.fault_restarts.set(rt.restarts as f64);
            m.fault_energy_wasted_j.set(rt.energy_wasted_j);
        }
    }

    /// One scheduling pass: process every runnable rank in ascending rank
    /// order, exactly like the reference engine's 0..n scan (in-pass wakes
    /// of higher ranks land in the same pass; everything else waits for the
    /// next one).
    fn drain_ready(&mut self) -> bool {
        for rank in self.ready_next.drain(..) {
            self.ready_now.push(Reverse(rank));
        }
        let mut progressed = false;
        while let Some(Reverse(rank)) = self.ready_now.pop() {
            progressed = true;
            self.process_rank(rank);
        }
        progressed
    }

    /// Run one rank's instantaneous steps until it blocks, starts a
    /// compute, or finishes. The rank's mode is `Ready` on entry.
    fn process_rank(&mut self, rank: usize) {
        // Close the rank's open accounting segment before any mode write.
        // Usually zero-length (the rank became `Ready` at the current
        // time, with a flush); a rank woken mid-drain and re-queued for
        // the *next* pass spends one event `Ready` and accrues its idle
        // segment here.
        self.accrue_rank(rank, self.t);
        loop {
            let steps = self.trace.steps(rank);
            if self.ranks[rank].step_idx >= steps.len() {
                // Iteration boundary.
                let iter = self.ranks[rank].iteration;
                self.iteration_complete_at[iter] = self.iteration_complete_at[iter].max(self.t);
                self.ranks[rank].iteration += 1;
                self.ranks[rank].step_idx = 0;
                // Iterations only ever increment by one, so every rank
                // crosses `== warmup_iterations` exactly once (when warmup
                // is 0, `measure_start` is already set at construction);
                // the counter therefore reaches `world` at exactly the
                // boundary event where the reference engine's all-ranks
                // scan first succeeds.
                if self.ranks[rank].iteration == self.cfg.warmup_iterations {
                    self.ranks_past_warmup += 1;
                }
                if self.ranks[rank].iteration >= self.cfg.iterations {
                    self.ranks[rank].mode = RankMode::Finished;
                    self.finished_ranks += 1;
                    return;
                }
                if self.measure_start.is_none() && self.ranks_past_warmup == self.ranks.len() {
                    self.measure_start = Some(self.t);
                }
                continue;
            }
            let step = steps[self.ranks[rank].step_idx];
            self.ranks[rank].step_idx += 1;
            match step {
                Step::Compute { kind, flops } => {
                    self.obs.task_start(
                        rank,
                        self.ranks[rank].gpu.index() as u32,
                        self.ranks[rank].iteration as u32,
                        TaskKind::Compute(kind),
                        self.t,
                    );
                    self.ranks[rank].mode = RankMode::Computing {
                        kind,
                        remaining_flops: flops,
                    };
                    self.computing_pos[rank] = self.computing_ranks.len() as u32;
                    self.computing_ranks.push(rank);
                    self.mark_rank_dirty(rank);
                    return;
                }
                Step::CollStart { coll } => {
                    self.arrive(rank, coll.0);
                }
                Step::CollWait { coll } => {
                    let key = (self.ranks[rank].iteration as u32, coll.0);
                    let need = self.wait_count[coll.0 as usize];
                    let slot = &mut self.colls[coll.0 as usize][(key.0 & 1) as usize];
                    let blocked = if slot.live && slot.iter == key.0 {
                        if slot.state.complete {
                            slot.state.waits_passed += 1;
                            if slot.state.waits_passed >= need {
                                slot.live = false;
                                self.live_colls -= 1;
                                self.stats.colls_retired += 1;
                            }
                            false
                        } else {
                            slot.state.waiters.push(rank);
                            self.ranks[rank].mode = RankMode::Waiting { coll: coll.0 };
                            true
                        }
                    } else {
                        assert!(
                            !slot.live,
                            "collective {} slab collision: iterations {} and {} live at once",
                            coll.0, slot.iter, key.0
                        );
                        slot.iter = key.0;
                        slot.live = true;
                        slot.state.reset();
                        slot.state.waiters.push(rank);
                        self.live_colls += 1;
                        self.note_live_colls();
                        self.ranks[rank].mode = RankMode::Waiting { coll: coll.0 };
                        true
                    };
                    if blocked {
                        self.obs.task_start(
                            rank,
                            self.ranks[rank].gpu.index() as u32,
                            key.0,
                            TaskKind::CollWait {
                                coll,
                                class: self.coll_class[coll.0 as usize],
                            },
                            self.t,
                        );
                        return;
                    }
                }
            }
        }
    }

    /// A rank arrives at a collective; launch its plan's flows when ready.
    fn arrive(&mut self, rank: usize, coll: u32) {
        let ci = coll as usize;
        let iter = self.ranks[rank].iteration as u32;
        let key = (iter, coll);
        let launch = {
            let slot = &mut self.colls[ci][(iter & 1) as usize];
            if !(slot.live && slot.iter == iter) {
                assert!(
                    !slot.live,
                    "collective {coll} slab collision: iterations {} and {iter} live at once",
                    slot.iter
                );
                slot.iter = iter;
                slot.live = true;
                slot.state.reset();
                self.live_colls += 1;
            }
            let state = &mut slot.state;
            state.arrived += 1;
            let ready = self.coll_eager[ci] || state.arrived == self.coll_group_len[ci];
            if ready && !state.launched {
                state.launched = true;
                true
            } else {
                false
            }
        };
        self.note_live_colls();
        if !launch {
            return;
        }

        let range = if let Some(range) = self.plan_cache[ci] {
            self.stats.plan_reuses += 1;
            range
        } else if let Some(plan) = self.shared_plans.as_ref().and_then(|s| s.get(ci)) {
            self.stats.shared_plan_hits += 1;
            self.install_plan(ci, &plan)
        } else {
            let plan = build_plan(
                self.cluster,
                self.trace,
                &self.ranks,
                coll,
                self.fold_switch_mult,
            );
            if let Some(shared) = &self.shared_plans {
                shared.put(ci, &plan);
            }
            self.stats.plan_builds += 1;
            self.install_plan(ci, &plan)
        };

        let measured = self.ranks[rank].iteration >= self.cfg.warmup_iterations;
        let active = range.len;
        if active > 0 {
            self.load_epoch += 1;
            self.stats.flows_launched += u64::from(active);
        }
        for pfi in range.start..range.start + range.len {
            let pf = self.plan_flows[pfi as usize];
            let slot = self.fa.alloc() as usize;
            self.obs
                .flow_launch(slot as u32, coll, iter, pf.src, pf.dst, self.t);
            // A GPU's flow count crossing 0 → 1 changes its ranks'
            // accounting coefficients: close their segments *before* the
            // increment so the closed span carries the flows-absent rates.
            if self.gpu_flow_count[pf.src as usize] == 0 {
                self.flush_gpu_ranks(pf.src as usize, self.t);
            }
            self.gpu_flow_count[pf.src as usize] += 1;
            if self.gpu_flow_count[pf.src as usize] == 1 {
                self.mark_gpu_ranks_dirty(pf.src as usize);
            }
            if self.gpu_flow_count[pf.dst as usize] == 0 {
                self.flush_gpu_ranks(pf.dst as usize, self.t);
            }
            self.gpu_flow_count[pf.dst as usize] += 1;
            if self.gpu_flow_count[pf.dst as usize] == 1 {
                self.mark_gpu_ranks_dirty(pf.dst as usize);
            }
            for (l, li) in pf.route.indices().enumerate() {
                let hop = self.route_arena.item(li);
                let id = hop.link as usize;
                self.link_load[id] += u32::from(hop.mult);
                self.mark_link_dirty(id);
                if self.heap_mode {
                    self.fa.link_pos[slot][l] = self.link_flows[id].len() as u32;
                    self.link_flows[id].push((slot as u32, l as u8));
                }
            }
            self.fa.remaining[slot] = pf.work;
            self.fa.rate[slot] = 0.0;
            self.fa.acc_since[slot] = self.t;
            self.fa.moved_acc[slot] = 0.0;
            self.fa.rate_epoch[slot] = 0;
            self.fa.heap_key[slot] = f64::INFINITY;
            self.fa.cal_loc[slot] = LOC_NONE;
            self.fa.coll[slot] = coll;
            self.fa.iteration[slot] = iter;
            self.fa.measured[slot] = measured;
            self.fa.pf[slot] = pfi;
            self.flow_order.push(slot as u32);
        }
        self.stats.arena_slot_reuses = self.fa.slot_reuses();

        let slot = &mut self.colls[ci][(iter & 1) as usize];
        debug_assert!(slot.live && slot.iter == iter, "just inserted");
        slot.state.flows_remaining = active;
        if active == 0 {
            self.complete_coll(key, Some(rank), self.t);
        }
    }

    /// Mark a collective instance complete, wake its waiters, and prune its
    /// state if no wait can reference it again.
    ///
    /// `current` is the rank being processed when completion happens inside
    /// a drain pass (`None` when it happens during `advance`): waiters with
    /// a higher rank are still ahead of the reference scan's cursor and run
    /// this pass; everyone else runs next pass. `now` is the completion
    /// time stamped on the observer's wait-span ends (inside `advance` the
    /// clock has not been bumped yet, so callers pass `t + dt`).
    fn complete_coll(&mut self, key: (u32, u32), current: Option<usize>, now: f64) {
        let need = self.wait_count[key.1 as usize];
        let slot = &mut self.colls[key.1 as usize][(key.0 & 1) as usize];
        debug_assert!(slot.live && slot.iter == key.0, "live collective");
        slot.state.complete = true;
        let waiters = std::mem::take(&mut slot.state.waiters);
        slot.state.waits_passed += waiters.len() as u32;
        let prune = slot.state.waits_passed >= need;
        if prune {
            slot.live = false;
            self.live_colls -= 1;
            self.stats.colls_retired += 1;
        }
        self.obs.collective_complete(key.1, key.0, now);
        for &w in &waiters {
            // Close the waiter's waiting segment at completion time,
            // before its mode flips.
            self.accrue_rank(w, now);
            self.obs.task_end(w, now);
            self.ranks[w].mode = RankMode::Ready;
            match current {
                Some(c) if w > c => self.ready_now.push(Reverse(w)),
                _ => self.ready_next.push(w),
            }
        }
        self.stats.wakes += waiters.len() as u64;
    }

    /// Close `rank`'s open accounting segment at `t_end`: accrue its
    /// current mode's coefficients over `[acc_since, t_end]` and restart
    /// the segment. No-op for zero-length segments and inactive (folded-
    /// away) ranks. During a fail-stop outage (`accrual_frozen`) the
    /// segment is dropped instead of accrued — the outage loop injects its
    /// own activity directly.
    fn accrue_rank(&mut self, rank: usize, t_end: f64) {
        let t0 = self.rank_acc_since[rank];
        if t_end <= t0 {
            return;
        }
        self.rank_acc_since[rank] = t_end;
        if !self.rank_active[rank] || self.accrual_frozen {
            return;
        }
        let len = t_end - t0;
        let gpu = self.ranks[rank].gpu.index();
        let flows_present = self.gpu_flow_count[gpu] > 0;
        match self.ranks[rank].mode {
            RankMode::Computing { kind, .. } => accrual::accrue_computing(
                len,
                kind,
                flows_present,
                self.ranks[rank].iteration >= self.cfg.warmup_iterations,
                &mut self.kernel_time[rank],
                &mut self.activity_acc[gpu],
                &mut self.util_acc[gpu],
                &mut self.occ_acc[gpu],
            ),
            RankMode::Waiting { coll } => accrual::accrue_waiting(
                len,
                self.coll_class[coll as usize],
                self.ranks[rank].iteration >= self.cfg.warmup_iterations,
                &mut self.kernel_time[rank],
                &mut self.activity_acc[gpu],
                &mut self.util_acc[gpu],
                &mut self.occ_acc[gpu],
            ),
            _ => {
                if flows_present {
                    accrual::accrue_idle(len, &mut self.activity_acc[gpu]);
                }
            }
        }
    }

    /// Close the accounting segments of every rank placed on `gpu` at
    /// `now`. Called exactly when the GPU's flow count crosses 0 ↔ 1 (its
    /// ranks' activity/occupancy coefficients change).
    fn flush_gpu_ranks(&mut self, gpu: usize, now: f64) {
        for k in 0..self.ranks_of_gpu[gpu].len() {
            let rank = self.ranks_of_gpu[gpu][k] as usize;
            self.accrue_rank(rank, now);
        }
    }

    /// Drain a flow's accumulated movement and charge it to its telemetry
    /// owners. `extra` is movement already computed outside the segment
    /// accrual (the retirement event's final `moved`, residual included).
    fn flush_flow(&mut self, slot: usize, now: f64, extra: f64) {
        if self.accrual_frozen {
            // No work moves during an outage: restart the segment without
            // charging the stalled span.
            self.fa.acc_since[slot] = now;
            return;
        }
        let pending = accrual::take_flow_pending(
            self.fa.rate[slot],
            now,
            &mut self.fa.acc_since[slot],
            &mut self.fa.moved_acc[slot],
        ) + extra;
        if pending == 0.0 {
            return;
        }
        let pf = self.plan_flows[self.fa.pf[slot] as usize];
        let payload = pending * pf.payload_ratio;
        let measured = self.fa.measured[slot];
        for ci in pf.charges.indices() {
            let charge = self.charge_arena.item(ci);
            let gpu = charge.gpu as usize;
            if measured {
                self.traffic.add(gpu, charge.class, payload);
            }
            if charge.class == LinkClass::Pcie {
                self.pcie_window_bytes[gpu] += payload;
            }
        }
    }

    /// Bring every accounting accumulator current at `now`: active ranks
    /// in ascending order, then live flows in `flow_order` order — the
    /// exact sequences the reference engine's world scan and dense flow
    /// loop would have accrued in.
    fn flush_accruals(&mut self, now: f64) {
        for ri in 0..self.active_ranks.len() {
            self.accrue_rank(self.active_ranks[ri] as usize, now);
        }
        for oi in 0..self.flow_order.len() {
            let slot = self.flow_order[oi] as usize;
            self.flush_flow(slot, now, 0.0);
        }
    }

    /// Restart every segment at `now` without accruing anything — used at
    /// the end of a fail-stop outage, whose span must contribute no rank,
    /// flow, or idle accounting (the stall loop injects recovery activity
    /// itself).
    fn rebase_accruals(&mut self, now: f64) {
        for ri in 0..self.active_ranks.len() {
            self.rank_acc_since[self.active_ranks[ri] as usize] = now;
        }
        for oi in 0..self.flow_order.len() {
            self.fa.acc_since[self.flow_order[oi] as usize] = now;
        }
    }

    fn note_live_colls(&mut self) {
        self.stats.peak_live_colls = self.stats.peak_live_colls.max(self.live_colls);
    }

    fn compute_rate(&self, rank: usize, kind: charllm_trace::ComputeKind) -> f64 {
        let gpu = self.ranks[rank].gpu.index();
        let mut rate = self.peak_flops * kind.mfu() * self.freq_ratio[gpu] * self.rank_speed[rank];
        if self.gpu_flow_count[gpu] > 0 {
            rate /= self.cfg.overlap_slowdown;
        }
        rate.max(1.0)
    }

    fn mark_link_dirty(&mut self, link: usize) {
        if !self.link_dirty[link] {
            self.link_dirty[link] = true;
            self.dirty_links.push(link as u32);
        }
    }

    /// Queue a computing rank for heap re-keying. A no-op in scan mode:
    /// the scan derives compute rates fresh every event, and an upward mode
    /// crossing re-keys every computing rank via `rekey_all` regardless.
    fn mark_rank_dirty(&mut self, rank: usize) {
        if self.heap_mode && !self.rank_dirty[rank] {
            self.rank_dirty[rank] = true;
            self.dirty_ranks.push(rank as u32);
        }
    }

    fn mark_gpu_ranks_dirty(&mut self, gpu: usize) {
        if !self.heap_mode {
            return;
        }
        for k in 0..self.ranks_of_gpu[gpu].len() {
            let rank = self.ranks_of_gpu[gpu][k] as usize;
            self.mark_rank_dirty(rank);
        }
    }

    /// Push a fresh completion entry for a computing rank — but only when
    /// the fresh prediction undercuts the stored key (same lower-bound
    /// reasoning as [`Self::rekey_rated_flow`]). The superseded entry is removed
    /// *here*, at the push site, via the rank's stored location — not left
    /// to be popped and skipped later. `force` pushes unconditionally
    /// after the calendar was rebuilt.
    fn push_compute_key(&mut self, rank: usize, force: bool) {
        if let RankMode::Computing {
            kind,
            remaining_flops,
        } = self.ranks[rank].mode
        {
            if !self.heap_mode {
                return;
            }
            let key = self.t + remaining_flops / self.compute_rate(rank, kind);
            if !force && key >= self.rank_key[rank] {
                return;
            }
            let old = self.rank_loc[rank];
            if old != LOC_NONE {
                self.calq_remove(old);
            }
            self.rank_key[rank] = key;
            self.rank_epoch[rank] = self.rank_epoch[rank].wrapping_add(1);
            self.rank_loc[rank] =
                self.calq
                    .push(HeapEntry::compute(key, rank as u32, self.rank_epoch[rank]));
            self.stats.heap_pushes += 1;
        }
    }

    /// Remove a calendar entry by location, re-pointing the owner of
    /// whichever entry `swap_remove` moved into the vacated position.
    fn calq_remove(&mut self, loc: u64) {
        if let Some(meta) = self.calq.remove(loc) {
            let id = ((meta >> 32) & 0x7fff_ffff) as usize;
            if meta & ENTRY_COMPUTE != 0 {
                self.rank_loc[id] = loc;
            } else {
                self.fa.cal_loc[id] = loc;
            }
        }
    }

    /// Install a freshly computed bottleneck `rate` for the flow in `slot`
    /// and re-key its calendar entry if the new prediction undercuts the
    /// stored key.
    ///
    /// Queue keys only need to stay *lower bounds* on true completion
    /// times. A rate decrease (the launch-storm common case) moves the
    /// completion later, so the existing entry's key is still a valid —
    /// merely loose — lower bound and no queue traffic happens at all;
    /// loose keys are re-tightened lazily when they drain. Only when the
    /// fresh prediction is *earlier* than the stored key (a rate increase)
    /// does the old entry get removed — at this push site, via its stored
    /// location — and a re-keyed one inserted.
    fn rekey_rated_flow(&mut self, slot: usize, rate: f64) {
        if rate.to_bits() != self.fa.rate[slot].to_bits() {
            accrual::bank_flow_segment(
                self.fa.rate[slot],
                self.t,
                &mut self.fa.acc_since[slot],
                &mut self.fa.moved_acc[slot],
            );
            self.fa.rate[slot] = rate;
        }
        let key = self.t + self.fa.remaining[slot] / rate;
        if key >= self.fa.heap_key[slot] {
            return;
        }
        self.fa.heap_key[slot] = key;
        let old = self.fa.cal_loc[slot];
        if old != LOC_NONE {
            self.calq_remove(old);
        }
        self.fa.cal_loc[slot] = self.calq.push(HeapEntry::flow(
            key,
            slot as u32,
            self.fa.generation(slot as u32),
        ));
        self.stats.heap_pushes += 1;
    }

    /// Recompute the flow's rate fresh and push an entry unconditionally —
    /// the calendar was just rebuilt (`rekey_all`) and every flow needs an
    /// entry regardless of the old key.
    fn rekey_flow_forced(&mut self, slot: usize) {
        let rate = flow_rate(
            slot,
            &self.fa.pf,
            &self.plan_flows,
            &self.route_arena,
            &self.link_load,
            &self.link_health,
        );
        if rate.to_bits() != self.fa.rate[slot].to_bits() {
            accrual::bank_flow_segment(
                self.fa.rate[slot],
                self.t,
                &mut self.fa.acc_since[slot],
                &mut self.fa.moved_acc[slot],
            );
            self.fa.rate[slot] = rate;
        }
        self.fa.rate_epoch[slot] = self.load_epoch;
        let key = self.t + self.fa.remaining[slot] / rate;
        self.fa.heap_key[slot] = key;
        let old = self.fa.cal_loc[slot];
        if old != LOC_NONE {
            self.calq_remove(old);
        }
        self.fa.cal_loc[slot] = self.calq.push(HeapEntry::flow(
            key,
            slot as u32,
            self.fa.generation(slot as u32),
        ));
        self.stats.heap_pushes += 1;
    }

    /// Scan-mode timestep: the reference engine's exact fold over computing
    /// ranks and in-flight flows — an order-independent `min` over positive
    /// candidates, so it produces bit-identical `dt` to the heap path. Flow
    /// rates refresh lazily off the dirty-link flags (a flow re-derives its
    /// bottleneck only when a route link's load changed since last event);
    /// compute rates are always derived fresh. Clears both dirty lists:
    /// nothing else consumes them while the heap is down.
    fn scan_dt(&mut self) -> f64 {
        let mut dt = self.next_control.min(self.next_fault_t) - self.t;
        for idx in 0..self.computing_ranks.len() {
            let rank = self.computing_ranks[idx];
            if let RankMode::Computing {
                kind,
                remaining_flops,
            } = self.ranks[rank].mode
            {
                dt = dt.min(remaining_flops / self.compute_rate(rank, kind));
            }
        }
        let epoch = self.load_epoch;
        for oi in 0..self.flow_order.len() {
            let slot = self.flow_order[oi] as usize;
            let pf = self.plan_flows[self.fa.pf[slot] as usize];
            let mut stale = false;
            for li in pf.route.indices() {
                stale |= self.link_dirty[self.route_arena.item(li).link as usize];
            }
            if stale {
                let rate = flow_rate(
                    slot,
                    &self.fa.pf,
                    &self.plan_flows,
                    &self.route_arena,
                    &self.link_load,
                    &self.link_health,
                );
                if rate.to_bits() != self.fa.rate[slot].to_bits() {
                    accrual::bank_flow_segment(
                        self.fa.rate[slot],
                        self.t,
                        &mut self.fa.acc_since[slot],
                        &mut self.fa.moved_acc[slot],
                    );
                    self.fa.rate[slot] = rate;
                }
                self.fa.rate_epoch[slot] = epoch;
            }
            dt = dt.min(self.fa.remaining[slot] / self.fa.rate[slot]);
        }
        let mut dirty = std::mem::take(&mut self.dirty_links);
        for &link in &dirty {
            self.link_dirty[link as usize] = false;
        }
        dirty.clear();
        self.dirty_links = dirty;
        let mut dirty = std::mem::take(&mut self.dirty_ranks);
        for &rank in &dirty {
            self.rank_dirty[rank as usize] = false;
        }
        dirty.clear();
        self.dirty_ranks = dirty;
        let dt = dt.max(1e-9);
        #[cfg(debug_assertions)]
        self.debug_check_dt(dt);
        dt
    }

    /// Rebuild the link→flow membership lists from live flows after a stint
    /// in scan mode (which doesn't maintain them). Runs once per upward
    /// mode crossing.
    fn rebuild_link_membership(&mut self) {
        for v in &mut self.link_flows {
            v.clear();
        }
        for oi in 0..self.flow_order.len() {
            let slot = self.flow_order[oi] as usize;
            let pf = self.plan_flows[self.fa.pf[slot] as usize];
            for (l, li) in pf.route.indices().enumerate() {
                let id = self.route_arena.item(li).link as usize;
                let pos = self.link_flows[id].len() as u32;
                self.fa.link_pos[slot][l] = pos;
                self.link_flows[id].push((slot as u32, l as u8));
            }
        }
    }

    /// Rebuild the completion calendar from live state: re-base the wheel
    /// at the current time with a bucket width of ~1 mean event spacing,
    /// then refresh every flow rate and push one fresh entry per flow and
    /// computing rank. Runs every [`REKEY_INTERVAL`] events (resetting
    /// conservative-key drift) and whenever simulated time drifts past
    /// half the wheel horizon.
    fn rekey_all(&mut self) {
        self.stats.cal_rekeys += 1;
        let width = self.avg_dt.max(1e-12);
        self.calq.reset(self.t, width);
        for oi in 0..self.flow_order.len() {
            self.fa.cal_loc[self.flow_order[oi] as usize] = LOC_NONE;
        }
        for idx in 0..self.computing_ranks.len() {
            self.rank_loc[self.computing_ranks[idx]] = LOC_NONE;
        }
        for oi in 0..self.flow_order.len() {
            self.rekey_flow_forced(self.flow_order[oi] as usize);
        }
        for idx in 0..self.computing_ranks.len() {
            let rank = self.computing_ranks[idx];
            self.push_compute_key(rank, true);
        }
        self.events_since_rekey = 0;
    }

    /// Choose the next time step: the earliest completion, capped by the
    /// control period. `None` when nothing is in flight.
    ///
    /// The reference engine evaluates `remaining / rate` for every compute
    /// and flow and folds them with `f64::min` — an order-independent
    /// reduction over positive finite candidates, so the identical `dt` bits
    /// emerge from *any* evaluation order as long as the same candidate set
    /// is covered. This implementation only evaluates candidates that can
    /// matter: it pops the completion heap while an entry's conservative key
    /// can still undercut the running `dt` (plus a drift margin), evaluates
    /// the popped entry's exact candidate from current state, and re-pushes
    /// it. Keys are lower bounds on true completion times (rates only
    /// *decrease* between re-keys: every rate increase — a link load
    /// dropping, a GPU's overlap penalty clearing, a frequency step —
    /// dirties and re-keys its entries first), so no candidate that could
    /// lower `dt` is ever missed; spurious pops are harmless because the
    /// candidate itself is always recomputed exactly.
    ///
    /// Rates are refreshed (and entries re-keyed) in batch for exactly the
    /// flows whose route-link loads changed, via the dirty-link lists;
    /// `advance` then reuses those exact rates, matching the reference
    /// engine where both methods read the same `link_load`. Flows on
    /// untouched links keep their cached rate — the recompute would divide
    /// the same bandwidths by the same loads and reproduce the identical
    /// bits. In debug builds `debug_check_dt` re-derives `dt` with the
    /// reference's full scan and asserts bit-equality.
    fn next_dt(&mut self) -> Option<f64> {
        if self.computing_ranks.is_empty() && self.flow_order.is_empty() {
            return None;
        }
        let live = self.flow_order.len() + self.computing_ranks.len();
        self.stats.peak_live = self.stats.peak_live.max(live as u64);
        if self.heap_mode {
            if 2 * live < self.cfg.sched_heap_threshold {
                // Crossing down (with hysteresis): the scan reads live
                // state directly; drop the now-unmaintained entries.
                self.heap_mode = false;
                self.calq.clear();
                for oi in 0..self.flow_order.len() {
                    self.fa.cal_loc[self.flow_order[oi] as usize] = LOC_NONE;
                }
                for idx in 0..self.computing_ranks.len() {
                    self.rank_loc[self.computing_ranks[idx]] = LOC_NONE;
                }
            } else if self.events_since_rekey >= REKEY_INTERVAL || self.calq.needs_rebase(self.t) {
                self.rekey_all();
            }
        } else if live > self.cfg.sched_heap_threshold {
            // Crossing up: rebuild the link→flow membership lists (not
            // maintained in scan mode) and the calendar from live state.
            self.heap_mode = true;
            self.rebuild_link_membership();
            self.rekey_all();
        }

        if !self.heap_mode {
            return Some(self.scan_dt());
        }
        self.events_since_rekey += 1;

        // Re-rate + re-key flows touched by link-load changes, in three
        // stages: gather the dirty set (deduplicated by stamping
        // `rate_epoch` at gather time), compute every gathered flow's rate
        // — a pure function of frozen loads, fanned out over scoped
        // workers when the batch is big enough — then write back and
        // re-key serially in gather order. The serial pass visits the
        // exact flows in the exact order the all-serial path would, so
        // any worker count produces bit-identical simulations.
        let mut dirty = std::mem::take(&mut self.dirty_links);
        let mut batch = std::mem::take(&mut self.rerate_slots);
        let epoch = self.load_epoch;
        for &link in &dirty {
            let link = link as usize;
            self.link_dirty[link] = false;
            for k in 0..self.link_flows[link].len() {
                let (slot, _) = self.link_flows[link][k];
                if self.fa.rate_epoch[slot as usize] != epoch {
                    self.fa.rate_epoch[slot as usize] = epoch;
                    batch.push(slot);
                }
            }
        }
        dirty.clear();
        self.dirty_links = dirty;
        if !batch.is_empty() {
            let mut rates = std::mem::take(&mut self.rerate_rates);
            rates.clear();
            rates.resize(batch.len(), 0.0);
            let workers = self.cfg.rerate_workers;
            if workers > 1 && batch.len() >= PAR_RERATE_MIN {
                self.stats.parallel_rerate_batches += 1;
                let chunk = batch.len().div_ceil(workers);
                let pf_of = &self.fa.pf;
                let plan_flows = &self.plan_flows;
                let route_arena = &self.route_arena;
                let link_load = &self.link_load;
                let link_health = &self.link_health;
                std::thread::scope(|s| {
                    for (bs, rs) in batch.chunks(chunk).zip(rates.chunks_mut(chunk)) {
                        s.spawn(move || {
                            for (r, &slot) in rs.iter_mut().zip(bs) {
                                *r = flow_rate(
                                    slot as usize,
                                    pf_of,
                                    plan_flows,
                                    route_arena,
                                    link_load,
                                    link_health,
                                );
                            }
                        });
                    }
                });
            } else {
                for (r, &slot) in rates.iter_mut().zip(&batch) {
                    *r = flow_rate(
                        slot as usize,
                        &self.fa.pf,
                        &self.plan_flows,
                        &self.route_arena,
                        &self.link_load,
                        &self.link_health,
                    );
                }
            }
            for (k, &slot) in batch.iter().enumerate() {
                self.rekey_rated_flow(slot as usize, rates[k]);
            }
            self.rerate_rates = rates;
        }
        batch.clear();
        self.rerate_slots = batch;

        // Re-key computes whose rate inputs changed.
        let mut dirty = std::mem::take(&mut self.dirty_ranks);
        for &rank in &dirty {
            let rank = rank as usize;
            self.rank_dirty[rank] = false;
            self.push_compute_key(rank, false);
        }
        dirty.clear();
        self.dirty_ranks = dirty;

        let mut dt = self.next_control.min(self.next_fault_t) - self.t;
        // Drain calendar buckets while one could still hold an entry that
        // lowers `dt`: a key ≤ `t + dt + margin` lies in a bucket whose
        // start is ≤ that bound, and buckets are visited in start order, so
        // breaking at the first bucket past the (only ever shrinking)
        // bound covers every key that could matter. Whole buckets drain at
        // once — the extra candidates are recomputed exactly and folded
        // with `min`, which cannot perturb the result. The margin absorbs
        // the floating-point drift a conservative key accumulates while
        // its entry survives (`remaining -= rate·dt` plus `t += dt`
        // roundings, ≤ ~3ε·(t+dt) per event over at most REKEY_INTERVAL
        // events, i.e. < 1e-11·(t+dt) — four orders under the 1e-8
        // margin).
        let mut repush = std::mem::take(&mut self.repush);
        let mut scratch = Vec::new();
        loop {
            let margin = (self.t + dt) * 1e-8 + 1e-15;
            let bound = self.t + dt + margin;
            let bucket = if self.calq.cursor < CAL_BUCKETS {
                if self.calq.start_of(self.calq.cursor) > bound {
                    break;
                }
                let c = self.calq.cursor;
                self.calq.cursor = c + 1;
                std::mem::replace(&mut self.calq.buckets[c], std::mem::take(&mut scratch))
            } else if !self.calq.overflow.is_empty() && self.calq.horizon() <= bound {
                std::mem::take(&mut self.calq.overflow)
            } else {
                break;
            };
            self.calq.len -= bucket.len();
            self.stats.cal_bucket_drains += 1;
            let drained_overflow = self.calq.cursor >= CAL_BUCKETS && self.calq.overflow.is_empty();
            for mut e in bucket.iter().copied() {
                let candidate = if e.is_compute() {
                    let rank = e.id();
                    if self.rank_epoch[rank] != e.epoch() {
                        self.stats.heap_skips += 1;
                        continue;
                    }
                    self.rank_loc[rank] = LOC_NONE;
                    match self.ranks[rank].mode {
                        RankMode::Computing {
                            kind,
                            remaining_flops,
                        } => remaining_flops / self.compute_rate(rank, kind),
                        _ => {
                            self.stats.heap_skips += 1;
                            continue;
                        }
                    }
                } else {
                    let slot = e.id();
                    if slot >= self.fa.num_slots() || self.fa.gen[slot] != e.epoch() {
                        self.stats.heap_skips += 1;
                        continue;
                    }
                    self.fa.cal_loc[slot] = LOC_NONE;
                    self.fa.remaining[slot] / self.fa.rate[slot]
                };
                dt = dt.min(candidate);
                self.stats.heap_pops += 1;
                // Re-tighten on the way out: the exact candidate just
                // computed is the entry's current true completion, so a
                // loose key (left behind by a rate decrease) is refreshed
                // here instead of draining spuriously again next event.
                e.key = self.t + candidate;
                if e.is_compute() {
                    self.rank_key[e.id()] = e.key;
                } else {
                    self.fa.heap_key[e.id()] = e.key;
                }
                repush.push(e);
            }
            // Recycle the drained bucket's allocation for the next one.
            let mut bucket = bucket;
            bucket.clear();
            scratch = bucket;
            if drained_overflow {
                break;
            }
        }
        let dt = dt.max(1e-9);
        // Entries whose work completes during this event's `advance` are
        // dropped instead of re-inserted (`advance` removes retiring
        // entries by location, so nothing is left behind either way). The
        // predicates replicate `advance`'s completion tests bit-for-bit
        // (same operands, same operation order).
        for e in repush.drain(..) {
            let completes = if e.is_compute() {
                match self.ranks[e.id()].mode {
                    RankMode::Computing {
                        kind,
                        remaining_flops,
                    } => remaining_flops - self.compute_rate(e.id(), kind) * dt <= 1.0,
                    _ => true,
                }
            } else {
                self.fa.remaining[e.id()] - self.fa.rate[e.id()] * dt <= 1.0
            };
            if !completes {
                let loc = self.calq.push(e);
                if e.is_compute() {
                    self.rank_loc[e.id()] = loc;
                } else {
                    self.fa.cal_loc[e.id()] = loc;
                }
            }
        }
        self.repush = repush;
        #[cfg(debug_assertions)]
        self.debug_check_dt(dt);
        Some(dt)
    }

    /// Debug cross-check: re-derive `dt` with the reference engine's full
    /// scan (and every flow rate from the link loads) and demand
    /// bit-equality. Makes every debug-mode test a scheduler audit. The
    /// full scan is O(live) per event, so beyond ~1k live entities the
    /// audit samples every 64th event — large-scale debug suites stay
    /// tractable while the run is still audited throughout.
    #[cfg(debug_assertions)]
    fn debug_check_dt(&self, dt: f64) {
        let live = self.flow_order.len() + self.computing_ranks.len();
        if live > 1024 && !self.stats.events.is_multiple_of(64) {
            return;
        }
        let mut expect = self.next_control.min(self.next_fault_t) - self.t;
        for &rank in &self.computing_ranks {
            if let RankMode::Computing {
                kind,
                remaining_flops,
            } = self.ranks[rank].mode
            {
                expect = expect.min(remaining_flops / self.compute_rate(rank, kind));
            }
        }
        for &slot in &self.flow_order {
            let slot = slot as usize;
            let rate = flow_rate(
                slot,
                &self.fa.pf,
                &self.plan_flows,
                &self.route_arena,
                &self.link_load,
                &self.link_health,
            );
            assert_eq!(
                rate.to_bits(),
                self.fa.rate[slot].to_bits(),
                "flow slot {slot}: cached rate {} != fresh rate {rate} at t={}",
                self.fa.rate[slot],
                self.t
            );
            expect = expect.min(self.fa.remaining[slot] / self.fa.rate[slot]);
        }
        let expect = expect.max(1e-9);
        assert_eq!(
            expect.to_bits(),
            dt.to_bits(),
            "heap dt {dt} != scan dt {expect} at t={}",
            self.t
        );
    }

    /// Advance all in-flight work by `dt` and process completions.
    ///
    /// Only *progress* is per-event: computing ranks step their remaining
    /// flops (over `computing_ranks`, an order-independent set — each
    /// rank's progress touches only its own state) and flows their
    /// remaining work. All accounting accrues lazily in segments (see
    /// [`crate::accrual`]), closed by [`Self::accrue_rank`] /
    /// [`Self::flush_flow`] at mode transitions and boundaries — so the
    /// old per-event world scan and waiting/idle accounting passes are
    /// gone entirely, for folded and unfolded runs alike. Completions are
    /// collected and processed in ascending rank order, preserving the
    /// reference scan's observer-call and wake order.
    fn advance(&mut self, dt: f64) {
        let mut completed = std::mem::take(&mut self.completed_scratch);
        for ci in 0..self.computing_ranks.len() {
            let rank = self.computing_ranks[ci];
            let RankMode::Computing {
                kind,
                remaining_flops,
            } = self.ranks[rank].mode
            else {
                continue;
            };
            let rate = self.compute_rate(rank, kind);
            let left = remaining_flops - rate * dt;
            if left <= 1.0 {
                completed.push(rank as u32);
            } else {
                self.ranks[rank].mode = RankMode::Computing {
                    kind,
                    remaining_flops: left,
                };
            }
        }
        completed.sort_unstable();
        for &done in &completed {
            let rank = done as usize;
            // Close the computing segment at completion time, before the
            // mode flips.
            self.accrue_rank(rank, self.t + dt);
            self.obs.task_end(rank, self.t + dt);
            self.ranks[rank].mode = RankMode::Ready;
            self.remove_computing(rank);
            self.rank_epoch[rank] = self.rank_epoch[rank].wrapping_add(1);
            self.rank_key[rank] = f64::INFINITY;
            // Retire-site removal: drop the rank's calendar entry (if
            // `next_dt` didn't already).
            let loc = self.rank_loc[rank];
            if loc != LOC_NONE {
                self.rank_loc[rank] = LOC_NONE;
                self.calq_remove(loc);
                self.stats.cal_exact_removals += 1;
            }
            self.ready_next.push(rank);
        }
        completed.clear();
        self.completed_scratch = completed;
        self.advance_flows(dt);
    }

    /// Flow progress, using the rates `next_dt` just cached (the reference
    /// engine recomputes them from the same link loads, yielding the same
    /// values). Visits live flows through `flow_order` — launches append
    /// and retirement `swap_remove`s, so the visit sequence matches the
    /// reference engine's dense loop while arena slots (and their calendar
    /// entries) stay put. Traffic is *not* charged here per event: a
    /// surviving flow accrues movement lazily (`acc_since`/`moved_acc`)
    /// and only a retiring flow flushes, charging its whole pending
    /// movement in one shot.
    fn advance_flows(&mut self, dt: f64) {
        let mut loads_changed = false;
        let mut i = 0;
        while i < self.flow_order.len() {
            let slot = self.flow_order[i] as usize;
            let mut moved = (self.fa.rate[slot] * dt).min(self.fa.remaining[slot]);
            let after = self.fa.remaining[slot] - moved;
            let done = after <= 1.0;
            if done {
                // Credit the sub-unit residual so every lowered payload
                // byte lands in the traffic accounting.
                moved += after;
            }
            self.fa.remaining[slot] = if done { 0.0 } else { after };
            if done {
                // One retirement-time charge: movement banked at
                // superseded rates, the open segment at the current rate,
                // and this final event's movement (residual included).
                self.flush_flow(slot, self.t, moved);
                let pf = self.plan_flows[self.fa.pf[slot] as usize];
                let key = (self.fa.iteration[slot], self.fa.coll[slot]);
                self.obs.flow_retire(slot as u32, self.t + dt);
                // Close rank segments on a GPU about to lose its last flow
                // *before* the decrement, so the closing segment still
                // carries the flows-present coefficients.
                if self.gpu_flow_count[pf.src as usize] == 1 {
                    self.flush_gpu_ranks(pf.src as usize, self.t + dt);
                }
                self.gpu_flow_count[pf.src as usize] -= 1;
                if self.gpu_flow_count[pf.src as usize] == 0 {
                    self.mark_gpu_ranks_dirty(pf.src as usize);
                }
                if self.gpu_flow_count[pf.dst as usize] == 1 {
                    self.flush_gpu_ranks(pf.dst as usize, self.t + dt);
                }
                self.gpu_flow_count[pf.dst as usize] -= 1;
                if self.gpu_flow_count[pf.dst as usize] == 0 {
                    self.mark_gpu_ranks_dirty(pf.dst as usize);
                }
                loads_changed = true;
                for li in pf.route.indices() {
                    let hop = self.route_arena.item(li);
                    let id = hop.link as usize;
                    self.link_load[id] -= u32::from(hop.mult);
                    self.mark_link_dirty(id);
                }
                if self.heap_mode {
                    // Retire-site removal: drop the retiring flow's
                    // calendar entry (if `next_dt` didn't already) and its
                    // link-membership records.
                    let loc = self.fa.cal_loc[slot];
                    if loc != LOC_NONE {
                        self.fa.cal_loc[slot] = LOC_NONE;
                        self.calq_remove(loc);
                        self.stats.cal_exact_removals += 1;
                    }
                    self.detach_flow_links(slot);
                }
                let cs = &mut self.colls[key.1 as usize][(key.0 & 1) as usize];
                debug_assert!(cs.live && cs.iter == key.0, "flow has state");
                cs.state.flows_remaining -= 1;
                if cs.state.flows_remaining == 0 {
                    self.complete_coll(key, None, self.t + dt);
                }
                // Stable slots: recycling the arena slot (with a fresh
                // generation stamp) is all the bookkeeping retirement
                // needs — no entry relabeling, no link back-pointer
                // fix-ups for a moved flow.
                self.flow_order.swap_remove(i);
                self.fa.free(slot as u32);
            } else {
                i += 1;
            }
        }
        if loads_changed {
            self.load_epoch += 1;
        }
        self.t += dt;
    }

    /// Remove the flow's membership entries from its route links' flow
    /// lists (swap-remove with back-pointer fixup; O(route length)).
    fn detach_flow_links(&mut self, slot: usize) {
        let pf = self.plan_flows[self.fa.pf[slot] as usize];
        for (l, li) in pf.route.indices().enumerate() {
            let link = self.route_arena.item(li).link as usize;
            let pos = self.fa.link_pos[slot][l] as usize;
            self.link_flows[link].swap_remove(pos);
            if let Some(&(ms, mr)) = self.link_flows[link].get(pos) {
                self.fa.link_pos[ms as usize][mr as usize] = pos as u32;
            }
        }
    }

    fn remove_computing(&mut self, rank: usize) {
        let pos = self.computing_pos[rank] as usize;
        self.computing_ranks.swap_remove(pos);
        self.computing_pos[rank] = u32::MAX;
        if let Some(&moved) = self.computing_ranks.get(pos) {
            self.computing_pos[moved] = pos as u32;
        }
    }

    /// Thermal/governor update + telemetry sampling at a control boundary.
    ///
    /// When a GPU's frequency ratio actually steps (compared bit-for-bit),
    /// its ranks' completion keys go stale and are dirtied for re-keying on
    /// the next `next_dt`; in steady state (or with feedback disabled) the
    /// ratio is unchanged and the live keys stay exact. (The control tick
    /// itself needs no heap entry: `next_dt` seeds `dt` with
    /// `next_control - t`, which is value-equivalent to an always-live
    /// entry at the control boundary.)
    fn control_update(&mut self) {
        // The thermal step and telemetry sample below read the activity /
        // util / PCIe accumulators, so every open accrual segment must be
        // closed first.
        self.flush_accruals(self.t);
        let period = self.cfg.control_period_s;
        let airflow = &self.cluster.node_layout().airflow;
        let slots = airflow.num_slots();
        let measuring = self.measure_start.is_some();

        for ni in 0..self.active_nodes.len() {
            let node = self.active_nodes[ni] as usize;
            let node_powers: Vec<f64> = (0..slots)
                .map(|s| {
                    let gpu = self
                        .cluster
                        .gpu_at(charllm_hw::NodeId(node as u32), s)
                        .index();
                    self.last_power_w[gpu]
                })
                .collect();
            for slot in 0..slots {
                let gpu_id = self.cluster.gpu_at(charllm_hw::NodeId(node as u32), slot);
                let gpu = gpu_id.index();
                let activity = (self.activity_acc[gpu] / period).min(1.0);
                let inlet = airflow.inlet_temp_c(slot, &node_powers) + self.inlet_offset_c[gpu];
                let sample = self.thermals[gpu].step(activity, inlet, period);
                // With feedback disabled the physics still run (for power
                // and temperature telemetry) but clocks stay pinned.
                let new_ratio = if self.cfg.thermal_feedback {
                    self.thermals[gpu].freq_ratio()
                } else {
                    1.0
                };
                if new_ratio.to_bits() != self.freq_ratio[gpu].to_bits() {
                    self.freq_ratio[gpu] = new_ratio;
                    self.mark_gpu_ranks_dirty(gpu);
                }
                self.last_power_w[gpu] = sample.power_w;
                self.obs
                    .sample_tick(gpu as u32, self.t, sample.power_w, period, measuring);
                if measuring {
                    self.energy_measured_j += sample.power_w * period;
                }
                self.activity_acc[gpu] = 0.0;
            }
        }

        if self.t >= self.next_sample - 1e-12 {
            for gi in 0..self.active_gpus.len() {
                let gpu = self.active_gpus[gi] as usize;
                let window = self.cfg.sample_period_s;
                let sample = GpuSample {
                    power_w: self.last_power_w[gpu],
                    temp_c: self.thermals[gpu].temp_c(),
                    freq_mhz: self.thermals[gpu].freq_mhz(),
                    util: (self.util_acc[gpu] / window).min(1.0),
                    pcie_gbps: self.pcie_window_bytes[gpu] / window / 1e9,
                };
                self.telemetry.record(gpu, self.t, sample);
                self.util_acc[gpu] = 0.0;
                self.pcie_window_bytes[gpu] = 0.0;
            }
            self.next_sample += self.cfg.sample_period_s;
        }

        self.publish_metrics();
    }

    fn blocked_summary(&self) -> String {
        let blocked: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s.mode {
                RankMode::Waiting { coll } => {
                    Some(format!("rank {r} waits coll {coll} (iter {})", s.iteration))
                }
                _ => None,
            })
            .take(8)
            .collect();
        blocked.join("; ")
    }

    fn finish(mut self) -> (SimResult, O) {
        // Close every open accrual segment so the final partial control
        // window's busy time and traffic land in the result.
        self.flush_accruals(self.t);
        let obs = self.obs;
        let cfg = &self.cfg;
        let mut iteration_times = Vec::with_capacity(cfg.iterations);
        let mut prev = 0.0;
        for &t in &self.iteration_complete_at {
            iteration_times.push(t - prev);
            prev = t;
        }
        // Gross window includes recovery outages; netting out the downtime
        // keeps `tokens_per_s` a *productive-rate* metric (`- 0.0` when no
        // fault fired, so the no-fault bits are untouched).
        let gross_window = self.iteration_complete_at.last().copied().unwrap_or(0.0)
            - self.measure_start.unwrap_or(0.0);
        let downtime_measured = self.fault.as_ref().map_or(0.0, |rt| rt.downtime_measured_s);
        let measured_window = gross_window - downtime_measured;
        let measured_iters = cfg.measured_iterations() as f64;
        let step_time = if measured_window > 0.0 {
            measured_window / measured_iters
        } else {
            iteration_times.iter().sum::<f64>() / iteration_times.len().max(1) as f64
        };
        let tokens_per_iter = self.trace.meta().tokens_per_iteration as f64;
        let tokens_per_s = if step_time > 0.0 {
            tokens_per_iter / step_time
        } else {
            0.0
        };
        // Goodput divides retained tokens (elastic shrink retains fewer) by
        // the *gross* window, so outage time and redone work drag it below
        // `tokens_per_s` whenever a fault fired.
        let (goodput, energy_wasted, restarts, downtime) = match &self.fault {
            None => (tokens_per_s, 0.0, 0, 0.0),
            Some(rt) => {
                let mean_scale = rt.mean_token_scale(self.t);
                let g = if gross_window > 0.0 {
                    tokens_per_iter * measured_iters * mean_scale / gross_window
                } else {
                    0.0
                };
                (g, rt.energy_wasted_j, rt.restarts, rt.downtime_s)
            }
        };
        let energy_per_step = self.energy_measured_j / measured_iters;
        let tokens_per_joule = if energy_per_step > 0.0 {
            tokens_per_iter / energy_per_step
        } else {
            0.0
        };

        let occupancy = self
            .occ_acc
            .iter()
            .map(|(busy, warps, tbs)| {
                let total = self.t.max(1e-9);
                OccupancyStats {
                    occupancy: busy / total,
                    warps: warps / total,
                    threadblocks: tbs / total,
                }
            })
            .collect();

        let result = SimResult {
            step_time_s: step_time,
            iteration_times_s: iteration_times,
            tokens_per_s,
            energy_per_step_j: energy_per_step,
            tokens_per_joule,
            kernel_time: self
                .kernel_time
                .iter()
                .map(|k| k.scaled(1.0 / measured_iters))
                .collect(),
            traffic: self.traffic,
            telemetry: self.telemetry,
            throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::throttle_ratio)
                .collect(),
            thermal_throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::thermal_throttle_ratio)
                .collect(),
            occupancy,
            sim_time_s: self.t,
            goodput_tokens_per_s: goodput,
            energy_wasted_j: energy_wasted,
            restarts,
            fault_downtime_s: downtime,
            profile: None,
        };
        (result, obs)
    }
}

/// Lower one collective into its iteration-invariant plan: flows with
/// resolved routes, effective work, payload ratios, and charge lists.
///
/// Flows with an empty route (on-device) or no work are dropped here once,
/// instead of being re-filtered at every launch.
fn build_plan(
    cluster: &Cluster,
    trace: &ExecutionTrace,
    ranks: &[RankState],
    coll: u32,
    switch_mult: u16,
) -> CollPlan {
    let inst = trace.collective(charllm_trace::task::CollectiveId(coll));
    let gpus: Vec<GpuId> = inst.group.iter().map(|&r| ranks[r].gpu).collect();
    let plan = lower_collective(
        inst.kind,
        inst.bytes_per_rank,
        &gpus,
        cluster,
        inst.chunking,
    )
    .expect("placement-validated gpus");
    plan_from_lowered(cluster, plan, switch_mult)
}

/// Convert a lowered [`charllm_net::CollectivePlan`] into the engine's
/// cached form: inlined routes/bandwidths, charge lists, and the per-link
/// load multiplier (`switch_mult` on switch-tier links, 1 elsewhere; pass 1
/// for an unfolded plan).
pub(crate) fn plan_from_lowered(
    cluster: &Cluster,
    plan: charllm_net::CollectivePlan,
    switch_mult: u16,
) -> CollPlan {
    let mut flows = Vec::with_capacity(plan.flows.len());
    let mut route = Vec::new();
    for flow in plan.flows {
        flow.route_into(cluster, &mut route).expect("valid route");
        if route.is_empty() {
            continue;
        }
        let work = flow.work_bytes(cluster, &route);
        if work <= 0.0 {
            continue;
        }
        // Precompute which (gpu, class) pairs own each route link for
        // telemetry/traffic charging, in the order the reference engine's
        // per-event ownership match visits them.
        let mut charges = Vec::new();
        for &id in &route {
            let class = cluster.link(id).class;
            for &gpu in &[flow.src, flow.dst] {
                let owns = match class {
                    LinkClass::Pcie => cluster.pcie(gpu) == id,
                    LinkClass::NvLink | LinkClass::XgmiPort => cluster.fabric_port(gpu) == id,
                    LinkClass::XgmiPackage => {
                        // Package bus: charge both endpoints.
                        cluster.same_package(flow.src, flow.dst)
                            && (gpu == flow.src || gpu == flow.dst)
                    }
                    // In-network resources (NIC, switch tiers) belong to no
                    // GPU's telemetry counters.
                    LinkClass::Nic | LinkClass::Switch => false,
                };
                if owns {
                    charges.push((gpu.index() as u32, class));
                }
            }
        }
        assert!(
            route.len() <= MAX_ROUTE_LINKS && charges.len() <= MAX_ROUTE_LINKS,
            "route/charge list exceeds MAX_ROUTE_LINKS; bump the inline plan capacity"
        );
        let mut pf = PlanFlow {
            work,
            payload_ratio: flow.bytes as f64 / work,
            src: flow.src,
            dst: flow.dst,
            route_len: route.len() as u8,
            links: [0; MAX_ROUTE_LINKS],
            bw1e9: [0.0; MAX_ROUTE_LINKS],
            mult: [1; MAX_ROUTE_LINKS],
            charge_len: charges.len() as u8,
            charge_gpu: [0; MAX_ROUTE_LINKS],
            charge_class: [LinkClass::Nic; MAX_ROUTE_LINKS],
        };
        for (l, &id) in route.iter().enumerate() {
            pf.links[l] = id.index() as u32;
            pf.bw1e9[l] = cluster.link(id).bw_gbps * 1e9;
            if cluster.link(id).class == LinkClass::Switch {
                pf.mult[l] = switch_mult;
            }
        }
        for (c, &(gpu, class)) in charges.iter().enumerate() {
            pf.charge_gpu[c] = gpu;
            pf.charge_class[c] = class;
        }
        flows.push(pf);
    }
    CollPlan {
        flows: flows.into_boxed_slice(),
    }
}

/// Warp/threadblock pressure proxies per kernel class.
pub(crate) fn kernel_pressure(kind: charllm_trace::ComputeKind) -> (f64, f64) {
    use charllm_trace::ComputeKind as K;
    match kind {
        K::Gemm => (0.85, 0.9),
        K::MoeGemm => (0.9, 1.0),
        K::Attention | K::Recompute => (0.7, 0.75),
        K::Router | K::Embedding | K::Optimizer => (0.5, 0.4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::{presets, GpuModel, NodeLayout};
    use charllm_models::{presets as models, TrainJob};
    use charllm_net::ChunkingPolicy;
    use charllm_net::CollectiveKind;
    use charllm_parallel::{ParallelismSpec, PipelineSchedule, StagePartition};
    use charllm_trace::builder::{CollKey, TraceBuilder};
    use charllm_trace::lower::{lower_train, DeviceHints};
    use charllm_trace::trace::TraceMeta;
    use charllm_trace::ComputeKind;

    fn one_node_cluster() -> Cluster {
        Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1).unwrap()
    }

    fn run_trace(cluster: &Cluster, trace: &ExecutionTrace, cfg: SimConfig) -> SimResult {
        let placement = Placement::identity(cluster, trace.world()).unwrap();
        Simulator::new(cluster, &placement, trace, cfg)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn pure_compute_matches_analytic_time() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(1);
        // 1e14 FLOPs of GEMM at 1 PFLOP/s * 0.55 MFU = ~0.1818 s.
        b.compute(0, ComputeKind::Gemm, 1e14);
        let trace = b.build(TraceMeta {
            tokens_per_iteration: 1000,
            ..Default::default()
        });
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false; // pinned clocks for the analytic check
        let r = run_trace(&cluster, &trace, cfg);
        let expect = 1e14 / (1e15 * 0.55);
        assert!(
            (r.step_time_s - expect).abs() / expect < 0.05,
            "step {} vs expected {expect}",
            r.step_time_s
        );
        assert!(r.kernel_time[0].get(KernelClass::Gemm) > 0.0);
    }

    #[test]
    fn blocking_allreduce_synchronizes_stragglers() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        b.compute(0, ComputeKind::Gemm, 1e12); // fast rank
        b.compute(1, ComputeKind::Gemm, 5e13); // slow rank
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            1 << 20,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id);
        b.blocking(1, id);
        let trace = b.build(TraceMeta {
            tokens_per_iteration: 1,
            ..Default::default()
        });
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let r = run_trace(&cluster, &trace, cfg);
        // The fast rank spends most of the step waiting in AllReduce.
        let fast_wait = r.kernel_time[0].get(KernelClass::AllReduce);
        let slow_wait = r.kernel_time[1].get(KernelClass::AllReduce);
        assert!(
            fast_wait > 10.0 * slow_wait.max(1e-6),
            "fast {fast_wait} slow {slow_wait}"
        );
    }

    #[test]
    fn unstarted_collective_deadlocks() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            1 << 20,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        // Receiver waits but the sender never starts: rank 0 has no steps.
        b.wait(1, id);
        // Keep the trace structurally valid by having rank 0 send in a
        // LATER iteration than rank 1 expects... simplest: sender starts
        // after an impossible wait on a second collective.
        let id2 = b.collective(
            CollKey {
                site: "p2p2",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            1 << 20,
            vec![1, 0],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.wait(0, id2); // rank 0 waits for rank 1...
        b.start(0, id);
        b.start(1, id2); // ...but rank 1 only sends after its own wait
                         // Reorder rank 1: wait(id) then start(id2) => classic cycle.
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        let res = Simulator::new(&cluster, &placement, &trace, SimConfig::fast())
            .unwrap()
            .run();
        assert!(matches!(res, Err(SimError::Deadlock { .. })), "{res:?}");
    }

    #[test]
    fn lowered_training_step_runs_end_to_end() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let r = run_trace(&cluster, &lowered.trace, SimConfig::fast());
        assert!(r.step_time_s > 0.0);
        assert!(r.tokens_per_s > 0.0);
        assert!(r.energy_per_step_j > 0.0);
        assert!(r.tokens_per_joule > 0.0);
        // TP AllReduce traffic must appear on NVLink.
        let nv: f64 = (0..8).map(|g| r.traffic.fabric(g)).sum();
        assert!(nv > 0.0, "expected NVLink traffic");
        // All ranks spent time in GEMMs.
        for rank in 0..8 {
            assert!(
                r.kernel_time[rank].get(KernelClass::Gemm) > 0.0,
                "rank {rank}"
            );
        }
        // Telemetry got sampled.
        assert!(r.telemetry.power(0).len() > 2);
        assert!(r.telemetry.mean_power_w() > 100.0);
    }

    #[test]
    fn pinned_clocks_run_faster_or_equal() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let with = run_trace(&cluster, &lowered.trace, SimConfig::fast());
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let without = run_trace(&cluster, &lowered.trace, cfg);
        assert!(without.step_time_s <= with.step_time_s * 1.02);
    }

    #[test]
    fn inter_node_config_slower_than_intra_node() {
        // Same 8-rank workload: one node vs spread over 8 nodes (1 GPU each
        // communicating over the 100G NIC).
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();

        let intra = one_node_cluster();
        let hints = DeviceHints::for_spec(intra.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let fast = run_trace(&intra, &lowered.trace, cfg);

        let spread = presets::single_gpu_per_node_cluster(8);
        let slow = run_trace(&spread, &lowered.trace, cfg);
        assert!(
            slow.step_time_s > 1.5 * fast.step_time_s,
            "inter-node {} vs intra-node {}",
            slow.step_time_s,
            fast.step_time_s
        );
    }

    #[test]
    fn placement_mismatch_rejected() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(4);
        b.compute(0, ComputeKind::Gemm, 1.0);
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        assert!(matches!(
            Simulator::new(&cluster, &placement, &trace, SimConfig::fast()),
            Err(SimError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn invalid_trace_rejected() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            8,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id); // rank 1 never arrives -> invalid
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        assert!(matches!(
            Simulator::new(&cluster, &placement, &trace, SimConfig::fast()),
            Err(SimError::InvalidTrace(_))
        ));
    }

    #[test]
    fn plans_are_cached_and_reused_across_iterations() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.iterations = 3;
        cfg.warmup_iterations = 1;
        let placement = Placement::identity(&cluster, 8).unwrap();
        let (_, stats) = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
            .unwrap()
            .run_stats()
            .unwrap();
        assert!(stats.plan_builds > 0);
        assert!(
            stats.plan_builds <= lowered.trace.num_collectives() as u64,
            "at most one build per collective id: {} builds, {} ids",
            stats.plan_builds,
            lowered.trace.num_collectives()
        );
        // 3 iterations: every collective launched after the first launch of
        // its id hits the cache.
        assert_eq!(stats.plan_reuses, 2 * stats.plan_builds);
        assert!(stats.flows_launched > 0);
        assert!(stats.events > 0);
    }

    #[test]
    fn collective_state_is_pruned_after_last_wait() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.iterations = 4;
        cfg.warmup_iterations = 1;
        let placement = Placement::identity(&cluster, 8).unwrap();
        let (_, stats) = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
            .unwrap()
            .run_stats()
            .unwrap();
        let instances = 4 * lowered.trace.num_collectives() as u64;
        assert!(stats.colls_retired > 0, "{stats:?}");
        // Without pruning every one of the `iterations × collectives`
        // instances would stay live; with it the map tracks only the
        // in-flight iteration window.
        assert!(
            stats.peak_live_colls < instances / 2,
            "peak {} of {} instances",
            stats.peak_live_colls,
            instances
        );
        assert!(stats.wakes > 0);
    }

    #[test]
    fn waiters_wake_in_rank_order_matching_reference_scan() {
        // Three ranks block on an AllReduce whose last arriver is rank 0 in
        // a later pass (it computes first); the woken waiters must proceed
        // and the run must terminate — exercising both ready-queue paths
        // (w > current and w <= current).
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(3);
        b.compute(0, ComputeKind::Gemm, 1e12);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            1 << 16,
            vec![0, 1, 2],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id);
        b.blocking(1, id);
        b.blocking(2, id);
        let trace = b.build(TraceMeta {
            tokens_per_iteration: 1,
            ..Default::default()
        });
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let placement = Placement::identity(&cluster, 3).unwrap();
        let (r, stats) = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .run_stats()
            .unwrap();
        assert!(r.step_time_s > 0.0);
        // Ranks 1 and 2 block first; rank 0 launches on arrival and then
        // blocks on its own wait, so all three are woken on completion.
        assert_eq!(stats.wakes, 3);
        assert_eq!(stats.colls_retired, 1);
    }
}
