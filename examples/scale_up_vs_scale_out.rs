//! Scale-up (32xH200) vs. scale-out (64xH100) — the §4.1 study behind
//! Fig. 2: which cluster wins depends on the model's communication
//! intensity and the parallelism strategy.
//!
//! ```sh
//! cargo run --release --example scale_up_vs_scale_out
//! ```

use charllm::insights::crossover;
use charllm::prelude::*;
use charllm::sweep::Sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A communication-bound large model and a compute-bound smaller one.
    // Global batch 128, the paper value: smaller batches would starve the
    // 64-GPU pipeline of microbatches and bias the comparison.
    let models: Vec<(&str, _)> = vec![
        (
            "communication-bound",
            TrainJob::pretrain(gpt3_175b()).with_global_batch(128),
        ),
        (
            "compute-bound",
            TrainJob::pretrain(llama3_70b()).with_global_batch(128),
        ),
    ];

    for (kind, job) in models {
        println!("== {} ({kind}) ==", job.arch.name);
        let up_cluster = hgx_h200_cluster();
        let out_cluster = hgx_h100_cluster();

        let up_specs = paper_parallelisms(&job.arch, up_cluster.num_gpus());
        let out_specs = paper_parallelisms(&job.arch, out_cluster.num_gpus());

        let up = Sweep::new(up_cluster, job.clone().with_recompute(true), up_specs).run()?;
        let out = Sweep::new(out_cluster, job.clone().with_recompute(true), out_specs).run()?;

        println!(
            "  {:<12} {:>14} {:>14} {:>9} {:>9}",
            "config", "32xH200 tok/s", "64xH100 tok/s", "H200 t/J", "H100 t/J"
        );
        for p in crossover(&up, &out) {
            println!(
                "  {:<12} {:>14.0} {:>14.0} {:>9.2} {:>9.2}  {}",
                p.config.split(' ').next().unwrap_or(""),
                p.scale_up_tokens_per_s,
                p.scale_out_tokens_per_s,
                p.scale_up_tokens_per_joule,
                p.scale_out_tokens_per_joule,
                if p.scale_up_wins_perf() {
                    "<- scale-up wins"
                } else {
                    ""
                },
            );
        }
        println!();
    }
    println!(
        "The scale-out cluster has 2x the aggregate compute, so it leads on\n\
         compute-bound models; communication-heavy models narrow the gap or\n\
         flip it because the H200 cluster keeps traffic inside fewer nodes."
    );
    Ok(())
}
