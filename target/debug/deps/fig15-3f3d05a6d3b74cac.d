/root/repo/target/debug/deps/fig15-3f3d05a6d3b74cac.d: crates/bench/benches/fig15.rs

/root/repo/target/debug/deps/fig15-3f3d05a6d3b74cac: crates/bench/benches/fig15.rs

crates/bench/benches/fig15.rs:
