/root/repo/target/debug/examples/config_search-3dbb1aeddcb72e69.d: examples/config_search.rs Cargo.toml

/root/repo/target/debug/examples/libconfig_search-3dbb1aeddcb72e69.rmeta: examples/config_search.rs Cargo.toml

examples/config_search.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
