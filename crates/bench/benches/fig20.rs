//! Figure 20: average SM clock throttling co-analyzed with GPU occupancy,
//! warp and threadblock pressure across configurations and optimizations.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, save_json, try_run};

fn main() {
    banner(
        "Figure 20",
        "throttle ratio vs occupancy / warps / threadblocks, H200",
    );
    let cluster = hgx_h200_cluster();
    let mut rows = Vec::new();
    for arch in [gpt3_175b(), llama3_70b()] {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<7} {:>9} {:>11} {:>8} {:>13}",
            "config", "opt", "thr %", "occupancy", "warps", "threadblocks"
        );
        let base = bench_job(arch.clone());
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for job in [
                base.clone().with_recompute(true),
                base.clone().with_recompute(true).with_cc_overlap(true),
            ] {
                if !feasible(&job, &spec, &cluster) {
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    let occ = &r.sim.occupancy;
                    let n = occ.len().max(1) as f64;
                    let occupancy = occ.iter().map(|o| o.occupancy).sum::<f64>() / n;
                    let warps = occ.iter().map(|o| o.warps).sum::<f64>() / n;
                    let tbs = occ.iter().map(|o| o.threadblocks).sum::<f64>() / n;
                    println!(
                        "{:<14} {:<7} {:>8.1}% {:>11.2} {:>8.2} {:>13.2}",
                        r.parallelism,
                        r.optimization,
                        r.mean_throttle * 100.0,
                        occupancy,
                        warps,
                        tbs,
                    );
                    rows.push(serde_json::json!({
                        "model": r.model,
                        "parallelism": r.parallelism,
                        "optimization": r.optimization,
                        "throttle": r.mean_throttle,
                        "occupancy": occupancy,
                        "warps": warps,
                        "threadblocks": tbs,
                    }));
                }
            }
        }
    }
    save_json("fig20", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: PP-heavy rows carry high warp/threadblock pressure\n\
         and throttle the most; TP-heavy rows keep occupancy high through\n\
         long communication kernels but with low execution pressure and less\n\
         throttling; cc-overlap raises all three metrics and throttling."
    );
}
