//! Pipeline schedules: 1F1B and interleaved (virtual-stage) scheduling.
//!
//! A schedule emits, for one pipeline stage, the ordered list of
//! forward/backward microbatch executions. Cross-rank synchronization is
//! handled downstream by the trace lowering via activation SendRecv
//! matching; sends are eager (buffered) and receives block, mirroring NCCL
//! P2P semantics.

use serde::{Deserialize, Serialize};

use crate::error::ParallelError;

/// One pipeline operation at a stage: run the forward or backward pass of a
/// microbatch through one model chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineOp {
    /// Forward pass of `mb` through model `chunk` (chunk 0 unless
    /// interleaved).
    Forward {
        /// Microbatch index.
        mb: usize,
        /// Virtual model chunk held by this stage.
        chunk: usize,
    },
    /// Backward pass of `mb` through model `chunk`.
    Backward {
        /// Microbatch index.
        mb: usize,
        /// Virtual model chunk held by this stage.
        chunk: usize,
    },
}

impl PipelineOp {
    /// Microbatch index of the op.
    pub fn mb(&self) -> usize {
        match self {
            PipelineOp::Forward { mb, .. } | PipelineOp::Backward { mb, .. } => *mb,
        }
    }

    /// Model chunk of the op.
    pub fn chunk(&self) -> usize {
        match self {
            PipelineOp::Forward { chunk, .. } | PipelineOp::Backward { chunk, .. } => *chunk,
        }
    }

    /// Whether this is a forward op.
    pub fn is_forward(&self) -> bool {
        matches!(self, PipelineOp::Forward { .. })
    }
}

/// The pipeline schedule family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PipelineSchedule {
    /// Megatron's memory-efficient one-forward-one-backward schedule.
    #[default]
    OneFOneB,
    /// Interleaved scheduling with this many virtual chunks per stage
    /// (reduces the pipeline bubble at the cost of more communication).
    Interleaved(usize),
}

impl PipelineSchedule {
    /// Number of virtual model chunks each stage holds.
    pub fn chunks(&self) -> usize {
        match self {
            PipelineSchedule::OneFOneB => 1,
            PipelineSchedule::Interleaved(v) => *v,
        }
    }

    /// The ordered ops for `stage` of `num_stages`, running
    /// `num_microbatches` per step.
    ///
    /// # Errors
    ///
    /// Returns [`ParallelError::InvalidPartition`] if an interleaved
    /// schedule is requested with `num_microbatches` not divisible by
    /// `num_stages` (the Megatron restriction), or zero chunks.
    pub fn ops(
        &self,
        stage: usize,
        num_stages: usize,
        num_microbatches: usize,
    ) -> Result<Vec<PipelineOp>, ParallelError> {
        assert!(stage < num_stages, "stage out of range");
        match self {
            PipelineSchedule::OneFOneB => Ok(one_f_one_b(stage, num_stages, num_microbatches, 1)),
            PipelineSchedule::Interleaved(v) => {
                if *v == 0 {
                    return Err(ParallelError::InvalidPartition(
                        "zero virtual chunks".into(),
                    ));
                }
                if *v == 1 {
                    return Ok(one_f_one_b(stage, num_stages, num_microbatches, 1));
                }
                if !num_microbatches.is_multiple_of(num_stages) {
                    return Err(ParallelError::InvalidPartition(format!(
                        "interleaved schedule needs microbatches ({num_microbatches}) divisible \
                         by pipeline stages ({num_stages})"
                    )));
                }
                Ok(interleaved(stage, num_stages, num_microbatches, *v))
            }
        }
    }

    /// Ideal (zero-jitter) bubble fraction of this schedule: the fraction of
    /// a step a stage spends idle due to pipeline fill/drain.
    pub fn ideal_bubble_fraction(&self, num_stages: usize, num_microbatches: usize) -> f64 {
        let v = self.chunks() as f64;
        let s = num_stages as f64;
        let m = num_microbatches as f64;
        if num_stages <= 1 || num_microbatches == 0 {
            return 0.0;
        }
        ((s - 1.0) / v) / (m + (s - 1.0) / v)
    }
}

fn one_f_one_b(stage: usize, num_stages: usize, m: usize, _v: usize) -> Vec<PipelineOp> {
    let warmup = (num_stages - stage - 1).min(m);
    let mut ops = Vec::with_capacity(2 * m);
    for mb in 0..warmup {
        ops.push(PipelineOp::Forward { mb, chunk: 0 });
    }
    for i in 0..(m - warmup) {
        ops.push(PipelineOp::Forward {
            mb: warmup + i,
            chunk: 0,
        });
        ops.push(PipelineOp::Backward { mb: i, chunk: 0 });
    }
    for mb in (m - warmup)..m {
        ops.push(PipelineOp::Backward { mb, chunk: 0 });
    }
    ops
}

/// Interleaved 1F1B over `v` chunks: forward "units" are grouped so each
/// group of `num_stages` microbatches streams through chunk 0, then chunk 1,
/// etc.; backward units drain chunks in reverse. Warmup depth follows
/// Megatron: `2·(S−s−1) + (v−1)·S` units.
fn interleaved(stage: usize, num_stages: usize, m: usize, v: usize) -> Vec<PipelineOp> {
    let s = num_stages;
    let units = m * v;
    let fwd_unit = |u: usize| -> PipelineOp {
        let g = u / (s * v);
        let p = u % (s * v);
        PipelineOp::Forward {
            mb: g * s + p % s,
            chunk: p / s,
        }
    };
    let bwd_unit = |u: usize| -> PipelineOp {
        let g = u / (s * v);
        let p = u % (s * v);
        PipelineOp::Backward {
            mb: g * s + p % s,
            chunk: v - 1 - p / s,
        }
    };
    let warmup = (2 * (s - stage - 1) + (v - 1) * s).min(units);
    let mut ops = Vec::with_capacity(2 * units);
    for u in 0..warmup {
        ops.push(fwd_unit(u));
    }
    for i in 0..(units - warmup) {
        ops.push(fwd_unit(warmup + i));
        ops.push(bwd_unit(i));
    }
    for u in (units - warmup)..units {
        ops.push(bwd_unit(u));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_complete(ops: &[PipelineOp], m: usize, v: usize) {
        let fwd: HashSet<_> = ops
            .iter()
            .filter(|o| o.is_forward())
            .map(|o| (o.mb(), o.chunk()))
            .collect();
        let bwd: HashSet<_> = ops
            .iter()
            .filter(|o| !o.is_forward())
            .map(|o| (o.mb(), o.chunk()))
            .collect();
        assert_eq!(fwd.len(), m * v, "every (mb, chunk) forward exactly once");
        assert_eq!(bwd.len(), m * v, "every (mb, chunk) backward exactly once");
        assert_eq!(ops.len(), 2 * m * v);
    }

    fn check_fwd_before_bwd(ops: &[PipelineOp]) {
        for (i, op) in ops.iter().enumerate() {
            if !op.is_forward() {
                let key = (op.mb(), op.chunk());
                let fwd_pos = ops
                    .iter()
                    .position(|o| o.is_forward() && (o.mb(), o.chunk()) == key)
                    .expect("matching forward exists");
                assert!(fwd_pos < i, "backward of {key:?} before its forward");
            }
        }
    }

    #[test]
    fn one_f_one_b_complete_and_ordered() {
        for stages in [1, 2, 4, 8] {
            for m in [1, 2, 8, 32] {
                for stage in 0..stages {
                    let ops = PipelineSchedule::OneFOneB.ops(stage, stages, m).unwrap();
                    check_complete(&ops, m, 1);
                    check_fwd_before_bwd(&ops);
                }
            }
        }
    }

    #[test]
    fn last_stage_strictly_alternates() {
        let ops = PipelineSchedule::OneFOneB.ops(3, 4, 8).unwrap();
        // Last stage has zero warmup: F0 B0 F1 B1 ...
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.is_forward(), i % 2 == 0);
            assert_eq!(op.mb(), i / 2);
        }
    }

    #[test]
    fn first_stage_warmup_depth() {
        let ops = PipelineSchedule::OneFOneB.ops(0, 4, 8).unwrap();
        // Stage 0 of 4 warms up with 3 forwards before the first backward.
        assert!(ops[..3].iter().all(|o| o.is_forward()));
        assert!(!ops[4].is_forward());
    }

    #[test]
    fn warmup_capped_by_microbatches() {
        let ops = PipelineSchedule::OneFOneB.ops(0, 8, 2).unwrap();
        check_complete(&ops, 2, 1);
        check_fwd_before_bwd(&ops);
    }

    #[test]
    fn interleaved_complete_and_ordered() {
        for stages in [2usize, 4] {
            for v in [2usize, 4] {
                let m = 2 * stages; // divisible by stages
                for stage in 0..stages {
                    let ops = PipelineSchedule::Interleaved(v)
                        .ops(stage, stages, m)
                        .unwrap();
                    check_complete(&ops, m, v);
                    check_fwd_before_bwd(&ops);
                }
            }
        }
    }

    #[test]
    fn interleaved_requires_divisible_microbatches() {
        assert!(PipelineSchedule::Interleaved(2).ops(0, 4, 6).is_err());
        assert!(PipelineSchedule::Interleaved(0).ops(0, 4, 8).is_err());
    }

    #[test]
    fn interleaved_v1_degenerates_to_1f1b() {
        let a = PipelineSchedule::Interleaved(1).ops(1, 4, 8).unwrap();
        let b = PipelineSchedule::OneFOneB.ops(1, 4, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn interleaving_shrinks_ideal_bubble() {
        let plain = PipelineSchedule::OneFOneB.ideal_bubble_fraction(8, 16);
        let inter = PipelineSchedule::Interleaved(4).ideal_bubble_fraction(8, 16);
        assert!(inter < plain);
    }

    #[test]
    fn bubble_shrinks_with_more_microbatches() {
        let few = PipelineSchedule::OneFOneB.ideal_bubble_fraction(8, 8);
        let many = PipelineSchedule::OneFOneB.ideal_bubble_fraction(8, 64);
        assert!(many < few);
    }

    #[test]
    fn single_stage_has_no_bubble() {
        assert_eq!(PipelineSchedule::OneFOneB.ideal_bubble_fraction(1, 8), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #[test]
        fn one_f_one_b_always_complete_and_ordered(
            stages in 1usize..12,
            stage_seed in 0usize..12,
            m in 1usize..40,
        ) {
            let stage = stage_seed % stages;
            let ops = PipelineSchedule::OneFOneB.ops(stage, stages, m).unwrap();
            prop_assert_eq!(ops.len(), 2 * m);
            let fwd: HashSet<_> = ops.iter().filter(|o| o.is_forward()).map(PipelineOp::mb).collect();
            prop_assert_eq!(fwd.len(), m);
            for (i, op) in ops.iter().enumerate() {
                if !op.is_forward() {
                    let f = ops
                        .iter()
                        .position(|o| o.is_forward() && o.mb() == op.mb())
                        .unwrap();
                    prop_assert!(f < i);
                }
            }
        }

        #[test]
        fn interleaved_complete_when_divisible(
            stages in 2usize..6,
            v in 2usize..4,
            groups in 1usize..4,
        ) {
            let m = stages * groups;
            for stage in 0..stages {
                let ops = PipelineSchedule::Interleaved(v).ops(stage, stages, m).unwrap();
                prop_assert_eq!(ops.len(), 2 * m * v);
                let fwd: HashSet<_> = ops
                    .iter()
                    .filter(|o| o.is_forward())
                    .map(|o| (o.mb(), o.chunk()))
                    .collect();
                prop_assert_eq!(fwd.len(), m * v);
            }
        }

        #[test]
        fn bubble_fraction_in_unit_range(
            stages in 1usize..64,
            m in 1usize..256,
            v in 1usize..4,
        ) {
            let b = PipelineSchedule::Interleaved(v).ideal_bubble_fraction(stages, m);
            prop_assert!((0.0..1.0).contains(&b));
        }
    }
}
