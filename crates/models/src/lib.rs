//! Workload models for the CharLLM-PPT reproduction.
//!
//! Describes the LLM architectures of Table 1 (dense GPT-3/Llama-3 and
//! Mixture-of-Experts Mixtral families) analytically: parameter counts,
//! forward/backward FLOPs, activation memory, and the training-job
//! configuration knobs the paper sweeps (global batch 128, microbatch size,
//! precision, activation recomputation, compute–communication overlap, LoRA).
//!
//! ```
//! use charllm_models::presets;
//!
//! let gpt3 = presets::gpt3_175b();
//! let params = gpt3.total_params();
//! assert!((params as f64 - 175e9).abs() / 175e9 < 0.03);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod error;
pub mod flops;
pub mod job;
pub mod lora;
pub mod memory;
pub mod precision;
pub mod presets;

pub use arch::{MoeConfig, TransformerArch};
pub use error::ModelError;
pub use job::{Optimizations, TrainJob};
pub use lora::LoraConfig;
pub use precision::Precision;
