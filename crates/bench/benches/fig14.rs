//! Figure 14: microbatch-size sweep on the MI250 cluster (activation
//! recomputation enabled) — larger microbatches generally help because the
//! chiplet cluster hits memory limits before thermal ones.

use charllm::prelude::*;
use charllm::sweep::normalized;
use charllm_bench::{banner, bench_job, feasible, report_json, save_json, try_run};

fn main() {
    banner(
        "Figure 14",
        "MI250 microbatch sweep (act on): efficiency/power/temp/clock",
    );
    let cluster = mi250_cluster();
    let mut rows = Vec::new();
    for arch in amd_models() {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<4} {:>7} {:>8} {:>8} {:>8} {:>7} {:>7}",
            "config", "mb", "eff", "avg W", "peak W", "peak C", "MHz", "thr %"
        );
        let base = bench_job(arch.clone()).with_recompute(true);
        let mut reports = Vec::new();
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for mb in MICROBATCH_SWEEP {
                let job = base.clone().with_microbatch(mb);
                if job.validate_for_dp(spec.dp).is_err() || !feasible(&job, &spec, &cluster) {
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    reports.push(r);
                }
            }
        }
        for (r, eff) in normalized(&reports, |r| r.tokens_per_joule) {
            println!(
                "{:<14} {:<4} {:>7.2} {:>8.0} {:>8.0} {:>8.1} {:>7.0} {:>6.1}%",
                r.parallelism,
                r.microbatch,
                eff,
                r.mean_power_w,
                r.peak_power_w,
                r.peak_temp_c,
                r.mean_freq_mhz,
                r.mean_throttle * 100.0,
            );
            rows.push(report_json(r));
        }
    }
    save_json("fig14", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: on MI250 larger microbatches generally improve\n\
         efficiency (clocks boost as work gets more compute-intensive) since\n\
         memory capacity, not thermal stress, is the binding constraint."
    );
}
