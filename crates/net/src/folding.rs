//! Placement-congruence helpers for symmetry folding.
//!
//! Symmetry folding simulates one data-parallel replica and multiplies its
//! load onto shared fabric. It is only sound when every replica is placed
//! *congruently*: the same node-local slots, with a consistent node-to-node
//! translation per replica. The checks here are topology-level (GPU slot
//! and node identity); the simulator layers its own workload-level checks
//! on top.

use std::collections::BTreeMap;

use charllm_hw::{Cluster, GpuId, NodeId};

/// Group the GPUs of a collective by node, preserving order.
pub(crate) fn by_node(gpus: &[GpuId], cluster: &Cluster) -> BTreeMap<NodeId, Vec<GpuId>> {
    let mut map: BTreeMap<NodeId, Vec<GpuId>> = BTreeMap::new();
    for &g in gpus {
        map.entry(cluster.node_of(g)).or_default().push(g);
    }
    map
}

/// First member of each node a group touches, in node order.
pub fn node_leaders(gpus: &[GpuId], cluster: &Cluster) -> Vec<GpuId> {
    by_node(gpus, cluster).values().map(|v| v[0]).collect()
}

/// Whether `b` is a translated copy of `a`: same length, pairwise equal
/// node-local slots, and a consistent *injective* node mapping (two GPUs on
/// one node in `a` land on one common node in `b`, and distinct `a`-nodes
/// land on distinct `b`-nodes).
///
/// This is the congruence test between a representative replica's GPUs and
/// another replica's: a translated copy sees identical intra-node fabric,
/// identical NIC/PCIe attachment, and an identically-shaped inter-node
/// route set.
pub fn translated_copy(a: &[GpuId], b: &[GpuId], cluster: &Cluster) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    let mut rev: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (&ga, &gb) in a.iter().zip(b) {
        if cluster.slot_of(ga) != cluster.slot_of(gb) {
            return false;
        }
        let (na, nb) = (cluster.node_of(ga), cluster.node_of(gb));
        if *fwd.entry(na).or_insert(nb) != nb || *rev.entry(nb).or_insert(na) != na {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;

    #[test]
    fn leaders_one_per_node() {
        let c = presets::hgx_h200_cluster();
        let group: Vec<GpuId> = (0..4).map(GpuId).chain((8..12).map(GpuId)).collect();
        let leaders = node_leaders(&group, &c);
        assert_eq!(leaders, vec![GpuId(0), GpuId(8)]);
    }

    #[test]
    fn translated_copy_accepts_shifted_replica() {
        let c = presets::hgx_h100_cluster(); // 8 nodes x 8
        let a: Vec<GpuId> = (0..8).map(GpuId).collect();
        let b: Vec<GpuId> = (8..16).map(GpuId).collect();
        assert!(translated_copy(&a, &b, &c));
        // Identity is a translation too.
        assert!(translated_copy(&a, &a, &c));
    }

    #[test]
    fn translated_copy_rejects_slot_mismatch() {
        let c = presets::hgx_h100_cluster();
        let a: Vec<GpuId> = (0..4).map(GpuId).collect();
        // Slots 1..5 instead of 0..4: misaligned within the node.
        let b: Vec<GpuId> = (9..13).map(GpuId).collect();
        assert!(!translated_copy(&a, &b, &c));
    }

    #[test]
    fn translated_copy_rejects_node_split_and_merge() {
        let c = presets::hgx_h100_cluster();
        // a: both on node 0; b: split across nodes 1 and 2 (same slots).
        let a = vec![GpuId(0), GpuId(1)];
        let split = vec![GpuId(8), GpuId(17)];
        assert!(!translated_copy(&a, &split, &c));
        // a: two nodes; b: merged onto one node — rejected by injectivity.
        let two = vec![GpuId(0), GpuId(9)];
        let merged = vec![GpuId(16), GpuId(17)];
        assert!(!translated_copy(&two, &merged, &c));
    }

    #[test]
    fn translated_copy_rejects_length_mismatch() {
        let c = presets::hgx_h100_cluster();
        assert!(!translated_copy(&[GpuId(0)], &[GpuId(8), GpuId(9)], &c));
    }
}
