//! Figure 18: thermal distribution and normalized throttling heatmaps on
//! the MI250 cluster, including intra-package GCD skew.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, save_json, try_run};
use charllm_telemetry::Heatmap;

fn main() {
    banner(
        "Figure 18",
        "MI250 per-GCD temperature / throttling heatmaps (chiplet skew)",
    );
    let cluster = mi250_cluster();
    let arch = gpt3_30b();
    let job = bench_job(arch.clone()).with_recompute(true);
    let cols: Vec<String> = (0..cluster.num_gpus()).map(|g| format!("g{g}")).collect();
    let mut temp_rows = Vec::new();
    let mut throttle_rows = Vec::new();
    let mut labels = Vec::new();
    for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
        if !feasible(&job, &spec, &cluster) {
            continue;
        }
        if let Some(r) = try_run(&cluster, &job, spec) {
            temp_rows.push(
                (0..cluster.num_gpus())
                    .map(|g| r.sim.telemetry.temp(g).mean())
                    .collect::<Vec<_>>(),
            );
            throttle_rows.push(r.sim.throttle_ratio.clone());
            labels.push(r.parallelism.clone());
        }
    }
    let temp = Heatmap::new(labels.clone(), cols.clone(), temp_rows);
    let throttle = Heatmap::new(labels, cols, throttle_rows).normalized_rows();
    println!("\n(a) average GCD temperature, deg C:");
    print!("{}", temp.to_ascii());
    println!("(b) normalized throttle residency:");
    print!("{}", throttle.to_ascii());

    // Intra-package skew between paired GCDs (2p, 2p+1) on node 0.
    let mut skews = Vec::new();
    for row in 0..temp.rows.len() {
        for pkg in 0..4 {
            skews.push(temp.get(row, 2 * pkg + 1) - temp.get(row, 2 * pkg));
        }
    }
    let mean_skew = skews.iter().sum::<f64>() / skews.len().max(1) as f64;
    println!("\nmean intra-package GCD temperature skew: {mean_skew:.1} C");
    save_json(
        "fig18",
        &serde_json::json!({
            "temperature_csv": temp.to_csv(),
            "throttle_normalized_csv": throttle.to_csv(),
            "mean_intra_package_skew_c": mean_skew,
        }),
    );
    println!(
        "\nExpected shape: 5-10 C skew between paired GCDs of the same package\n\
         (downstream die hotter), compounding with front-vs-rear package\n\
         placement; throttling follows the hotter dies."
    );
}
