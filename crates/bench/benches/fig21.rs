//! Figure 21: thermal-aware pipeline-stage placement, normalized to the
//! baseline consecutive-ID strategy — symmetric (cold GPUs on early stages)
//! and asymmetric (extra layer on cooler stages) variants.

use charllm::prelude::*;
use charllm_bench::{banner, gbs, save_json, sim_config};
use charllm_hw::presets::hgx_h200_with_nodes;
use charllm_parallel::thermal_aware;

fn main() {
    banner(
        "Figure 21",
        "thermal-aware PP placement: baseline vs symmetric vs asymmetric",
    );
    let mut json = serde_json::Map::new();
    // Llama3-70B: 80 layers over 4 stages (2 nodes); GPT3-175B: 96 layers
    // over 8 stages (4 nodes) — the paper's two granularities.
    let cases: Vec<(TrainJob, usize)> = vec![
        (
            TrainJob::pretrain(llama3_70b())
                .with_global_batch(gbs())
                .with_recompute(true),
            2,
        ),
        (
            TrainJob::pretrain(gpt3_175b())
                .with_global_batch(gbs())
                .with_recompute(true),
            4,
        ),
    ];
    for (job, nodes) in cases {
        let cluster = hgx_h200_with_nodes(nodes);
        let Ok(spec) = thermal_aware::thermal_pp_spec(&cluster) else {
            continue;
        };
        println!(
            "\n--- {} {} on {} ---",
            job.arch.name,
            spec.label(),
            cluster.name()
        );
        let mut results = Vec::new();
        let variants: Vec<(&str, _, Option<_>)> = vec![
            (
                "baseline",
                thermal_aware::baseline_placement(&cluster),
                None,
            ),
            (
                "symmetric",
                thermal_aware::symmetric_placement(&cluster),
                None,
            ),
            (
                "asymmetric",
                thermal_aware::symmetric_placement(&cluster),
                Some(thermal_aware::asymmetric_partition(
                    job.arch.num_layers,
                    spec.pp,
                )),
            ),
        ];
        for (name, placement, partition) in variants {
            let Ok(placement) = placement else { continue };
            let mut b = Experiment::builder()
                .cluster(cluster.clone())
                .job(job.clone())
                .spec(spec)
                .placement(placement)
                .sim_config(sim_config());
            if let Some(Ok(p)) = partition {
                b = b.partition(p);
            }
            match b.run() {
                Ok(r) => {
                    println!(
                        "{name:<11} {:>9.0} tok/s  {:>7.3} tok/J  gap {:>5.1}%  peak {:>5.1}C  thr {:>4.1}%",
                        r.tokens_per_s,
                        r.tokens_per_joule,
                        r.thermal_gap() * 100.0,
                        r.peak_temp_c,
                        r.mean_throttle * 100.0,
                    );
                    results.push((name, r));
                }
                Err(e) => eprintln!("  [skip] {name}: {e}"),
            }
        }
        if let Some((_, base)) = results.iter().find(|(n, _)| *n == "baseline") {
            let mut cmp = serde_json::Map::new();
            for (name, r) in &results {
                cmp.insert(
                    (*name).to_string(),
                    serde_json::json!({
                        "tokens_per_s": r.tokens_per_s,
                        "tokens_per_joule": r.tokens_per_joule,
                        "efficiency_vs_baseline": r.tokens_per_joule / base.tokens_per_joule - 1.0,
                        "thermal_gap": r.thermal_gap(),
                        "gap_change_vs_baseline": r.thermal_gap() - base.thermal_gap(),
                    }),
                );
            }
            for (name, r) in &results {
                if *name != "baseline" {
                    println!(
                        "{name}: efficiency {:+.1}% vs baseline, thermal gap {:+.1} pts",
                        (r.tokens_per_joule / base.tokens_per_joule - 1.0) * 100.0,
                        (r.thermal_gap() - base.thermal_gap()) * 100.0,
                    );
                }
            }
            json.insert(job.arch.name.clone(), serde_json::Value::Object(cmp));
        }
    }
    save_json("fig21", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: symmetric improves efficiency slightly (paper: up\n\
         to 2%); asymmetric helps the coarse-split Llama (paper: +4%, -8%\n\
         gap) but hurts GPT3-175B whose 13/11 split over-imbalances stages."
    );
}
