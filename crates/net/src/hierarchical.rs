//! Hierarchical (two-level) collective lowering.
//!
//! NCCL exploits node locality for groups that span nodes with multiple
//! members per node: reduce-scatter inside each node over NVLink, run the
//! inter-node phase only between node leaders over the NIC, then broadcast
//! the result back inside each node. This moves `(n−1)/n` of the buffer
//! over fast intra-node links and only `(L−1)/L` (L = leaders) over the
//! slow fabric — compared to a flat ring that drags `2·(n−1)/n` of the
//! buffer through the NIC whenever the ring crosses nodes.
//!
//! The flat ring of [`crate::collectives`] remains the default used by the
//! trace lowering (matching the paper's measured stack); this module is the
//! "topology-aware collectives" recommendation of §4.2 made executable.

use charllm_hw::{Cluster, GpuId, HwError};

use crate::chunking::ChunkingPolicy;
use crate::collectives::{lower_collective, CollectiveKind, CollectivePlan};
use crate::folding::by_node;

/// Whether a hierarchical algorithm is profitable: the group spans several
/// nodes and at least one node hosts two or more members.
pub fn is_hierarchical_profitable(gpus: &[GpuId], cluster: &Cluster) -> bool {
    let nodes = by_node(gpus, cluster);
    nodes.len() > 1 && nodes.values().any(|v| v.len() > 1)
}

/// Lower an AllReduce hierarchically: intra-node ReduceScatter, inter-node
/// AllReduce among node leaders, intra-node AllGather.
///
/// Falls back to the flat ring when the hierarchy offers nothing (single
/// node, or one GPU per node).
///
/// # Errors
///
/// Propagates [`HwError::GpuOutOfRange`].
pub fn lower_hierarchical_allreduce(
    bytes: u64,
    gpus: &[GpuId],
    cluster: &Cluster,
    chunking: ChunkingPolicy,
) -> Result<CollectivePlan, HwError> {
    if !is_hierarchical_profitable(gpus, cluster) {
        return lower_collective(CollectiveKind::AllReduce, bytes, gpus, cluster, chunking);
    }
    let nodes = by_node(gpus, cluster);
    let mut flows = Vec::new();

    // Phase 1: intra-node reduce-scatter per node.
    for members in nodes.values() {
        let p = lower_collective(
            CollectiveKind::ReduceScatter,
            bytes,
            members,
            cluster,
            chunking,
        )?;
        flows.extend(p.flows);
    }
    // Phase 2: inter-node all-reduce of each leader's shard. Each leader
    // holds bytes / local_members; use the largest shard for safety.
    let leaders: Vec<GpuId> = nodes.values().map(|v| v[0]).collect();
    let max_local = nodes.values().map(Vec::len).max().unwrap_or(1) as u64;
    let shard = (bytes / max_local).max(1);
    let p = lower_collective(
        CollectiveKind::AllReduce,
        shard,
        &leaders,
        cluster,
        chunking,
    )?;
    flows.extend(p.flows);
    // Phase 3: intra-node all-gather per node.
    for members in nodes.values() {
        let p = lower_collective(CollectiveKind::AllGather, bytes, members, cluster, chunking)?;
        flows.extend(p.flows);
    }

    Ok(CollectivePlan {
        kind: CollectiveKind::AllReduce,
        flows,
        bytes_per_rank: bytes,
    })
}

/// Bytes a plan moves across node boundaries (through any NIC).
pub fn inter_node_bytes(plan: &CollectivePlan, cluster: &Cluster) -> u64 {
    plan.flows
        .iter()
        .filter(|f| !cluster.same_node(f.src, f.dst))
        .map(|f| f.bytes)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;

    fn spanning_group() -> Vec<GpuId> {
        // Two nodes x 4 members each.
        (0..4).map(GpuId).chain((8..12).map(GpuId)).collect()
    }

    #[test]
    fn profitability_detection() {
        let c = presets::hgx_h200_cluster();
        assert!(is_hierarchical_profitable(&spanning_group(), &c));
        // Single node: not profitable.
        let local: Vec<GpuId> = (0..8).map(GpuId).collect();
        assert!(!is_hierarchical_profitable(&local, &c));
        // One GPU per node: not profitable.
        let sparse: Vec<GpuId> = [0u32, 8, 16, 24].iter().map(|&g| GpuId(g)).collect();
        assert!(!is_hierarchical_profitable(&sparse, &c));
    }

    #[test]
    fn hierarchy_slashes_inter_node_traffic() {
        let c = presets::hgx_h200_cluster();
        let bytes = 1u64 << 30;
        let group = spanning_group();
        let flat = lower_collective(
            CollectiveKind::AllReduce,
            bytes,
            &group,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        let hier = lower_hierarchical_allreduce(bytes, &group, &c, ChunkingPolicy::nccl_default())
            .unwrap();
        let flat_x = inter_node_bytes(&flat, &c);
        let hier_x = inter_node_bytes(&hier, &c);
        assert!(
            hier_x * 2 < flat_x,
            "hierarchical {hier_x} vs flat {flat_x} inter-node bytes"
        );
    }

    #[test]
    fn falls_back_to_flat_ring_when_unprofitable() {
        let c = presets::hgx_h200_cluster();
        let local: Vec<GpuId> = (0..8).map(GpuId).collect();
        let hier =
            lower_hierarchical_allreduce(1 << 20, &local, &c, ChunkingPolicy::nccl_default())
                .unwrap();
        let flat = lower_collective(
            CollectiveKind::AllReduce,
            1 << 20,
            &local,
            &c,
            ChunkingPolicy::nccl_default(),
        )
        .unwrap();
        assert_eq!(hier.flows.len(), flat.flows.len());
    }

    #[test]
    fn hierarchical_plan_touches_every_member() {
        let c = presets::hgx_h200_cluster();
        let group = spanning_group();
        let plan =
            lower_hierarchical_allreduce(1 << 26, &group, &c, ChunkingPolicy::nccl_default())
                .unwrap();
        for &g in &group {
            assert!(
                plan.flows.iter().any(|f| f.src == g || f.dst == g),
                "{g} not touched by any flow"
            );
        }
    }
}
