/root/repo/target/debug/deps/charllm_ppt-69a7c56ffc6bace2.d: src/lib.rs

/root/repo/target/debug/deps/libcharllm_ppt-69a7c56ffc6bace2.rlib: src/lib.rs

/root/repo/target/debug/deps/libcharllm_ppt-69a7c56ffc6bace2.rmeta: src/lib.rs

src/lib.rs:
