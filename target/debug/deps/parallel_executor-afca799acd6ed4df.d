/root/repo/target/debug/deps/parallel_executor-afca799acd6ed4df.d: tests/parallel_executor.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_executor-afca799acd6ed4df.rmeta: tests/parallel_executor.rs Cargo.toml

tests/parallel_executor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
