/root/repo/target/release/deps/charllm-347f412e1eb5b3a3.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libcharllm-347f412e1eb5b3a3.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

/root/repo/target/release/deps/libcharllm-347f412e1eb5b3a3.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/insights.rs:
crates/core/src/presets.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sweep.rs:
