//! Cross-layer live metrics hub: counters, gauges and fixed-bucket
//! histograms shared by every layer of the stack while a run is in flight.
//!
//! The paper's methodology samples power/performance/thermal telemetry
//! *live*, not post-hoc; this module is the host-side analogue for the
//! simulator itself. A [`MetricsHub`] owns a small set of **shards** (one
//! per worker thread of a sweep, plus one for the coordinator), each shard
//! holding lock-free atomic instruments. Layers attach via a cheap
//! [`MetricsShard`] handle, register instruments once (a short mutex on
//! the shard's registry), and then record through plain relaxed atomic
//! operations — no locks, no allocation, no cross-shard contention on the
//! hot path.
//!
//! # Zero cost when off
//!
//! [`MetricsHub::disabled`] hands out instruments whose inner slot is
//! `None`; every `inc`/`set`/`observe` is a no-op on them. Layers that
//! integrate the hub store an `Option` of their instrument bundle and skip
//! publication entirely when unattached, so the unobserved hot path runs
//! the exact same instructions as before the hub existed (the engine's
//! golden suite pins byte-identical results).
//!
//! # Snapshots and deltas
//!
//! [`MetricsHub::snapshot`] merges every shard into a sorted
//! [`MetricsSnapshot`]: counters and histogram buckets sum across shards,
//! gauges resolve by last-write (a hub-global set sequence). Snapshots
//! **diff** ([`MetricsSnapshot::diff`]) and deltas **add**
//! ([`MetricsSnapshot::add`]) with exact composition —
//! `snap(a→c) == snap(a→b) + snap(b→c)` bit-for-bit — because every stored
//! quantity is an integer: counters and bucket counts are `u64`, histogram
//! sums accumulate in micro-unit fixed point ([`to_micros`]), and gauges
//! carry their raw `f64` bits plus the set sequence. A property test pins
//! the composition law.
//!
//! Snapshots export as Prometheus text ([`MetricsSnapshot::prometheus_text`])
//! and as a JSON tree ([`MetricsSnapshot::to_json`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use serde_json::{Map, Number, Value};

/// Convert a non-negative quantity to micro-unit fixed point (`1.0` →
/// `1_000_000`). Histogram sums are accumulated in this representation so
/// snapshot deltas subtract exactly; negative and non-finite inputs clamp
/// to zero (instruments only meter non-negative quantities).
pub fn to_micros(v: f64) -> u64 {
    if v.is_finite() && v > 0.0 {
        (v * 1e6).round() as u64
    } else {
        0
    }
}

/// Convert micro-unit fixed point back to a float (`1_000_000` → `1.0`).
pub fn from_micros(u: u64) -> f64 {
    u as f64 / 1e6
}

/// What kind of instrument a metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone `u64` count.
    Counter,
    /// Last-written `f64` value.
    Gauge,
    /// Fixed-bucket distribution of non-negative observations.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Identity of one instrument: a name plus ordered label pairs
/// (Prometheus-style, e.g. `sweep_points_total{outcome="completed"}`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    /// Metric name (`snake_case`, `_total` suffix on counters by
    /// convention).
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id from a name and label slice.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        MetricId {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// Shared storage behind one instrument handle. A single layout serves all
/// three kinds; unused fields stay empty.
#[derive(Debug)]
struct Slot {
    kind: MetricKind,
    /// Counter count, or gauge value bits.
    value: AtomicU64,
    /// Gauge set-ordering stamp (from the hub-global sequence).
    seq: AtomicU64,
    /// Histogram bucket upper bounds, ascending; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    /// One count per bound plus the `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    /// Histogram observation count.
    count: AtomicU64,
    /// Histogram observation sum in micro-unit fixed point.
    sum_micros: AtomicU64,
}

impl Slot {
    fn new(kind: MetricKind, bounds: Vec<f64>) -> Self {
        let buckets = match kind {
            MetricKind::Histogram => (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            _ => Vec::new(),
        };
        Slot {
            kind,
            value: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

/// A monotone counter handle. Cheap to clone; a handle from a disabled hub
/// is a no-op. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    slot: Option<Arc<Slot>>,
}

impl Counter {
    /// A permanently disabled counter (what a disabled hub hands out).
    pub fn disabled() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        if let Some(slot) = &self.slot {
            slot.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current count on this shard (0 when disabled). Cross-shard totals
    /// come from [`MetricsHub::snapshot`].
    pub fn get(&self) -> u64 {
        self.slot
            .as_ref()
            .map_or(0, |s| s.value.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle. Cheap to clone; disabled handles no-op.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    slot: Option<(Arc<Slot>, Arc<AtomicU64>)>,
}

impl Gauge {
    /// A permanently disabled gauge.
    pub fn disabled() -> Self {
        Gauge::default()
    }

    /// Set the gauge. Concurrent sets resolve by a hub-global sequence at
    /// snapshot time (the value and stamp are separate atomics, so a
    /// racing reader may pair a fresh value with a stale stamp — gauges
    /// are sampled approximations by design).
    pub fn set(&self, v: f64) {
        if let Some((slot, seq)) = &self.slot {
            slot.value.store(v.to_bits(), Ordering::Relaxed);
            slot.seq
                .store(seq.fetch_add(1, Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
    }

    /// Current value on this shard (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.slot.as_ref().map_or(0.0, |(s, _)| {
            f64::from_bits(s.value.load(Ordering::Relaxed))
        })
    }
}

/// A fixed-bucket histogram handle. Cheap to clone; disabled handles no-op.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    slot: Option<Arc<Slot>>,
}

impl Histogram {
    /// A permanently disabled histogram.
    pub fn disabled() -> Self {
        Histogram::default()
    }

    /// Record one observation: increments the first bucket whose upper
    /// bound is ≥ `v` (the trailing `+Inf` bucket otherwise), the count,
    /// and the micro-unit sum.
    pub fn observe(&self, v: f64) {
        let Some(slot) = &self.slot else { return };
        let idx = slot
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(slot.bounds.len());
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_micros.fetch_add(to_micros(v), Ordering::Relaxed);
    }
}

/// One shard's instrument registry: ids resolve to slots with a short
/// mutex (registration path only; recording is lock-free on the slots).
type Registry = Mutex<Vec<(MetricId, Arc<Slot>)>>;

/// The hub: a fixed set of per-worker shards plus the gauge set sequence.
/// Construct once per run ([`MetricsHub::new`]) or share a disabled one
/// ([`MetricsHub::disabled`]); hand [`MetricsShard`] handles to layers.
#[derive(Debug)]
pub struct MetricsHub {
    enabled: bool,
    gauge_seq: Arc<AtomicU64>,
    shards: Vec<Registry>,
}

impl MetricsHub {
    /// An enabled hub with `shards` independent shards (typically the
    /// sweep's worker count plus one for the coordinator; clamped to ≥ 1).
    pub fn new(shards: usize) -> Arc<Self> {
        Arc::new(MetricsHub {
            enabled: true,
            gauge_seq: Arc::new(AtomicU64::new(0)),
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
        })
    }

    /// A disabled hub: every instrument it hands out is a no-op and
    /// [`MetricsHub::snapshot`] is empty.
    pub fn disabled() -> Arc<Self> {
        Arc::new(MetricsHub {
            enabled: false,
            gauge_seq: Arc::new(AtomicU64::new(0)),
            shards: Vec::new(),
        })
    }

    /// Whether instruments from this hub record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Number of shards (0 on a disabled hub).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard handle for `worker` (wrapped modulo the shard count).
    pub fn shard(self: &Arc<Self>, worker: usize) -> MetricsShard {
        let index = if self.shards.is_empty() {
            0
        } else {
            worker % self.shards.len()
        };
        MetricsShard {
            hub: Arc::clone(self),
            index,
        }
    }

    fn register(&self, shard: usize, id: MetricId, kind: MetricKind, bounds: &[f64]) -> Arc<Slot> {
        let mut reg = self.shards[shard]
            .lock()
            .expect("metrics registry poisoned");
        if let Some((_, slot)) = reg.iter().find(|(i, _)| *i == id) {
            assert!(
                slot.kind == kind,
                "metric {:?} re-registered as {} (was {})",
                id.name,
                kind.as_str(),
                slot.kind.as_str()
            );
            return Arc::clone(slot);
        }
        let slot = Arc::new(Slot::new(kind, bounds.to_vec()));
        reg.push((id, Arc::clone(&slot)));
        slot
    }

    /// Merge every shard into one sorted snapshot: counters and histogram
    /// buckets sum across shards, gauges resolve to the latest set.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged: std::collections::BTreeMap<MetricId, MetricValue> =
            std::collections::BTreeMap::new();
        for reg in &self.shards {
            let reg = reg.lock().expect("metrics registry poisoned");
            for (id, slot) in reg.iter() {
                let value = match slot.kind {
                    MetricKind::Counter => MetricValue::Counter(slot.value.load(Ordering::Relaxed)),
                    MetricKind::Gauge => MetricValue::Gauge {
                        bits: slot.value.load(Ordering::Relaxed),
                        seq: slot.seq.load(Ordering::Relaxed),
                    },
                    MetricKind::Histogram => MetricValue::Histogram {
                        bounds: slot.bounds.clone(),
                        buckets: slot
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: slot.count.load(Ordering::Relaxed),
                        sum_micros: slot.sum_micros.load(Ordering::Relaxed),
                    },
                };
                match merged.get_mut(id) {
                    None => {
                        merged.insert(id.clone(), value);
                    }
                    Some(existing) => existing.combine(&value),
                }
            }
        }
        MetricsSnapshot {
            entries: merged.into_iter().collect(),
        }
    }
}

/// A layer's handle onto one shard of a [`MetricsHub`]. Clone freely;
/// instrument registration is idempotent per `(shard, id)`.
#[derive(Debug, Clone)]
pub struct MetricsShard {
    hub: Arc<MetricsHub>,
    index: usize,
}

impl MetricsShard {
    /// A handle onto a fresh disabled hub (every instrument no-ops).
    pub fn disabled() -> Self {
        MetricsHub::disabled().shard(0)
    }

    /// The hub this shard belongs to.
    pub fn hub(&self) -> &Arc<MetricsHub> {
        &self.hub
    }

    /// This shard's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether instruments from this shard record anything.
    pub fn enabled(&self) -> bool {
        self.hub.enabled
    }

    /// Register (or look up) a counter on this shard.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        if !self.hub.enabled {
            return Counter::disabled();
        }
        let id = MetricId::new(name, labels);
        Counter {
            slot: Some(self.hub.register(self.index, id, MetricKind::Counter, &[])),
        }
    }

    /// Register (or look up) a gauge on this shard.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        if !self.hub.enabled {
            return Gauge::disabled();
        }
        let id = MetricId::new(name, labels);
        Gauge {
            slot: Some((
                self.hub.register(self.index, id, MetricKind::Gauge, &[]),
                Arc::clone(&self.hub.gauge_seq),
            )),
        }
    }

    /// Register (or look up) a histogram on this shard with the given
    /// ascending bucket upper bounds (a `+Inf` bucket is implicit).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> Histogram {
        if !self.hub.enabled {
            return Histogram::disabled();
        }
        let id = MetricId::new(name, labels);
        Histogram {
            slot: Some(
                self.hub
                    .register(self.index, id, MetricKind::Histogram, bounds),
            ),
        }
    }
}

/// One metric's value inside a snapshot or delta.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter count (a difference of counts in a delta).
    Counter(u64),
    /// Gauge value bits plus the hub-global set stamp that won.
    Gauge {
        /// `f64::to_bits` of the value.
        bits: u64,
        /// Set-ordering stamp (higher = later).
        seq: u64,
    },
    /// Histogram state (bucket-count differences in a delta).
    Histogram {
        /// Bucket upper bounds, ascending (`+Inf` implicit at the end).
        bounds: Vec<f64>,
        /// Per-bucket counts (one per bound, plus the `+Inf` bucket).
        buckets: Vec<u64>,
        /// Observation count.
        count: u64,
        /// Observation sum in micro-unit fixed point.
        sum_micros: u64,
    },
}

impl MetricValue {
    /// The numeric reading: count for counters, value for gauges,
    /// observation sum for histograms.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(c) => *c as f64,
            MetricValue::Gauge { bits, .. } => f64::from_bits(*bits),
            MetricValue::Histogram { sum_micros, .. } => from_micros(*sum_micros),
        }
    }

    /// Merge a same-shard-set reading into this one (cross-shard merge at
    /// snapshot time): counters/histograms sum, gauges keep the later set.
    fn combine(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a = a.wrapping_add(*b),
            (
                MetricValue::Gauge { bits, seq },
                MetricValue::Gauge {
                    bits: ob,
                    seq: oseq,
                },
            ) => {
                if *oseq >= *seq {
                    *bits = *ob;
                    *seq = *oseq;
                }
            }
            (
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum_micros,
                    ..
                },
                MetricValue::Histogram {
                    buckets: obuckets,
                    count: ocount,
                    sum_micros: osum,
                    ..
                },
            ) => {
                for (a, b) in buckets.iter_mut().zip(obuckets) {
                    *a = a.wrapping_add(*b);
                }
                *count = count.wrapping_add(*ocount);
                *sum_micros = sum_micros.wrapping_add(*osum);
            }
            (a, b) => panic!(
                "metric kind mismatch in merge: {} vs {}",
                a.kind_str(),
                b.kind_str()
            ),
        }
    }

    fn subtract(&self, earlier: Option<&MetricValue>) -> MetricValue {
        match (self, earlier) {
            (v, None) => v.clone(),
            (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                MetricValue::Counter(a.wrapping_sub(*b))
            }
            // A delta carries the later snapshot's gauge reading whole:
            // gauges are states, not flows, and the set stamp makes delta
            // addition (last write wins) compose exactly.
            (g @ MetricValue::Gauge { .. }, Some(MetricValue::Gauge { .. })) => g.clone(),
            (
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum_micros,
                },
                Some(MetricValue::Histogram {
                    buckets: obuckets,
                    count: ocount,
                    sum_micros: osum,
                    ..
                }),
            ) => MetricValue::Histogram {
                bounds: bounds.clone(),
                buckets: buckets
                    .iter()
                    .zip(obuckets)
                    .map(|(a, b)| a.wrapping_sub(*b))
                    .collect(),
                count: count.wrapping_sub(*ocount),
                sum_micros: sum_micros.wrapping_sub(*osum),
            },
            (a, Some(b)) => panic!(
                "metric kind mismatch in diff: {} vs {}",
                a.kind_str(),
                b.kind_str()
            ),
        }
    }

    fn kind_str(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

/// A merged, sorted reading of every instrument in a hub — or, via
/// [`MetricsSnapshot::diff`], the exact change between two readings.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(id, value)` pairs sorted by id.
    entries: Vec<(MetricId, MetricValue)>,
}

impl MetricsSnapshot {
    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate `(id, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricId, &MetricValue)> {
        self.entries.iter().map(|(id, v)| (id, v))
    }

    /// Look up one metric by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let id = MetricId::new(name, labels);
        self.entries
            .binary_search_by(|(i, _)| i.cmp(&id))
            .ok()
            .map(|idx| &self.entries[idx].1)
    }

    /// A counter's count (0 when absent or not a counter).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Sum of every counter with `name`, across all label sets (e.g. the
    /// per-worker `worker="n"` series of one logical counter).
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(id, _)| id.name == name)
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// A gauge's value (`None` when absent or not a gauge).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.get(name, labels) {
            Some(MetricValue::Gauge { bits, .. }) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// The exact change from `earlier` to `self`: counters and histogram
    /// buckets subtract, gauges carry the later reading (with its set
    /// stamp). Deltas compose exactly under [`MetricsSnapshot::add`]:
    /// `c.diff(a) == b.diff(a).add(&c.diff(b))`.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(id, v)| {
                let base = earlier
                    .entries
                    .binary_search_by(|(i, _)| i.cmp(id))
                    .ok()
                    .map(|idx| &earlier.entries[idx].1);
                (id.clone(), v.subtract(base))
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Combine two deltas (or a snapshot and a delta): counters and
    /// histogram buckets add, gauges keep the later set stamp.
    pub fn add(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut merged: std::collections::BTreeMap<MetricId, MetricValue> =
            self.entries.iter().cloned().collect();
        for (id, v) in &other.entries {
            match merged.get_mut(id) {
                None => {
                    merged.insert(id.clone(), v.clone());
                }
                Some(existing) => existing.combine(v),
            }
        }
        MetricsSnapshot {
            entries: merged.into_iter().collect(),
        }
    }

    /// Render in the Prometheus text exposition format: one `# TYPE` line
    /// per metric name, histograms expanded into `_bucket`/`_sum`/`_count`
    /// series. Output is sorted and stable (pinned by a golden test).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (id, value) in &self.entries {
            if last_name != Some(id.name.as_str()) {
                out.push_str("# TYPE ");
                out.push_str(&id.name);
                out.push(' ');
                out.push_str(match value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge { .. } => "gauge",
                    MetricValue::Histogram { .. } => "histogram",
                });
                out.push('\n');
                last_name = Some(id.name.as_str());
            }
            match value {
                MetricValue::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        id.name,
                        render_labels(&id.labels, None),
                        c
                    ));
                }
                MetricValue::Gauge { bits, .. } => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        id.name,
                        render_labels(&id.labels, None),
                        f64::from_bits(*bits)
                    ));
                }
                MetricValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum_micros,
                } => {
                    let mut cumulative = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cumulative += b;
                        let le = bounds
                            .get(i)
                            .map_or_else(|| "+Inf".to_string(), |b| format!("{b}"));
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            id.name,
                            render_labels(&id.labels, Some(&le)),
                            cumulative
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        id.name,
                        render_labels(&id.labels, None),
                        from_micros(*sum_micros)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {}\n",
                        id.name,
                        render_labels(&id.labels, None),
                        count
                    ));
                }
            }
        }
        out
    }

    /// Serialize into a JSON tree: an array of
    /// `{name, labels, kind, ...}` objects in sorted order.
    pub fn to_json(&self) -> Value {
        let metrics: Vec<Value> = self
            .entries
            .iter()
            .map(|(id, value)| {
                let mut obj = Map::new();
                obj.insert("name", Value::String(id.name.clone()));
                let mut labels = Map::new();
                for (k, v) in &id.labels {
                    labels.insert(k.clone(), Value::String(v.clone()));
                }
                obj.insert("labels", Value::Object(labels));
                match value {
                    MetricValue::Counter(c) => {
                        obj.insert("kind", Value::from("counter"));
                        obj.insert("value", Value::Number(Number::from_u64(*c)));
                    }
                    MetricValue::Gauge { bits, .. } => {
                        obj.insert("kind", Value::from("gauge"));
                        obj.insert("value", Value::from(f64::from_bits(*bits)));
                    }
                    MetricValue::Histogram {
                        bounds,
                        buckets,
                        count,
                        sum_micros,
                    } => {
                        obj.insert("kind", Value::from("histogram"));
                        obj.insert(
                            "bounds",
                            Value::Array(bounds.iter().map(|&b| Value::from(b)).collect()),
                        );
                        obj.insert(
                            "buckets",
                            Value::Array(buckets.iter().map(|&b| Value::from(b)).collect()),
                        );
                        obj.insert("count", Value::Number(Number::from_u64(*count)));
                        obj.insert("sum", Value::from(from_micros(*sum_micros)));
                    }
                }
                Value::Object(obj)
            })
            .collect();
        let mut root = Map::new();
        root.insert("metrics", Value::Array(metrics));
        Value::Object(root)
    }
}

/// Render `{k="v",...}` (empty string for no labels), with an optional
/// trailing `le` label for histogram buckets. Label values escape `\`,
/// `"` and newlines per the Prometheus text format.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str("le=\"");
        out.push_str(le);
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// One named stage's wall time, from a [`StageTimer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`lower`, `plan_setup`, `event_loop`, `fold_expand`,
    /// `report`).
    pub stage: String,
    /// Host wall-clock seconds spent in the stage.
    pub seconds: f64,
}

/// Host-side self-profile of one run: the wall time of each pipeline
/// stage, in execution order. Attached to a run report when self-profiling
/// is on.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Stages in execution order.
    pub stages: Vec<StageTiming>,
}

impl StageTimings {
    /// Wall seconds of `stage` (0.0 when absent).
    pub fn seconds(&self, stage: &str) -> f64 {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map_or(0.0, |s| s.seconds)
    }

    /// Total wall seconds across stages.
    pub fn total_seconds(&self) -> f64 {
        self.stages.iter().map(|s| s.seconds).sum()
    }
}

/// Wall-clock stage timer: call [`StageTimer::mark`] at each stage
/// boundary; each mark closes the stage that began at the previous one.
#[derive(Debug)]
pub struct StageTimer {
    last: Instant,
    timings: StageTimings,
}

impl StageTimer {
    /// Start timing (the first stage begins now).
    pub fn start() -> Self {
        StageTimer {
            last: Instant::now(),
            timings: StageTimings::default(),
        }
    }

    /// Close the stage named `stage` (running since the previous mark or
    /// [`StageTimer::start`]) and return its duration in seconds.
    pub fn mark(&mut self, stage: &str) -> f64 {
        let now = Instant::now();
        let seconds = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.timings.stages.push(StageTiming {
            stage: stage.to_string(),
            seconds,
        });
        seconds
    }

    /// Finish and return the recorded timings.
    pub fn finish(self) -> StageTimings {
        self.timings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_shards() {
        let hub = MetricsHub::new(3);
        for w in 0..3 {
            hub.shard(w).counter("events_total", &[]).add(10 + w as u64);
        }
        let snap = hub.snapshot();
        assert_eq!(snap.counter("events_total", &[]), 33);
    }

    #[test]
    fn gauges_resolve_last_write() {
        let hub = MetricsHub::new(2);
        let g0 = hub.shard(0).gauge("rate", &[]);
        let g1 = hub.shard(1).gauge("rate", &[]);
        g0.set(1.0);
        g1.set(2.0);
        g0.set(3.0);
        assert_eq!(hub.snapshot().gauge("rate", &[]), Some(3.0));
    }

    #[test]
    fn histogram_buckets_and_fixed_point_sum() {
        let hub = MetricsHub::new(1);
        let h = hub.shard(0).histogram("wall_s", &[], &[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let snap = hub.snapshot();
        let Some(MetricValue::Histogram {
            buckets,
            count,
            sum_micros,
            ..
        }) = snap.get("wall_s", &[])
        else {
            panic!("histogram missing");
        };
        assert_eq!(buckets, &vec![1, 1, 1]);
        assert_eq!(*count, 3);
        assert_eq!(
            *sum_micros,
            to_micros(0.05) + to_micros(0.5) + to_micros(5.0)
        );
    }

    #[test]
    fn disabled_hub_is_inert() {
        let hub = MetricsHub::disabled();
        let shard = hub.shard(0);
        let c = shard.counter("x_total", &[]);
        let g = shard.gauge("y", &[]);
        let h = shard.histogram("z", &[], &[1.0]);
        c.inc();
        g.set(9.0);
        h.observe(0.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert!(hub.snapshot().is_empty());
        assert!(!shard.enabled());
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_latest_gauge() {
        let hub = MetricsHub::new(1);
        let shard = hub.shard(0);
        let c = shard.counter("n_total", &[("k", "v")]);
        let g = shard.gauge("level", &[]);
        c.add(5);
        g.set(1.0);
        let a = hub.snapshot();
        c.add(7);
        g.set(4.0);
        let b = hub.snapshot();
        let d = b.diff(&a);
        assert_eq!(d.counter("n_total", &[("k", "v")]), 7);
        assert_eq!(d.gauge("level", &[]), Some(4.0));
    }

    #[test]
    fn labels_distinguish_series_and_counter_sum_folds_them() {
        let hub = MetricsHub::new(1);
        let shard = hub.shard(0);
        shard.counter("pts_total", &[("outcome", "ok")]).add(3);
        shard.counter("pts_total", &[("outcome", "bad")]).add(2);
        let snap = hub.snapshot();
        assert_eq!(snap.counter("pts_total", &[("outcome", "ok")]), 3);
        assert_eq!(snap.counter_sum("pts_total"), 5);
    }

    #[test]
    fn prometheus_text_shape() {
        let hub = MetricsHub::new(1);
        let shard = hub.shard(0);
        shard.counter("a_total", &[("w", "0")]).add(2);
        shard.gauge("b", &[]).set(1.5);
        shard.histogram("c", &[], &[0.5]).observe(0.25);
        let text = hub.snapshot().prometheus_text();
        assert!(text.contains("# TYPE a_total counter\n"));
        assert!(text.contains("a_total{w=\"0\"} 2\n"));
        assert!(text.contains("# TYPE b gauge\n"));
        assert!(text.contains("b 1.5\n"));
        assert!(text.contains("c_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("c_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("c_sum 0.25\n"));
        assert!(text.contains("c_count 1\n"));
    }

    #[test]
    fn registration_is_idempotent_per_shard() {
        let hub = MetricsHub::new(1);
        let shard = hub.shard(0);
        shard.counter("n_total", &[]).add(1);
        shard.counter("n_total", &[]).add(1);
        assert_eq!(hub.snapshot().counter("n_total", &[]), 2);
    }

    #[test]
    fn stage_timer_records_marks_in_order() {
        let mut t = StageTimer::start();
        t.mark("first");
        t.mark("second");
        let timings = t.finish();
        assert_eq!(timings.stages.len(), 2);
        assert_eq!(timings.stages[0].stage, "first");
        assert!(timings.total_seconds() >= 0.0);
        assert_eq!(timings.seconds("missing"), 0.0);
    }
}
