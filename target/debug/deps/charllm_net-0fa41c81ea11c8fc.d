/root/repo/target/debug/deps/charllm_net-0fa41c81ea11c8fc.d: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/debug/deps/charllm_net-0fa41c81ea11c8fc: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

crates/net/src/lib.rs:
crates/net/src/chunking.rs:
crates/net/src/collectives.rs:
crates/net/src/flow.rs:
crates/net/src/hierarchical.rs:
crates/net/src/projection.rs:
