//! Cross-point memoization for sweeps and searches.
//!
//! A [`SimCache`] remembers the two expensive, deterministic artifacts an
//! [`Experiment`](crate::Experiment) produces before simulating:
//!
//! - the **lowered trace**, a pure function of
//!   `(job, parallelism, schedule, partition, hints, inference shape)`;
//! - the **collective plan set** ([`SharedPlans`]), a pure function of
//!   `(cluster, placement, trace)`.
//!
//! Both are keyed by *content*, not identity: keys are the canonical JSON
//! serialization of the inputs (serde_json prints floats
//! shortest-roundtrip, so distinct values never collapse to one key).
//! Points of a sweep or search that resolve to the same inputs — repeated
//! evaluations of a winning configuration, power-cap or thermal ablations
//! over a fixed workload, re-runs under different [`SimConfig`] knobs
//! (simulator knobs are deliberately *not* part of the key: they change
//! how a trace is replayed, never the trace) — then lower once and route
//! collectives once, instead of once per point.
//!
//! One cache is shared by every worker of an
//! [`Executor`](crate::Executor) pool: lookups take a brief mutex on the
//! map only, building happens outside the lock, and the first publisher
//! of a key wins (duplicate concurrent builds of the same key are
//! harmless — the artifacts are deterministic). Results are byte-identical
//! with and without the cache.
//!
//! [`SimConfig`]: charllm_sim::SimConfig

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::SharedPlans;
use charllm_telemetry::metrics::{Counter, Gauge, MetricsShard};
use charllm_trace::lower::LoweredJob;
use charllm_trace::{DeviceHints, ExecutionTrace, InferenceConfig};

use crate::error::CoreError;

/// Live-metrics handles of a [`SimCache`] (see [`SimCache::with_metrics`]).
/// All handles are inert when the hub is disabled.
#[derive(Debug, Default)]
struct CacheMetrics {
    lowered_hits: Counter,
    lowered_misses: Counter,
    plan_hits: Counter,
    plan_misses: Counter,
    lowered_key_bytes: Counter,
    plan_key_bytes: Counter,
    lowered_entries: Gauge,
    plan_entries: Gauge,
}

impl CacheMetrics {
    fn new(shard: &MetricsShard) -> Self {
        let c = |family: &str, result: &str| {
            shard.counter(
                "cache_lookups_total",
                &[("family", family), ("result", result)],
            )
        };
        CacheMetrics {
            lowered_hits: c("lowered", "hit"),
            lowered_misses: c("lowered", "miss"),
            plan_hits: c("plans", "hit"),
            plan_misses: c("plans", "miss"),
            lowered_key_bytes: shard
                .counter("cache_inserted_key_bytes_total", &[("family", "lowered")]),
            plan_key_bytes: shard.counter("cache_inserted_key_bytes_total", &[("family", "plans")]),
            lowered_entries: shard.gauge("cache_entries", &[("family", "lowered")]),
            plan_entries: shard.gauge("cache_entries", &[("family", "plans")]),
        }
    }
}

/// Content-keyed cache of lowered traces and collective plan sets, shared
/// across the points of a sweep or search (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct SimCache {
    lowered: Mutex<HashMap<String, Arc<LoweredJob>>>,
    plans: Mutex<HashMap<String, Arc<SharedPlans>>>,
    lowered_hits: AtomicU64,
    lowered_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    metrics: Option<CacheMetrics>,
}

/// Hit/miss counters of a [`SimCache`], either cumulative
/// ([`SimCache::stats`]) or for one experiment
/// ([`RunReport::cache`](crate::RunReport::cache)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lowered traces served from the cache.
    pub lowered_hits: u64,
    /// Lowered traces built (and published) on a cache miss.
    pub lowered_misses: u64,
    /// Collective plan sets served from the cache.
    pub plan_hits: u64,
    /// Collective plan sets created on a cache miss.
    pub plan_misses: u64,
}

impl CacheStats {
    /// Total lookups across both maps.
    pub fn lookups(&self) -> u64 {
        self.lowered_hits + self.lowered_misses + self.plan_hits + self.plan_misses
    }

    /// Total hits across both maps.
    pub fn hits(&self) -> u64 {
        self.lowered_hits + self.plan_hits
    }
}

impl SimCache {
    /// An empty cache.
    pub fn new() -> Self {
        SimCache::default()
    }

    /// An empty cache that mirrors its hit/miss counters into live metrics:
    /// `cache_lookups_total{family, result}` and
    /// `cache_inserted_key_bytes_total{family}` counters (content keys *are*
    /// the serialized inputs, so key bytes proxy resident content size) plus
    /// `cache_entries{family}` gauges. [`SimCache::stats`] is unchanged and
    /// the per-experiment [`CacheStats`] deltas stay exact — the hub is an
    /// additional read path, never the source of truth.
    pub fn with_metrics(shard: &MetricsShard) -> Self {
        SimCache {
            metrics: shard.enabled().then(|| CacheMetrics::new(shard)),
            ..SimCache::default()
        }
    }

    /// The content key of a lowered trace: canonical JSON of every input
    /// `lower_train`/`lower_inference` consumes. Exposed so tests can
    /// check the no-collision property directly.
    pub fn lowered_key(
        job: &TrainJob,
        spec: &ParallelismSpec,
        schedule: PipelineSchedule,
        partition: &StagePartition,
        hints: &DeviceHints,
        inference: Option<&InferenceConfig>,
    ) -> String {
        serde_json::to_string(&(job, spec, schedule, &(partition, hints, inference)))
            .expect("lowering inputs serialize")
    }

    /// The content key of a collective plan set: the cluster fingerprint,
    /// the placement, the lowered-trace key the plans belong to, and the
    /// symmetry-fold multiplicity the trace was lowered with (1 =
    /// unfolded). A folded trace has different collective ids and groups
    /// than its unfolded twin, so the two must never share a plan set.
    pub fn plan_key(
        cluster: &Cluster,
        placement: &Placement,
        lowered_key: &str,
        fold_multiplicity: u32,
    ) -> String {
        let placement = serde_json::to_string(placement).expect("placement serializes");
        let mut key = cluster.fingerprint();
        key.push('|');
        key.push_str(&placement);
        key.push('|');
        key.push_str(lowered_key);
        key.push_str("|fold=");
        key.push_str(&fold_multiplicity.to_string());
        key
    }

    /// The lowered trace for `key`, building and publishing it via `build`
    /// on a miss. Returns the artifact and whether it was a hit.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error; nothing is cached on failure.
    pub fn lowered(
        &self,
        key: &str,
        build: impl FnOnce() -> Result<LoweredJob, CoreError>,
    ) -> Result<(Arc<LoweredJob>, bool), CoreError> {
        if let Some(hit) = self.lowered.lock().expect("cache poisoned").get(key) {
            self.lowered_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.lowered_hits.inc();
            }
            return Ok((Arc::clone(hit), true));
        }
        // Build outside the lock: lowering can take milliseconds and other
        // points must not serialize behind it. A concurrent builder of the
        // same key produces identical bits; first insert wins.
        let built = Arc::new(build()?);
        self.lowered_misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.lowered.lock().expect("cache poisoned");
        let inserted = !map.contains_key(key);
        let entry = map.entry(key.to_string()).or_insert_with(|| built);
        let entry = Arc::clone(entry);
        if let Some(m) = &self.metrics {
            m.lowered_misses.inc();
            if inserted {
                m.lowered_key_bytes.add(key.len() as u64);
            }
            m.lowered_entries.set(map.len() as f64);
        }
        drop(map);
        Ok((entry, false))
    }

    /// The shared plan set for
    /// `(cluster, placement, lowered_key, fold_multiplicity)`, creating an
    /// empty set sized for `trace` on a miss. Returns the set and whether
    /// it was a hit. Pass `fold_multiplicity` 1 for an ordinary unfolded
    /// trace and the replica count for a symmetry-folded one (see
    /// [`charllm_sim::fold`]).
    pub fn plans(
        &self,
        cluster: &Cluster,
        placement: &Placement,
        lowered_key: &str,
        trace: &ExecutionTrace,
        fold_multiplicity: u32,
    ) -> (Arc<SharedPlans>, bool) {
        let key = SimCache::plan_key(cluster, placement, lowered_key, fold_multiplicity);
        let mut map = self.plans.lock().expect("cache poisoned");
        if let Some(hit) = map.get(&key) {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.plan_hits.inc();
            }
            return (Arc::clone(hit), true);
        }
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(SharedPlans::for_trace(trace));
        if let Some(m) = &self.metrics {
            m.plan_misses.inc();
            m.plan_key_bytes.add(key.len() as u64);
            m.plan_entries.set((map.len() + 1) as f64);
        }
        map.insert(key, Arc::clone(&set));
        (set, false)
    }

    /// Cumulative hit/miss counters across every worker sharing the cache.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lowered_hits: self.lowered_hits.load(Ordering::Relaxed),
            lowered_misses: self.lowered_misses.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_misses: self.plan_misses.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "lowered {} hits / {} misses, plans {} hits / {} misses",
            self.lowered_hits, self.lowered_misses, self.plan_hits, self.plan_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_models::presets as models;
    use charllm_trace::lower_train;

    fn inputs() -> (TrainJob, ParallelismSpec, StagePartition, DeviceHints) {
        let cluster = charllm_hw::presets::hgx_h200_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::parse("TP2-PP2", cluster.num_gpus()).unwrap();
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        (job, spec, partition, hints)
    }

    #[test]
    fn lowered_key_separates_inputs() {
        let (job, spec, partition, hints) = inputs();
        let key = |job: &TrainJob| {
            SimCache::lowered_key(
                job,
                &spec,
                PipelineSchedule::OneFOneB,
                &partition,
                &hints,
                None,
            )
        };
        let base = key(&job);
        assert_eq!(base, key(&job), "same inputs, same key");
        assert_ne!(base, key(&job.clone().with_global_batch(16)));
        assert_ne!(base, key(&job.clone().with_recompute(true)));
        let inference = InferenceConfig {
            batch: 1,
            prompt_len: 64,
            decode_tokens: 2,
        };
        assert_ne!(
            base,
            SimCache::lowered_key(
                &job,
                &spec,
                PipelineSchedule::OneFOneB,
                &partition,
                &hints,
                Some(&inference),
            ),
            "training and inference never alias"
        );
    }

    #[test]
    fn lowered_builds_once_and_hits_after() {
        let (job, spec, partition, hints) = inputs();
        let key = SimCache::lowered_key(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints,
            None,
        );
        let cache = SimCache::new();
        let build = || {
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(CoreError::from)
        };
        let (first, hit) = cache.lowered(&key, build).unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .lowered(&key, || panic!("hit must not rebuild"))
            .unwrap();
        assert!(hit);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the same artifact"
        );
        assert_eq!(
            cache.stats(),
            CacheStats {
                lowered_hits: 1,
                lowered_misses: 1,
                ..CacheStats::default()
            }
        );
    }

    #[test]
    fn build_failure_is_not_cached() {
        let cache = SimCache::new();
        let err = cache.lowered("k", || Err(CoreError::Incomplete("nope".into())));
        assert!(err.is_err());
        assert_eq!(cache.stats().lookups(), 0, "failed build leaves no trace");
        let (_, hit) = cache
            .lowered("k", || {
                let (job, spec, partition, hints) = inputs();
                lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                    .map_err(CoreError::from)
            })
            .unwrap();
        assert!(!hit, "key stays buildable after a failure");
    }

    #[test]
    fn plan_sets_key_on_cluster_placement_and_trace() {
        let cluster = charllm_hw::presets::hgx_h200_cluster();
        let (job, spec, partition, hints) = inputs();
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let placement = Placement::identity(&cluster, lowered.trace.world()).unwrap();
        let cache = SimCache::new();
        let (set, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 1);
        assert!(!hit);
        assert_eq!(set.num_collectives(), lowered.trace.num_collectives());
        let (again, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 1);
        assert!(hit);
        assert!(Arc::ptr_eq(&set, &again));
        let (_, hit) = cache.plans(&cluster, &placement, "trace-b", &lowered.trace, 1);
        assert!(!hit, "different trace key, different plan set");
        let (_, hit) = cache.plans(&cluster, &placement, "trace-a", &lowered.trace, 4);
        assert!(!hit, "folded and unfolded plan sets never alias");
        let other = charllm_hw::presets::hgx_h100_cluster();
        let other_placement = Placement::identity(&other, lowered.trace.world()).unwrap();
        let (_, hit) = cache.plans(&other, &other_placement, "trace-a", &lowered.trace, 1);
        assert!(!hit, "different cluster, different plan set");
    }
}
