/root/repo/target/debug/deps/proptest_pipeline-60c0d78d1d9e1a13.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-60c0d78d1d9e1a13: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
