//! Thermal-aware pipeline placement (§6, Fig. 21): cluster hot and cold
//! GPUs into separate pipeline stages instead of grouping by consecutive
//! device IDs, optionally shifting a layer from hot to cold stages.
//!
//! ```sh
//! cargo run --release --example thermal_aware_placement
//! ```

use charllm::prelude::*;
use charllm_parallel::thermal_aware;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = hgx_h200_cluster();
    // Llama3-70B: 80 layers over TP4-PP8 (two stages per node, DP disabled),
    // as in the paper's §6 setup. Recompute keeps deep stashing feasible.
    let job = TrainJob::pretrain(llama3_70b())
        .with_global_batch(32)
        .with_recompute(true);
    let spec = thermal_aware::thermal_pp_spec(&cluster)?;

    let run = |name: &str,
               placement: charllm_parallel::Placement,
               partition: Option<charllm_parallel::StagePartition>|
     -> Result<RunReport, Box<dyn std::error::Error>> {
        let mut b = Experiment::builder()
            .cluster(cluster.clone())
            .job(job.clone())
            .spec(spec)
            .placement(placement);
        if let Some(p) = partition {
            b = b.partition(p);
        }
        let report = b.run()?;
        println!(
            "{name:<12} {:>9.0} tok/s  {:>6.2} tok/J  rear-front gap {:>5.1}%  peak {:>5.1}C  thr {:>4.1}%",
            report.tokens_per_s,
            report.tokens_per_joule,
            report.thermal_gap() * 100.0,
            report.peak_temp_c,
            report.mean_throttle * 100.0,
        );
        Ok(report)
    };

    println!("Llama3-70B {} on {}:", spec.label(), cluster.name());
    let baseline = run(
        "baseline",
        thermal_aware::baseline_placement(&cluster)?,
        None,
    )?;
    let symmetric = run(
        "symmetric",
        thermal_aware::symmetric_placement(&cluster)?,
        None,
    )?;
    let asym_partition = thermal_aware::asymmetric_partition(job.arch.num_layers, spec.pp)?;
    let asymmetric = run(
        "asymmetric",
        thermal_aware::symmetric_placement(&cluster)?,
        Some(asym_partition),
    )?;

    println!(
        "\nefficiency vs baseline: symmetric {:+.1}%, asymmetric {:+.1}%",
        (symmetric.tokens_per_joule / baseline.tokens_per_joule - 1.0) * 100.0,
        (asymmetric.tokens_per_joule / baseline.tokens_per_joule - 1.0) * 100.0,
    );
    println!(
        "thermal gap vs baseline: symmetric {:+.1}%, asymmetric {:+.1}%",
        (symmetric.thermal_gap() - baseline.thermal_gap()) * 100.0,
        (asymmetric.thermal_gap() - baseline.thermal_gap()) * 100.0,
    );
    Ok(())
}
