//! Network and collective-communication models for CharLLM-PPT.
//!
//! Lowers logical collectives (AllReduce, AllGather, ReduceScatter,
//! All-to-All, point-to-point SendRecv) onto a [`charllm_hw::Cluster`]
//! topology as sets of concurrent *flows* over shared links. The flow
//! representation is what lets the simulator reproduce the paper's
//! communication findings: NIC/PCIe contention between parallelism groups,
//! fine-grained unchunked SendRecv underutilizing bandwidth (§4.2), and
//! all-to-all expert traffic spilling across nodes when TP crowds EP out of
//! a node.
//!
//! The [`projection`] module implements the paper's §7.1 Astra-Sim-style
//! methodology for extrapolating measured kernel latencies to
//! datacenter-scale DP degrees and faster interconnects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod chunking;
pub mod collectives;
pub mod flow;
pub mod folding;
pub mod health;
pub mod hierarchical;
pub mod projection;

pub use arena::{ArenaItem, SliceArena, SliceRef};
pub use chunking::ChunkingPolicy;
pub use collectives::{lower_collective, CollectiveKind, CollectivePlan};
pub use flow::Flow;
pub use health::LinkHealth;
