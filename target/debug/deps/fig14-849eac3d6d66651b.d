/root/repo/target/debug/deps/fig14-849eac3d6d66651b.d: crates/bench/benches/fig14.rs Cargo.toml

/root/repo/target/debug/deps/libfig14-849eac3d6d66651b.rmeta: crates/bench/benches/fig14.rs Cargo.toml

crates/bench/benches/fig14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
