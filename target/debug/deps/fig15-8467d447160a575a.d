/root/repo/target/debug/deps/fig15-8467d447160a575a.d: crates/bench/benches/fig15.rs Cargo.toml

/root/repo/target/debug/deps/libfig15-8467d447160a575a.rmeta: crates/bench/benches/fig15.rs Cargo.toml

crates/bench/benches/fig15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
