/root/repo/target/debug/deps/charllm_ppt-b97c63dab182febc.d: src/lib.rs

/root/repo/target/debug/deps/charllm_ppt-b97c63dab182febc: src/lib.rs

src/lib.rs:
