/root/repo/target/debug/deps/fig02-7cfea765b33a81b2.d: crates/bench/benches/fig02.rs Cargo.toml

/root/repo/target/debug/deps/libfig02-7cfea765b33a81b2.rmeta: crates/bench/benches/fig02.rs Cargo.toml

crates/bench/benches/fig02.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
