//! Parallelism strategies for the CharLLM-PPT reproduction.
//!
//! Implements the paper's distribution dimensions — tensor (TP), pipeline
//! (PP), expert (EP), data (DP) and fully-sharded data parallelism (FSDP) —
//! with the NeMo/Megatron rank-assignment order **TP → EP → DP → PP** (§3.1),
//! device placement onto [`charllm_hw::Cluster`] topologies (including the
//! §6 thermal-aware pipeline placements), per-rank memory footprints, and
//! enumeration of the valid configurations for a model × cluster pair.
//!
//! ```
//! use charllm_parallel::ParallelismSpec;
//!
//! // The paper's "TP4-PP4" on a 32-GPU system implies an additional DP of 2.
//! let spec = ParallelismSpec::infer_dp(4, 4, 1, 32, false).unwrap();
//! assert_eq!(spec.dp, 2);
//! assert_eq!(spec.label(), "TP4-PP4");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod error;
pub mod mapping;
pub mod memory;
pub mod placement;
pub mod schedule;
pub mod spec;
pub mod thermal_aware;

pub use error::ParallelError;
pub use mapping::{RankCoords, RankGrid};
pub use memory::{fits, rank_memory, StagePartition};
pub use placement::Placement;
pub use schedule::{PipelineOp, PipelineSchedule};
pub use spec::ParallelismSpec;
