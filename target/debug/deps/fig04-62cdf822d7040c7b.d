/root/repo/target/debug/deps/fig04-62cdf822d7040c7b.d: crates/bench/benches/fig04.rs Cargo.toml

/root/repo/target/debug/deps/libfig04-62cdf822d7040c7b.rmeta: crates/bench/benches/fig04.rs Cargo.toml

crates/bench/benches/fig04.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
