//! Airflow and cooling geometry (Fig. 16 of the paper).
//!
//! Both evaluated server designs use front-to-back airflow: GPUs near the
//! exhaust inhale air preheated by upstream devices, which is the root cause
//! of the paper's persistent thermal imbalance (§6, Figs. 17–19).
//!
//! The model is a linear preheat matrix `W`: the inlet air temperature of
//! GPU `i` is `ambient + Σ_j W[i][j] · P_j` where `P_j` is the instantaneous
//! power of GPU `j` in the same node. Per-slot cooling efficiency multipliers
//! capture residual differences in heatsink airflow.

use serde::{Deserialize, Serialize};

use crate::error::HwError;

/// Airflow/cooling description of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AirflowLayout {
    /// Ambient (cold-aisle) inlet temperature in °C.
    pub ambient_c: f64,
    /// Preheat coefficients in °C per watt: `preheat[i][j]` is the inlet
    /// temperature rise at slot `i` per watt dissipated at slot `j`.
    preheat: Vec<Vec<f64>>,
    /// Per-slot thermal-resistance multiplier (1.0 = nominal cooling; >1.0 =
    /// worse cooling). Indexed by local GPU slot.
    cooling_factor: Vec<f64>,
    /// Slots considered "rear" (near the exhaust) for reporting purposes.
    rear_slots: Vec<usize>,
}

impl AirflowLayout {
    /// Build a layout from an explicit preheat matrix.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNodeLayout`] if the matrix is not square or
    /// the cooling-factor vector length does not match, or if any coefficient
    /// is negative.
    pub fn new(
        ambient_c: f64,
        preheat: Vec<Vec<f64>>,
        cooling_factor: Vec<f64>,
        rear_slots: Vec<usize>,
    ) -> Result<Self, HwError> {
        let n = preheat.len();
        if preheat.iter().any(|row| row.len() != n) {
            return Err(HwError::InvalidNodeLayout(
                "preheat matrix must be square".into(),
            ));
        }
        if cooling_factor.len() != n {
            return Err(HwError::InvalidNodeLayout(format!(
                "cooling_factor has {} entries for {} slots",
                cooling_factor.len(),
                n
            )));
        }
        if preheat.iter().flatten().any(|&w| w < 0.0) {
            return Err(HwError::InvalidNodeLayout(
                "preheat coefficients must be >= 0".into(),
            ));
        }
        if cooling_factor.iter().any(|&c| c <= 0.0) {
            return Err(HwError::InvalidNodeLayout(
                "cooling factors must be > 0".into(),
            ));
        }
        if rear_slots.iter().any(|&s| s >= n) {
            return Err(HwError::InvalidNodeLayout("rear slot out of range".into()));
        }
        Ok(AirflowLayout {
            ambient_c,
            preheat,
            cooling_factor,
            rear_slots,
        })
    }

    /// Uniform cooling with no preheating (useful for ablations that switch
    /// the thermal-imbalance mechanism off).
    pub fn uniform(num_slots: usize, ambient_c: f64) -> Self {
        AirflowLayout {
            ambient_c,
            preheat: vec![vec![0.0; num_slots]; num_slots],
            cooling_factor: vec![1.0; num_slots],
            rear_slots: Vec::new(),
        }
    }

    /// The HGX H100/H200 layout (Fig. 16a): 8 GPUs in two ranks of four with
    /// front-to-back airflow. Device enumeration interleaves the rows (a
    /// physical reality the paper's §6 placement exploits): even device IDs
    /// (0, 2, 4, 6) sit at the intake, odd IDs (1, 3, 5, 7) directly
    /// downstream of their even partner near the exhaust.
    ///
    /// Coefficients are calibrated so a fully loaded node (~650 W/GPU) shows
    /// a rear-vs-front core-temperature gap of roughly 15–25 %, matching the
    /// up-to-27 % differential of Fig. 17a.
    pub fn hgx() -> Self {
        let n = 8;
        let mut w = vec![vec![0.0; n]; n];
        for i in 0..4 {
            let front = 2 * i;
            let rear = 2 * i + 1;
            // Rear device is directly downstream of its front partner.
            w[rear][front] = 0.026;
            // Mild lateral mixing with the neighbouring front devices.
            if i > 0 {
                w[rear][front - 2] = 0.005;
            }
            if i < 3 {
                w[rear][front + 2] = 0.005;
            }
        }
        // Slight self-recirculation at the rear of the chassis.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    w[2 * i + 1][2 * j + 1] = 0.002;
                }
            }
        }
        // Rear heatsinks also see slightly lower mass flow.
        let mut cooling = vec![1.0; n];
        for (slot, c) in cooling.iter_mut().enumerate() {
            if slot % 2 == 1 {
                *c = 1.12;
            }
        }
        AirflowLayout::new(26.0, w, cooling, vec![1, 3, 5, 7])
            .expect("hgx layout is statically valid")
    }

    /// The MI250 layout (Fig. 16b): 4 packages per node, 2 GCDs each
    /// (8 logical GPUs). Within a package the second GCD sits downstream of
    /// the first (the paper's 5–10 °C intra-package skew, Fig. 18a);
    /// packages 2 and 3 sit downstream of packages 0 and 1.
    pub fn mi250() -> Self {
        let n = 8;
        let mut w = vec![vec![0.0; n]; n];
        for pkg in 0..4 {
            let a = 2 * pkg; // upstream GCD
            let b = 2 * pkg + 1; // downstream GCD in same package
            w[b][a] = 0.032; // ~8 C at 250 W
            w[a][b] = 0.006; // package heat spreading
        }
        // Rear packages (2, 3) are downstream of front packages (0, 1).
        for (front, rear) in [(0usize, 2usize), (1, 3)] {
            for fg in 0..2 {
                for rg in 0..2 {
                    w[2 * rear + rg][2 * front + fg] = 0.012;
                }
            }
        }
        let mut cooling = vec![1.0; n];
        for c in cooling.iter_mut().take(8).skip(4) {
            *c = 1.05;
        }
        AirflowLayout::new(26.0, w, cooling, vec![4, 5, 6, 7])
            .expect("mi250 layout is statically valid")
    }

    /// Number of GPU slots covered by the layout.
    pub fn num_slots(&self) -> usize {
        self.preheat.len()
    }

    /// Inlet temperature at `slot` given instantaneous per-slot power draw.
    ///
    /// # Panics
    ///
    /// Panics if `powers_w.len()` differs from [`Self::num_slots`] or `slot`
    /// is out of range.
    pub fn inlet_temp_c(&self, slot: usize, powers_w: &[f64]) -> f64 {
        assert_eq!(
            powers_w.len(),
            self.num_slots(),
            "power vector length mismatch"
        );
        let preheat: f64 = self.preheat[slot]
            .iter()
            .zip(powers_w)
            .map(|(w, p)| w * p)
            .sum();
        self.ambient_c + preheat
    }

    /// Thermal-resistance multiplier for a slot (>= 1.0 means worse cooling).
    pub fn cooling_factor(&self, slot: usize) -> f64 {
        self.cooling_factor[slot]
    }

    /// Whether the slot is in the rear (exhaust) region.
    pub fn is_rear(&self, slot: usize) -> bool {
        self.rear_slots.contains(&slot)
    }

    /// Slots in the rear (exhaust) region.
    pub fn rear_slots(&self) -> &[usize] {
        &self.rear_slots
    }

    /// Slots in the front (intake) region.
    pub fn front_slots(&self) -> Vec<usize> {
        (0..self.num_slots())
            .filter(|s| !self.is_rear(*s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_layout_has_no_preheat() {
        let a = AirflowLayout::uniform(8, 25.0);
        let powers = vec![700.0; 8];
        for slot in 0..8 {
            assert_eq!(a.inlet_temp_c(slot, &powers), 25.0);
        }
    }

    #[test]
    fn hgx_rear_gpus_inhale_hotter_air() {
        let a = AirflowLayout::hgx();
        let powers = vec![650.0; 8];
        let front = a.inlet_temp_c(0, &powers);
        let rear = a.inlet_temp_c(1, &powers);
        assert!(rear > front + 10.0, "front={front} rear={rear}");
    }

    #[test]
    fn hgx_front_gpus_see_ambient() {
        let a = AirflowLayout::hgx();
        let powers = vec![650.0; 8];
        assert_eq!(a.inlet_temp_c(0, &powers), a.ambient_c);
        assert_eq!(a.inlet_temp_c(6, &powers), a.ambient_c);
    }

    #[test]
    fn hgx_rear_slots_marked() {
        let a = AirflowLayout::hgx();
        assert_eq!(a.rear_slots(), &[1, 3, 5, 7]);
        assert_eq!(a.front_slots(), vec![0, 2, 4, 6]);
        assert!(a.is_rear(5));
        assert!(!a.is_rear(2));
    }

    #[test]
    fn mi250_intra_package_skew_is_5_to_10_c() {
        // Paper: "5-10°C temperature skew observed across paired logical
        // GPUs" (Fig 18a). At full per-GCD power the inlet difference alone
        // should land in that band.
        let a = AirflowLayout::mi250();
        let powers = vec![250.0; 8];
        for pkg in 0..4 {
            let up = a.inlet_temp_c(2 * pkg, &powers);
            let down = a.inlet_temp_c(2 * pkg + 1, &powers);
            let skew = down - up;
            assert!((4.0..=12.0).contains(&skew), "pkg {pkg} skew {skew}");
        }
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(AirflowLayout::new(25.0, vec![vec![0.0; 3]; 2], vec![1.0; 2], vec![]).is_err());
        assert!(AirflowLayout::new(25.0, vec![vec![0.0; 2]; 2], vec![1.0; 3], vec![]).is_err());
        assert!(AirflowLayout::new(25.0, vec![vec![-0.1; 2]; 2], vec![1.0; 2], vec![]).is_err());
        assert!(AirflowLayout::new(25.0, vec![vec![0.0; 2]; 2], vec![0.0; 2], vec![]).is_err());
        assert!(AirflowLayout::new(25.0, vec![vec![0.0; 2]; 2], vec![1.0; 2], vec![5]).is_err());
    }

    #[test]
    fn inlet_scales_with_upstream_power() {
        let a = AirflowLayout::hgx();
        let idle = vec![90.0; 8];
        let busy = vec![650.0; 8];
        assert!(a.inlet_temp_c(1, &busy) > a.inlet_temp_c(1, &idle));
    }

    #[test]
    fn rear_cooling_is_worse() {
        let a = AirflowLayout::hgx();
        assert!(a.cooling_factor(1) > a.cooling_factor(0));
    }
}
