/root/repo/target/debug/deps/executor_scaling-e67f8d7d3edcfbe5.d: crates/bench/benches/executor_scaling.rs

/root/repo/target/debug/deps/executor_scaling-e67f8d7d3edcfbe5: crates/bench/benches/executor_scaling.rs

crates/bench/benches/executor_scaling.rs:
