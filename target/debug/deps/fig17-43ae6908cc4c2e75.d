/root/repo/target/debug/deps/fig17-43ae6908cc4c2e75.d: crates/bench/benches/fig17.rs

/root/repo/target/debug/deps/fig17-43ae6908cc4c2e75: crates/bench/benches/fig17.rs

crates/bench/benches/fig17.rs:
