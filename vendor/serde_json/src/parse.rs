//! Recursive-descent JSON parser producing the shared [`Value`] tree.

use serde::{Error, Map, Number, Value};

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Surrogate pair handling.
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                            // hex4 advanced past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy the run up to the next quote or escape. The
                    // input is a &str, so every slice on these boundaries is
                    // valid UTF-8 (multi-byte scalars are all >= 0x80 and
                    // never contain `"` or `\` bytes).
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}
