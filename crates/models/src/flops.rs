//! Analytic FLOP counts for forward/backward passes.
//!
//! Conventions: one multiply-accumulate = 2 FLOPs; a linear layer of `P`
//! parameters costs `2·P` FLOPs per token forward; backward costs twice the
//! forward (gradients w.r.t. inputs and weights); attention-score FLOPs use
//! the causal-mask halving.

use crate::arch::TransformerArch;

/// Per-token FLOP costs of one transformer layer, split by kernel class so
/// the lowering crate can emit distinct GEMM/attention kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerFlops {
    /// Attention projection GEMMs (QKV + output).
    pub attn_gemm: f64,
    /// Attention score/context matmuls (`QKᵀ` and `AV`), sequence-dependent.
    pub attn_score: f64,
    /// Dense MLP GEMMs (0 for MoE layers).
    pub mlp_gemm: f64,
    /// Expert GEMMs actually executed per token (top-k experts; 0 if dense).
    pub moe_expert_gemm: f64,
    /// Router projection (MoE only).
    pub moe_router: f64,
}

impl LayerFlops {
    /// Total forward FLOPs per token for the layer.
    pub fn total(&self) -> f64 {
        self.attn_gemm + self.attn_score + self.mlp_gemm + self.moe_expert_gemm + self.moe_router
    }
}

/// Per-token forward FLOPs of one layer of `arch` at sequence length `seq`.
///
/// ```
/// use charllm_models::{presets, flops};
/// let arch = presets::gpt3_175b();
/// let f = flops::layer_fwd_flops_per_token(&arch, 2048);
/// // 2*params dominates: per layer ~2 * 1.8e9 params.
/// assert!(f.total() > 3.0e9 && f.total() < 4.5e9);
/// ```
pub fn layer_fwd_flops_per_token(arch: &TransformerArch, seq: usize) -> LayerFlops {
    let attn_gemm = 2.0 * arch.attn_params_per_layer() as f64;
    // QK^T and AV: each 2·s·h MACs = 4·s·h FLOPs per token; causal mask halves.
    let attn_score = 0.5 * 2.0 * (2.0 * seq as f64 * arch.hidden as f64);
    match &arch.moe {
        None => LayerFlops {
            attn_gemm,
            attn_score,
            mlp_gemm: 2.0 * arch.mlp_params_per_block() as f64,
            moe_expert_gemm: 0.0,
            moe_router: 0.0,
        },
        Some(moe) => LayerFlops {
            attn_gemm,
            attn_score,
            mlp_gemm: 0.0,
            moe_expert_gemm: moe.top_k as f64 * 2.0 * arch.mlp_params_per_block() as f64,
            moe_router: 2.0 * (arch.hidden * moe.num_experts) as f64,
        },
    }
}

/// Forward FLOPs per token for the embedding/LM-head (final projection).
pub fn logits_fwd_flops_per_token(arch: &TransformerArch) -> f64 {
    2.0 * (arch.hidden * arch.vocab) as f64
}

/// Full-model forward FLOPs per token.
pub fn model_fwd_flops_per_token(arch: &TransformerArch, seq: usize) -> f64 {
    arch.num_layers as f64 * layer_fwd_flops_per_token(arch, seq).total()
        + logits_fwd_flops_per_token(arch)
}

/// Backward-to-forward FLOP ratio (weight + input gradients).
pub const BWD_FWD_RATIO: f64 = 2.0;

/// Total train-step FLOPs per token (fwd + bwd), excluding recomputation.
///
/// For dense models this approaches the familiar `6·N` FLOPs/token rule:
///
/// ```
/// use charllm_models::{presets, flops};
/// let arch = presets::gpt3_175b();
/// let per_token = flops::train_flops_per_token(&arch, 2048);
/// let six_n = 6.0 * arch.total_params() as f64;
/// assert!((per_token / six_n - 1.0).abs() < 0.10);
/// ```
pub fn train_flops_per_token(arch: &TransformerArch, seq: usize) -> f64 {
    model_fwd_flops_per_token(arch, seq) * (1.0 + BWD_FWD_RATIO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn moe_layers_have_no_dense_mlp() {
        let f = layer_fwd_flops_per_token(&presets::mixtral_8x7b(), 4096);
        assert_eq!(f.mlp_gemm, 0.0);
        assert!(f.moe_expert_gemm > 0.0);
        assert!(f.moe_router > 0.0);
    }

    #[test]
    fn dense_layers_have_no_moe_kernels() {
        let f = layer_fwd_flops_per_token(&presets::llama3_70b(), 4096);
        assert_eq!(f.moe_expert_gemm, 0.0);
        assert_eq!(f.moe_router, 0.0);
        assert!(f.mlp_gemm > 0.0);
    }

    #[test]
    fn attention_score_grows_with_seq() {
        let arch = presets::gpt3_175b();
        let short = layer_fwd_flops_per_token(&arch, 1024).attn_score;
        let long = layer_fwd_flops_per_token(&arch, 4096).attn_score;
        assert!((long / short - 4.0).abs() < 1e-9);
    }

    #[test]
    fn moe_train_flops_track_active_params() {
        // Mixtral executes only top-k experts: train FLOPs/token should be
        // ~6x *active* params, far below 6x total params.
        let arch = presets::mixtral_8x7b();
        let per_token = train_flops_per_token(&arch, 4096);
        let six_active = 6.0 * arch.active_params() as f64;
        let six_total = 6.0 * arch.total_params() as f64;
        assert!((per_token / six_active - 1.0).abs() < 0.15, "vs active");
        assert!(per_token < 0.5 * six_total, "vs total");
    }

    #[test]
    fn mixtral_22b_heavier_than_7b() {
        let f22 = train_flops_per_token(&presets::mixtral_8x22b(), 4096);
        let f7 = train_flops_per_token(&presets::mixtral_8x7b(), 4096);
        assert!(f22 > 2.0 * f7);
    }

    #[test]
    fn layer_total_is_sum_of_parts() {
        let f = layer_fwd_flops_per_token(&presets::mixtral_8x22b(), 4096);
        let sum = f.attn_gemm + f.attn_score + f.mlp_gemm + f.moe_expert_gemm + f.moe_router;
        assert_eq!(f.total(), sum);
    }
}
