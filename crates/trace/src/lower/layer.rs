//! Per-layer kernel emission (forward and backward).

use charllm_models::flops::layer_fwd_flops_per_token;
use charllm_net::{ChunkingPolicy, CollectiveKind};

use crate::builder::{CollKey, TraceBuilder};
use crate::task::ComputeKind;

use super::Ctx;

/// Which pass a layer emission belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pass {
    Forward,
    Backward,
}

impl Pass {
    /// FLOP multiplier vs. forward. A frozen-base LoRA backward skips the
    /// weight-gradient GEMMs (`dW = dY·Xᵀ`) of every frozen matrix, leaving
    /// input gradients plus the tiny adapter updates: ~1.15x forward
    /// instead of 2x.
    fn mult(self, lora: bool) -> f64 {
        match (self, lora) {
            (Pass::Forward, _) => 1.0,
            (Pass::Backward, false) => 2.0,
            (Pass::Backward, true) => 1.15,
        }
    }

    fn site_ar(self, which: u8) -> &'static str {
        match (self, which) {
            (Pass::Forward, 1) => "tp-ar-f1",
            (Pass::Forward, _) => "tp-ar-f2",
            (Pass::Backward, 1) => "tp-ar-b1",
            (Pass::Backward, _) => "tp-ar-b2",
        }
    }

    fn site_a2a(self, which: u8) -> &'static str {
        match (self, which) {
            (Pass::Forward, 1) => "a2a-d-f",
            (Pass::Forward, _) => "a2a-c-f",
            (Pass::Backward, 1) => "a2a-d-b",
            (Pass::Backward, _) => "a2a-c-b",
        }
    }
}

/// Total per-rank forward FLOPs of one layer (used for recompute lumps).
pub(crate) fn layer_fwd_flops(ctx: &Ctx<'_>, _global_layer: usize) -> f64 {
    let f = layer_fwd_flops_per_token(&ctx.job.arch, ctx.job.seq_len);
    f.total() * ctx.tokens_mb / ctx.spec.tp as f64
}

/// Emit the kernels + collectives of one layer for one microbatch.
pub(crate) fn emit_layer(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: usize,
    global_layer: usize,
    pass: Pass,
) {
    let arch = &ctx.job.arch;
    let spec = ctx.spec;
    let coords = ctx.grid.coords(rank);
    let tokens = ctx.tokens_mb;
    let tp = spec.tp as f64;
    let mult = pass.mult(ctx.job.optim.lora.is_some());
    let f = layer_fwd_flops_per_token(arch, ctx.job.seq_len);
    let mbu = mb as u32;
    let gl = global_layer as u32;

    // Attention block.
    b.compute(rank, ComputeKind::Gemm, f.attn_gemm * tokens / tp * mult);
    b.compute(
        rank,
        ComputeKind::Attention,
        f.attn_score * tokens / tp * mult,
    );

    // First TP AllReduce (after attention output projection).
    let ar1 = tp_allreduce(b, ctx, rank, mbu, gl, pass.site_ar(1));
    if let Some(id) = ar1 {
        if ctx.job.optim.cc_overlap {
            b.start(rank, id); // wait deferred past the MLP/MoE block
        } else {
            b.blocking(rank, id);
        }
    }

    // MLP / MoE block.
    match &arch.moe {
        None => {
            b.compute(rank, ComputeKind::Gemm, f.mlp_gemm * tokens / tp * mult);
        }
        Some(_) => {
            b.compute(rank, ComputeKind::Router, f.moe_router * tokens / tp * mult);
            let a2a_bytes =
                (tokens * arch.hidden as f64 * 2.0 * arch.moe.expect("moe").top_k as f64 / tp)
                    as u64;
            blocking_a2a(b, ctx, rank, mbu, gl, pass.site_a2a(1), a2a_bytes);
            b.compute(
                rank,
                ComputeKind::MoeGemm,
                f.moe_expert_gemm * tokens / tp * mult,
            );
            blocking_a2a(b, ctx, rank, mbu, gl, pass.site_a2a(2), a2a_bytes);
        }
    }

    // Deferred wait for the overlapped first AllReduce.
    if let Some(id) = ar1 {
        if ctx.job.optim.cc_overlap {
            b.wait(rank, id);
        }
    }

    // Second TP AllReduce (after the MLP block).
    if let Some(id) = tp_allreduce(b, ctx, rank, mbu, gl, pass.site_ar(2)) {
        b.blocking(rank, id);
    }

    let _ = coords;
}

/// FSDP parameter AllGather for one layer (issued by the caller with
/// prefetch: started one layer ahead, waited just before use).
pub(crate) fn fsdp_allgather(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: usize,
    global_layer: usize,
    pass: Pass,
) -> Option<crate::task::CollectiveId> {
    if !ctx.spec.fsdp || ctx.spec.dp <= 1 {
        return None;
    }
    let group = ctx.grid.dp_group(rank);
    let bytes = (ctx.job.arch.params_per_layer() / ctx.spec.tp as u64) * ctx.job.precision.bytes();
    let site = if pass == Pass::Forward {
        "fsdp-ag-f"
    } else {
        "fsdp-ag-b"
    };
    Some(b.collective(
        CollKey {
            site,
            mb: mb as u32,
            layer: global_layer as u32,
            aux: 0,
            group_lead: group[0] as u32,
        },
        CollectiveKind::AllGather,
        bytes,
        group,
        ChunkingPolicy::nccl_default(),
        false,
    ))
}

/// FSDP gradient ReduceScatter for one layer (started after the layer's
/// backward, waited at the end of the backward op so it overlaps).
pub(crate) fn fsdp_reducescatter(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: usize,
    global_layer: usize,
) -> Option<crate::task::CollectiveId> {
    if !ctx.spec.fsdp || ctx.spec.dp <= 1 {
        return None;
    }
    let group = ctx.grid.dp_group(rank);
    let bytes = (ctx.job.arch.params_per_layer() / ctx.spec.tp as u64) * ctx.job.precision.bytes();
    Some(b.collective(
        CollKey {
            site: "fsdp-rs",
            mb: mb as u32,
            layer: global_layer as u32,
            aux: 0,
            group_lead: group[0] as u32,
        },
        CollectiveKind::ReduceScatter,
        bytes,
        group,
        ChunkingPolicy::nccl_default(),
        false,
    ))
}

fn tp_allreduce(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: u32,
    layer: u32,
    site: &'static str,
) -> Option<crate::task::CollectiveId> {
    if ctx.spec.tp <= 1 {
        return None;
    }
    let group = ctx.grid.tp_group(rank);
    Some(b.collective(
        CollKey {
            site,
            mb,
            layer,
            aux: 0,
            group_lead: group[0] as u32,
        },
        CollectiveKind::AllReduce,
        ctx.tp_ar_bytes(),
        group,
        ChunkingPolicy::nccl_default(),
        false,
    ))
}

fn blocking_a2a(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: u32,
    layer: u32,
    site: &'static str,
    bytes: u64,
) {
    if ctx.spec.ep <= 1 {
        return;
    }
    let group = ctx.grid.ep_group(rank);
    let id = b.collective(
        CollKey {
            site,
            mb,
            layer,
            aux: 0,
            group_lead: group[0] as u32,
        },
        CollectiveKind::AllToAll,
        bytes,
        group,
        ChunkingPolicy::Unchunked,
        false,
    );
    b.blocking(rank, id);
}
