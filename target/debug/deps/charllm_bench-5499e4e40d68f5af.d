/root/repo/target/debug/deps/charllm_bench-5499e4e40d68f5af.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_bench-5499e4e40d68f5af.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
