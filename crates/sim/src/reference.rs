//! The scan-based reference engine: the executable specification of the
//! simulator's semantics.
//!
//! [`ReferenceSimulator`] is the seed engine preserved verbatim (minus two
//! bug fixes described below). Every event it recomputes global state from
//! scratch: link loads are rebuilt from all flows × routes, every rank is
//! polled for progress, and every collective launch re-lowers its flows and
//! re-resolves their routes. That makes it slow — and easy to audit.
//!
//! The production [`crate::Simulator`] is an event-driven rework of this
//! loop (plan caching, incremental link loads, waiter wake-lists) that must
//! produce **byte-identical** [`SimResult`]s; `tests/engine_golden.rs`
//! compares serialized output of both engines on end-to-end workloads, and
//! the `sim_engine_hotpath` bench measures the speedup against this
//! baseline.
//!
//! Differences from the original seed engine (applied to both engines so
//! the equality comparison stays meaningful):
//! - the dead `busy_time_denominator` accumulator was removed;
//! - flows retire at `work_remaining <= 1.0`, and the sub-unit residual is
//!   now credited to the final payload charge so measured traffic equals
//!   the sum of lowered flow payloads instead of silently dropping up to
//!   one byte-equivalent per flow;
//! - accounting (kernel time, activity, occupancy, traffic) accrues in
//!   lazy segments closed at mode transitions instead of per event (see
//!   the `accrual` module). Work *progress* is still stepped per event, so
//!   the event stream is unchanged; both engines flush at identically
//!   ordered boundaries, so their results stay byte-identical.

use std::collections::HashMap;

use charllm_hw::{Cluster, GpuId, LinkId};
use charllm_net::lower_collective;
use charllm_parallel::Placement;
use charllm_telemetry::{GpuSample, TelemetryStore};
use charllm_thermal::{GovernorConfig, GpuThermal, GpuVariability, ThermalSpec};
use charllm_trace::{ExecutionTrace, Step};

use crate::accrual;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::observer::{NoopObserver, SimObserver, TaskKind};
use crate::result::{KernelBreakdown, OccupancyStats, SimResult, TrafficMatrix};

/// What a rank is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RankMode {
    /// Ready to process its next step.
    Ready,
    /// Running a compute kernel.
    Computing {
        kind: charllm_trace::ComputeKind,
        remaining_flops: f64,
    },
    /// Blocked on a collective.
    Waiting { coll: u32 },
    /// All iterations done.
    Finished,
}

#[derive(Debug)]
struct RankState {
    gpu: GpuId,
    step_idx: usize,
    iteration: usize,
    mode: RankMode,
}

#[derive(Debug, Default)]
struct CollState {
    arrived: u32,
    launched: bool,
    flows_remaining: u32,
    complete: bool,
}

#[derive(Debug)]
struct FlowState {
    work_remaining: f64,
    payload_ratio: f64,
    /// Rate computed by the last `next_dt` (banked on bit-change).
    rate: f64,
    /// Segment start for lazy traffic accrual.
    acc_since: f64,
    /// Movement banked at superseded rates since the last traffic flush.
    moved_acc: f64,
    route: Vec<LinkId>,
    src: GpuId,
    dst: GpuId,
    measured: bool,
    coll_key: (u32, u32),
    /// Dense observer id: unique among open flows, recycled after
    /// retirement (the [`SimObserver::flow_launch`] contract).
    obs_id: u32,
}

/// The scan-everything-per-event engine (see the module docs).
///
/// Same construction contract and result type as [`crate::Simulator`]; use
/// it when you need a semantics baseline to compare the event-driven engine
/// against, never for production sweeps. Generic over the same
/// [`SimObserver`] hooks as the production engine, so span streams can be
/// compared between the two.
pub struct ReferenceSimulator<'a, O: SimObserver = NoopObserver> {
    obs: O,
    cluster: &'a Cluster,
    trace: &'a ExecutionTrace,
    cfg: SimConfig,

    ranks: Vec<RankState>,
    colls: HashMap<(u32, u32), CollState>,
    flows: Vec<FlowState>,
    /// Retired observer ids available for reuse (LIFO).
    free_flow_ids: Vec<u32>,
    /// Next never-used observer id.
    next_flow_id: u32,
    /// Number of active flows touching each GPU (as src or dst).
    gpu_flow_count: Vec<u32>,
    /// Ranks placed on each GPU, ascending (flush order at flow-presence
    /// transitions).
    ranks_of_gpu: Vec<Vec<u32>>,
    /// Segment start for each rank's lazy accounting accrual.
    rank_acc_since: Vec<f64>,
    /// Scratch: flow load per link.
    link_load: Vec<u32>,

    thermals: Vec<GpuThermal>,
    freq_ratio: Vec<f64>,
    last_power_w: Vec<f64>,

    /// Time-weighted activity accumulation since the last control boundary.
    activity_acc: Vec<f64>,
    util_acc: Vec<f64>,
    pcie_window_bytes: Vec<f64>,

    kernel_time: Vec<KernelBreakdown>,
    traffic: TrafficMatrix,
    occ_acc: Vec<(f64, f64, f64)>,
    telemetry: TelemetryStore,

    t: f64,
    next_control: f64,
    next_sample: f64,
    iteration_complete_at: Vec<f64>,
    measure_start: Option<f64>,
    energy_measured_j: f64,
}

impl<'a> ReferenceSimulator<'a> {
    /// Build an unobserved reference simulator after validating trace/
    /// placement/cluster agreement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] or [`SimError::PlacementMismatch`].
    pub fn new(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        Self::with_observer(cluster, placement, trace, cfg, NoopObserver)
    }
}

impl<'a, O: SimObserver> ReferenceSimulator<'a, O> {
    /// Build a reference simulator with an attached observer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] or [`SimError::PlacementMismatch`].
    pub fn with_observer(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
        obs: O,
    ) -> Result<Self, SimError> {
        let problems = trace.validate();
        if !problems.is_empty() {
            return Err(SimError::InvalidTrace(problems));
        }
        if placement.world() < trace.world() {
            return Err(SimError::PlacementMismatch {
                trace_world: trace.world(),
                placement_world: placement.world(),
            });
        }
        let num_gpus = cluster.num_gpus();
        let ranks: Vec<RankState> = (0..trace.world())
            .map(|r| RankState {
                gpu: placement.gpu(r),
                step_idx: 0,
                iteration: 0,
                mode: RankMode::Ready,
            })
            .collect();

        let airflow = &cluster.node_layout().airflow;
        let mut thermals = Vec::with_capacity(num_gpus);
        for gpu in cluster.gpus() {
            let spec = cluster.gpu().clone();
            let variability = if cfg.uniform_variability {
                GpuVariability::nominal()
            } else {
                GpuVariability::for_gpu(gpu, cfg.seed)
            };
            let slot = cluster.slot_of(gpu);
            let mut governor_cfg = GovernorConfig::for_spec(&spec);
            if let Some(cap_w) = cfg.gpu_power_cap_w {
                governor_cfg.power_cap_w = cap_w;
            }
            if let Some((node, cap_w)) = cfg.node_power_cap {
                if cluster.node_of(gpu) == charllm_hw::NodeId(node) {
                    governor_cfg.power_cap_w = cap_w;
                }
            }
            let mut thermal = GpuThermal::new(
                spec.clone(),
                ThermalSpec::for_model(spec.model),
                governor_cfg,
                variability,
                airflow.ambient_c,
            );
            if cfg.prewarm && cfg.thermal_feedback {
                // Settle near a loaded operating point, including the
                // inlet preheat a busy node would produce.
                let node_power = spec.tdp_w * 0.85;
                let powers = vec![node_power; airflow.num_slots()];
                let inlet = airflow.inlet_temp_c(slot, &powers);
                for _ in 0..400 {
                    thermal.step(0.75, inlet, 1.0);
                }
            }
            thermals.push(thermal);
        }
        let freq_ratio = thermals.iter().map(GpuThermal::freq_ratio).collect();
        let last_power_w = thermals.iter().map(GpuThermal::power_w).collect();
        let mut ranks_of_gpu = vec![Vec::new(); num_gpus];
        for (r, state) in ranks.iter().enumerate() {
            ranks_of_gpu[state.gpu.index()].push(r as u32);
        }

        Ok(ReferenceSimulator {
            obs,
            cluster,
            trace,
            ranks,
            colls: HashMap::new(),
            flows: Vec::new(),
            free_flow_ids: Vec::new(),
            next_flow_id: 0,
            gpu_flow_count: vec![0; num_gpus],
            ranks_of_gpu,
            rank_acc_since: vec![0.0; trace.world()],
            link_load: vec![0; cluster.num_links()],
            thermals,
            freq_ratio,
            last_power_w,
            activity_acc: vec![0.0; num_gpus],
            util_acc: vec![0.0; num_gpus],
            pcie_window_bytes: vec![0.0; num_gpus],
            kernel_time: vec![KernelBreakdown::default(); trace.world()],
            traffic: TrafficMatrix::new(num_gpus),
            occ_acc: vec![(0.0, 0.0, 0.0); num_gpus],
            telemetry: TelemetryStore::new(num_gpus),
            t: 0.0,
            next_control: cfg.control_period_s,
            next_sample: cfg.sample_period_s,
            iteration_complete_at: vec![0.0; cfg.iterations],
            measure_start: if cfg.warmup_iterations == 0 {
                Some(0.0)
            } else {
                None
            },
            energy_measured_j: 0.0,
            cfg,
        })
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no progress is possible and
    /// [`SimError::Timeout`] when the simulated-time cap is hit.
    pub fn run(self) -> Result<SimResult, SimError> {
        self.run_observed().map(|(result, _)| result)
    }

    /// Run to completion, returning the observer for post-run analysis.
    ///
    /// # Errors
    ///
    /// Same as [`ReferenceSimulator::run`].
    pub fn run_observed(mut self) -> Result<(SimResult, O), SimError> {
        loop {
            let progressed = self.advance_ready_ranks();

            if self.ranks.iter().all(|r| r.mode == RankMode::Finished) {
                break;
            }

            let dt = match self.next_dt() {
                Some(dt) => dt,
                None => {
                    if progressed {
                        continue;
                    }
                    return Err(SimError::Deadlock {
                        at_s: self.t,
                        detail: self.blocked_summary(),
                    });
                }
            };

            self.advance(dt);

            if self.t >= self.next_control - 1e-12 {
                self.control_update();
                self.next_control += self.cfg.control_period_s;
            }
            if self.t > self.cfg.max_sim_time_s {
                return Err(SimError::Timeout {
                    cap_s: self.cfg.max_sim_time_s,
                });
            }
        }
        Ok(self.finish())
    }

    /// Process instantaneous steps for every rank that can move.
    fn advance_ready_ranks(&mut self) -> bool {
        let mut progressed = false;
        for rank in 0..self.ranks.len() {
            progressed |= self.advance_rank(rank);
        }
        progressed
    }

    fn advance_rank(&mut self, rank: usize) -> bool {
        let mut progressed = false;
        loop {
            match self.ranks[rank].mode {
                RankMode::Computing { .. } | RankMode::Finished => return progressed,
                RankMode::Waiting { coll } => {
                    let key = (self.ranks[rank].iteration as u32, coll);
                    let done = self.colls.get(&key).is_some_and(|c| c.complete);
                    if !done {
                        return progressed;
                    }
                    // Close the wait segment before the mode flips. The
                    // flip happens at the same sim time as the collective
                    // completion (`advance` bumps `t` to the completion
                    // time before this scan runs).
                    self.accrue_rank(rank, self.t);
                    self.ranks[rank].mode = RankMode::Ready;
                    progressed = true;
                }
                RankMode::Ready => {
                    let steps = self.trace.steps(rank);
                    if self.ranks[rank].step_idx >= steps.len() {
                        // Iteration boundary.
                        let iter = self.ranks[rank].iteration;
                        self.iteration_complete_at[iter] =
                            self.iteration_complete_at[iter].max(self.t);
                        self.ranks[rank].iteration += 1;
                        self.ranks[rank].step_idx = 0;
                        progressed = true;
                        if self.ranks[rank].iteration >= self.cfg.iterations {
                            self.ranks[rank].mode = RankMode::Finished;
                            continue;
                        }
                        if self.measure_start.is_none()
                            && self
                                .ranks
                                .iter()
                                .all(|r| r.iteration >= self.cfg.warmup_iterations)
                        {
                            self.measure_start = Some(self.t);
                        }
                        continue;
                    }
                    let step = steps[self.ranks[rank].step_idx];
                    self.ranks[rank].step_idx += 1;
                    progressed = true;
                    match step {
                        Step::Compute { kind, flops } => {
                            self.obs.task_start(
                                rank,
                                self.ranks[rank].gpu.index() as u32,
                                self.ranks[rank].iteration as u32,
                                TaskKind::Compute(kind),
                                self.t,
                            );
                            self.ranks[rank].mode = RankMode::Computing {
                                kind,
                                remaining_flops: flops,
                            };
                            return progressed;
                        }
                        Step::CollStart { coll } => {
                            self.arrive(rank, coll.0);
                        }
                        Step::CollWait { coll } => {
                            let key = (self.ranks[rank].iteration as u32, coll.0);
                            let done = self.colls.get(&key).is_some_and(|c| c.complete);
                            if !done {
                                self.obs.task_start(
                                    rank,
                                    self.ranks[rank].gpu.index() as u32,
                                    key.0,
                                    TaskKind::CollWait {
                                        coll,
                                        class: self.trace.collective(coll).class(),
                                    },
                                    self.t,
                                );
                                self.ranks[rank].mode = RankMode::Waiting { coll: coll.0 };
                                return progressed;
                            }
                        }
                    }
                }
            }
        }
    }

    /// A rank arrives at a collective; launch its flows when ready.
    fn arrive(&mut self, rank: usize, coll: u32) {
        let iter = self.ranks[rank].iteration as u32;
        let key = (iter, coll);
        let inst = self
            .trace
            .collective(charllm_trace::task::CollectiveId(coll));
        let state = self.colls.entry(key).or_default();
        state.arrived += 1;
        let ready = if inst.eager_p2p {
            true
        } else {
            state.arrived as usize == inst.group.len()
        };
        if !ready || state.launched {
            return;
        }
        state.launched = true;
        let gpus: Vec<GpuId> = inst.group.iter().map(|&r| self.ranks[r].gpu).collect();
        let plan = lower_collective(
            inst.kind,
            inst.bytes_per_rank,
            &gpus,
            self.cluster,
            inst.chunking,
        )
        .expect("placement-validated gpus");
        let measured = self.ranks[rank].iteration >= self.cfg.warmup_iterations;
        let mut active = 0u32;
        for flow in plan.flows {
            let route = self.cluster.route(flow.src, flow.dst).expect("valid route");
            if route.is_empty() {
                continue;
            }
            let work = flow.work_bytes(self.cluster, &route);
            if work <= 0.0 {
                continue;
            }
            active += 1;
            let obs_id = self.free_flow_ids.pop().unwrap_or_else(|| {
                let id = self.next_flow_id;
                self.next_flow_id += 1;
                id
            });
            self.obs.flow_launch(
                obs_id,
                coll,
                iter,
                flow.src.index() as u32,
                flow.dst.index() as u32,
                self.t,
            );
            // A GPU's flow count crossing 0 → 1 changes its ranks'
            // accounting coefficients: close their segments *before* the
            // increment so the closed span carries the flows-absent rates.
            if self.gpu_flow_count[flow.src.index()] == 0 {
                self.flush_gpu_ranks(flow.src.index(), self.t);
            }
            self.gpu_flow_count[flow.src.index()] += 1;
            if self.gpu_flow_count[flow.dst.index()] == 0 {
                self.flush_gpu_ranks(flow.dst.index(), self.t);
            }
            self.gpu_flow_count[flow.dst.index()] += 1;
            self.flows.push(FlowState {
                work_remaining: work,
                payload_ratio: flow.bytes as f64 / work,
                rate: 0.0,
                acc_since: self.t,
                moved_acc: 0.0,
                route,
                src: flow.src,
                dst: flow.dst,
                measured,
                coll_key: key,
                obs_id,
            });
        }
        let state = self.colls.get_mut(&key).expect("just inserted");
        state.flows_remaining = active;
        if active == 0 {
            self.complete_collective(key, self.t);
        }
    }

    /// Mark a collective instance complete at time `now`, closing the wait
    /// spans of every rank blocked on it (the scan resumes those ranks
    /// later, but their wait *ends* when the collective does — matching the
    /// event-driven engine's wake-time semantics exactly).
    fn complete_collective(&mut self, key: (u32, u32), now: f64) {
        self.colls.get_mut(&key).expect("live collective").complete = true;
        self.obs.collective_complete(key.1, key.0, now);
        for rank in 0..self.ranks.len() {
            if self.ranks[rank].mode == (RankMode::Waiting { coll: key.1 })
                && self.ranks[rank].iteration as u32 == key.0
            {
                self.obs.task_end(rank, now);
            }
        }
    }

    /// Current per-flow rate in bytes/s (fair share of the slowest link).
    fn flow_rate(&self, flow: &FlowState) -> f64 {
        flow.route
            .iter()
            .map(|id| {
                let load = self.link_load[id.index()].max(1) as f64;
                self.cluster.link(*id).bw_gbps * 1e9 / load
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn compute_rate(&self, rank: usize, kind: charllm_trace::ComputeKind) -> f64 {
        let gpu = self.ranks[rank].gpu.index();
        let mut rate = self.cluster.gpu().peak_fp16_flops * kind.mfu() * self.freq_ratio[gpu];
        if self.gpu_flow_count[gpu] > 0 {
            rate /= self.cfg.overlap_slowdown;
        }
        rate.max(1.0)
    }

    /// Choose the next time step: the earliest completion, capped by the
    /// control period. `None` when nothing is in flight.
    fn next_dt(&mut self) -> Option<f64> {
        // Refresh link loads.
        for l in &mut self.link_load {
            *l = 0;
        }
        for flow in &self.flows {
            for id in &flow.route {
                self.link_load[id.index()] += 1;
            }
        }
        let mut dt = self.next_control - self.t;
        let mut any = false;
        for (rank, state) in self.ranks.iter().enumerate() {
            if let RankMode::Computing {
                kind,
                remaining_flops,
            } = state.mode
            {
                any = true;
                let rate = self.compute_rate(rank, kind);
                dt = dt.min(remaining_flops / rate);
            }
        }
        for i in 0..self.flows.len() {
            any = true;
            let rate = self.flow_rate(&self.flows[i]);
            if rate.to_bits() != self.flows[i].rate.to_bits() {
                // Bank movement at the superseded rate so the retirement /
                // control-boundary flush charges stay exact.
                let flow = &mut self.flows[i];
                accrual::bank_flow_segment(
                    flow.rate,
                    self.t,
                    &mut flow.acc_since,
                    &mut flow.moved_acc,
                );
                flow.rate = rate;
            }
            dt = dt.min(self.flows[i].work_remaining / rate);
        }
        if !any {
            return None;
        }
        Some(dt.max(1e-9))
    }

    /// Advance all in-flight work by `dt` and process completions. Only
    /// *progress* is per-event; accounting accrues lazily in segments
    /// closed by [`Self::accrue_rank`] / [`Self::flush_flow`] at the same
    /// boundaries the production engine flushes at.
    fn advance(&mut self, dt: f64) {
        // Compute progress.
        for rank in 0..self.ranks.len() {
            let RankMode::Computing {
                kind,
                remaining_flops,
            } = self.ranks[rank].mode
            else {
                continue;
            };
            let rate = self.compute_rate(rank, kind);
            let left = remaining_flops - rate * dt;
            if left <= 1.0 {
                // Close the computing segment at completion time, before
                // the mode flips.
                self.accrue_rank(rank, self.t + dt);
                self.obs.task_end(rank, self.t + dt);
                self.ranks[rank].mode = RankMode::Ready;
            } else {
                self.ranks[rank].mode = RankMode::Computing {
                    kind,
                    remaining_flops: left,
                };
            }
        }

        // Flow progress, at the rates `next_dt` just cached from the same
        // link loads. Traffic is charged only when a flow retires (or at a
        // control boundary), covering its whole accrued movement.
        let mut i = 0;
        while i < self.flows.len() {
            let rate = self.flows[i].rate;
            let mut moved = (rate * dt).min(self.flows[i].work_remaining);
            let after = self.flows[i].work_remaining - moved;
            let done = after <= 1.0;
            if done {
                // Credit the sub-unit residual so every lowered payload
                // byte lands in the traffic accounting.
                moved += after;
            }
            self.flows[i].work_remaining = if done { 0.0 } else { after };
            if done {
                // One retirement-time charge: movement banked at
                // superseded rates, the open segment at the current rate,
                // and this final event's movement (residual included).
                self.flush_flow(i, self.t, moved);
                let obs_id = self.flows[i].obs_id;
                let src = self.flows[i].src;
                let dst = self.flows[i].dst;
                let coll_key = self.flows[i].coll_key;
                self.obs.flow_retire(obs_id, self.t + dt);
                self.free_flow_ids.push(obs_id);
                // Close rank segments on a GPU about to lose its last flow
                // *before* the decrement, so the closing segment still
                // carries the flows-present coefficients.
                if self.gpu_flow_count[src.index()] == 1 {
                    self.flush_gpu_ranks(src.index(), self.t + dt);
                }
                self.gpu_flow_count[src.index()] -= 1;
                if self.gpu_flow_count[dst.index()] == 1 {
                    self.flush_gpu_ranks(dst.index(), self.t + dt);
                }
                self.gpu_flow_count[dst.index()] -= 1;
                let state = self.colls.get_mut(&coll_key).expect("flow has state");
                state.flows_remaining -= 1;
                if state.flows_remaining == 0 {
                    self.complete_collective(coll_key, self.t + dt);
                }
                self.flows.swap_remove(i);
            } else {
                i += 1;
            }
        }

        self.t += dt;
    }

    /// Close a rank's open accounting segment at `t_end` with the
    /// coefficients of its *current* mode (flushes run before transitions,
    /// so the mode describes the whole segment).
    fn accrue_rank(&mut self, rank: usize, t_end: f64) {
        let t0 = self.rank_acc_since[rank];
        if t_end <= t0 {
            return;
        }
        self.rank_acc_since[rank] = t_end;
        let len = t_end - t0;
        let gpu = self.ranks[rank].gpu.index();
        let flows_present = self.gpu_flow_count[gpu] > 0;
        let measured = self.ranks[rank].iteration >= self.cfg.warmup_iterations;
        match self.ranks[rank].mode {
            RankMode::Computing { kind, .. } => accrual::accrue_computing(
                len,
                kind,
                flows_present,
                measured,
                &mut self.kernel_time[rank],
                &mut self.activity_acc[gpu],
                &mut self.util_acc[gpu],
                &mut self.occ_acc[gpu],
            ),
            RankMode::Waiting { coll } => {
                let class = self
                    .trace
                    .collective(charllm_trace::task::CollectiveId(coll))
                    .class();
                accrual::accrue_waiting(
                    len,
                    class,
                    measured,
                    &mut self.kernel_time[rank],
                    &mut self.activity_acc[gpu],
                    &mut self.util_acc[gpu],
                    &mut self.occ_acc[gpu],
                );
            }
            _ => {
                // Idle or finished: eager-send flows may still be flying;
                // count comm presence lightly.
                if flows_present {
                    accrual::accrue_idle(len, &mut self.activity_acc[gpu]);
                }
            }
        }
    }

    /// Close the accounting segments of every rank placed on `gpu` at
    /// `now`. Called exactly when the GPU's flow count crosses 0 ↔ 1.
    fn flush_gpu_ranks(&mut self, gpu: usize, now: f64) {
        for k in 0..self.ranks_of_gpu[gpu].len() {
            let rank = self.ranks_of_gpu[gpu][k] as usize;
            self.accrue_rank(rank, now);
        }
    }

    /// Drain a flow's accumulated movement and charge it to its telemetry
    /// owners. `extra` is movement already computed outside the segment
    /// accrual (the retirement event's final `moved`, residual included).
    fn flush_flow(&mut self, i: usize, now: f64, extra: f64) {
        let flow = &mut self.flows[i];
        let pending =
            accrual::take_flow_pending(flow.rate, now, &mut flow.acc_since, &mut flow.moved_acc)
                + extra;
        if pending == 0.0 {
            return;
        }
        let payload = pending * flow.payload_ratio;
        let src = flow.src;
        let dst = flow.dst;
        let measured = flow.measured;
        // Charge GPU-owned links for telemetry + traffic matrices.
        for k in 0..self.flows[i].route.len() {
            let id = self.flows[i].route[k];
            let class = self.cluster.link(id).class;
            for &gpu in &[src, dst] {
                let owns = match class {
                    charllm_hw::LinkClass::Pcie => self.cluster.pcie(gpu) == id,
                    charllm_hw::LinkClass::NvLink | charllm_hw::LinkClass::XgmiPort => {
                        self.cluster.fabric_port(gpu) == id
                    }
                    charllm_hw::LinkClass::XgmiPackage => {
                        // Package bus: charge both endpoints.
                        self.cluster.same_package(src, dst) && (gpu == src || gpu == dst)
                    }
                    charllm_hw::LinkClass::Nic | charllm_hw::LinkClass::Switch => false,
                };
                if owns {
                    if measured {
                        self.traffic.add(gpu.index(), class, payload);
                    }
                    if class == charllm_hw::LinkClass::Pcie {
                        self.pcie_window_bytes[gpu.index()] += payload;
                    }
                }
            }
        }
    }

    /// Close every open accrual segment at `now`: ranks in ascending
    /// order, then live flows in dense order — the same sequences the
    /// production engine flushes in.
    fn flush_accruals(&mut self, now: f64) {
        for rank in 0..self.ranks.len() {
            self.accrue_rank(rank, now);
        }
        for i in 0..self.flows.len() {
            self.flush_flow(i, now, 0.0);
        }
    }

    /// Thermal/governor update + telemetry sampling at a control boundary.
    fn control_update(&mut self) {
        // The thermal step and telemetry sample below read the activity /
        // util / PCIe accumulators, so every open accrual segment must be
        // closed first.
        self.flush_accruals(self.t);
        let period = self.cfg.control_period_s;
        let airflow = &self.cluster.node_layout().airflow;
        let slots = airflow.num_slots();
        let measuring = self.measure_start.is_some();

        for node in 0..self.cluster.num_nodes() {
            let node_powers: Vec<f64> = (0..slots)
                .map(|s| {
                    let gpu = self
                        .cluster
                        .gpu_at(charllm_hw::NodeId(node as u32), s)
                        .index();
                    self.last_power_w[gpu]
                })
                .collect();
            for slot in 0..slots {
                let gpu_id = self.cluster.gpu_at(charllm_hw::NodeId(node as u32), slot);
                let gpu = gpu_id.index();
                let activity = (self.activity_acc[gpu] / period).min(1.0);
                let inlet = airflow.inlet_temp_c(slot, &node_powers);
                let sample = self.thermals[gpu].step(activity, inlet, period);
                // With feedback disabled the physics still run (for power
                // and temperature telemetry) but clocks stay pinned.
                self.freq_ratio[gpu] = if self.cfg.thermal_feedback {
                    self.thermals[gpu].freq_ratio()
                } else {
                    1.0
                };
                self.last_power_w[gpu] = sample.power_w;
                self.obs
                    .sample_tick(gpu as u32, self.t, sample.power_w, period, measuring);
                if measuring {
                    self.energy_measured_j += sample.power_w * period;
                }
                self.activity_acc[gpu] = 0.0;
            }
        }

        if self.t >= self.next_sample - 1e-12 {
            for gpu in 0..self.cluster.num_gpus() {
                let window = self.cfg.sample_period_s;
                let sample = GpuSample {
                    power_w: self.last_power_w[gpu],
                    temp_c: self.thermals[gpu].temp_c(),
                    freq_mhz: self.thermals[gpu].freq_mhz(),
                    util: (self.util_acc[gpu] / window).min(1.0),
                    pcie_gbps: self.pcie_window_bytes[gpu] / window / 1e9,
                };
                self.telemetry.record(gpu, self.t, sample);
                self.util_acc[gpu] = 0.0;
                self.pcie_window_bytes[gpu] = 0.0;
            }
            self.next_sample += self.cfg.sample_period_s;
        }
    }

    fn blocked_summary(&self) -> String {
        let blocked: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s.mode {
                RankMode::Waiting { coll } => {
                    Some(format!("rank {r} waits coll {coll} (iter {})", s.iteration))
                }
                _ => None,
            })
            .take(8)
            .collect();
        blocked.join("; ")
    }

    fn finish(mut self) -> (SimResult, O) {
        // Close every open accrual segment so the final partial control
        // window's busy time and traffic land in the result.
        self.flush_accruals(self.t);
        let obs = self.obs;
        let cfg = &self.cfg;
        let mut iteration_times = Vec::with_capacity(cfg.iterations);
        let mut prev = 0.0;
        for &t in &self.iteration_complete_at {
            iteration_times.push(t - prev);
            prev = t;
        }
        let measured_window = self.iteration_complete_at.last().copied().unwrap_or(0.0)
            - self.measure_start.unwrap_or(0.0);
        let measured_iters = cfg.measured_iterations() as f64;
        let step_time = if measured_window > 0.0 {
            measured_window / measured_iters
        } else {
            iteration_times.iter().sum::<f64>() / iteration_times.len().max(1) as f64
        };
        let tokens_per_iter = self.trace.meta().tokens_per_iteration as f64;
        let tokens_per_s = if step_time > 0.0 {
            tokens_per_iter / step_time
        } else {
            0.0
        };
        let energy_per_step = self.energy_measured_j / measured_iters;
        let tokens_per_joule = if energy_per_step > 0.0 {
            tokens_per_iter / energy_per_step
        } else {
            0.0
        };

        let occupancy = self
            .occ_acc
            .iter()
            .map(|(busy, warps, tbs)| {
                let total = self.t.max(1e-9);
                OccupancyStats {
                    occupancy: busy / total,
                    warps: warps / total,
                    threadblocks: tbs / total,
                }
            })
            .collect();

        let result = SimResult {
            step_time_s: step_time,
            iteration_times_s: iteration_times,
            tokens_per_s,
            energy_per_step_j: energy_per_step,
            tokens_per_joule,
            kernel_time: self
                .kernel_time
                .iter()
                .map(|k| k.scaled(1.0 / measured_iters))
                .collect(),
            traffic: self.traffic,
            telemetry: self.telemetry,
            throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::throttle_ratio)
                .collect(),
            thermal_throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::thermal_throttle_ratio)
                .collect(),
            occupancy,
            sim_time_s: self.t,
            // The reference engine never injects faults: resilience metrics
            // take their fault-free identities (goodput == throughput).
            goodput_tokens_per_s: tokens_per_s,
            energy_wasted_j: 0.0,
            restarts: 0,
            fault_downtime_s: 0.0,
            profile: None,
        };
        (result, obs)
    }
}
