//! Integration coverage for the parallel experiment executor: a
//! multi-worker sweep must be indistinguishable from `workers(1)` —
//! identical point order, identical report bytes — and failures must be
//! observable as structured outcomes rather than stderr noise.

use charllm::prelude::*;

fn sweep() -> Sweep {
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let specs = vec![
        ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
        ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ParallelismSpec::parse("TP8", 8).unwrap(),
        ParallelismSpec::parse("TP2-PP4", 8).unwrap(),
    ];
    Sweep::new(single_hgx_node(), job, specs)
        .with_microbatches(vec![1, 2])
        .with_sim_config(SimConfig::fast())
}

#[test]
fn multi_worker_sweep_is_byte_identical_to_serial() {
    let serial = sweep().workers(1).run().expect("serial sweep");
    assert_eq!(serial.len(), 8, "all eight points feasible");
    for workers in [0, 2, 3, 8] {
        let parallel = sweep().workers(workers).run().expect("parallel sweep");
        assert_eq!(
            parallel, serial,
            "workers({workers}) reports differ from serial"
        );
        // Byte-level: the serialized reports must match too, so downstream
        // figure JSON is reproducible regardless of worker count.
        let a: Vec<String> = serial.iter().map(|r| r.to_json()).collect();
        let b: Vec<String> = parallel.iter().map(|r| r.to_json()).collect();
        assert_eq!(a, b, "workers({workers}) serialization differs from serial");
    }
}

#[test]
fn executor_reaches_search_and_stays_deterministic() {
    use charllm::search::{search_configs, SearchOptions};
    let cluster = single_hgx_node();
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let serial = SearchOptions {
        finalists: 2,
        sim: SimConfig::fast(),
        workers: 1,
        ..Default::default()
    };
    let parallel = SearchOptions {
        workers: 4,
        ..serial
    };
    let a = search_configs(&job, &cluster, serial).expect("serial search");
    let b = search_configs(&job, &cluster, parallel).expect("parallel search");
    let specs_a: Vec<String> = a.iter().map(|c| c.spec.label()).collect();
    let specs_b: Vec<String> = b.iter().map(|c| c.spec.label()).collect();
    assert_eq!(
        specs_a, specs_b,
        "ranking order must not depend on worker count"
    );
    assert!(a[0].report.is_some() && a[1].report.is_some());
    assert!(
        a[2..].iter().all(|c| c.report.is_none()),
        "exactly two finalists simulated"
    );
}

#[test]
fn infeasible_points_are_structured_outcomes_not_noise() {
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let specs = vec![
        // Invalid world: TP2 x PP16 cannot map onto 8 GPUs.
        ParallelismSpec::new(2, 16, 1, 1, false).unwrap(),
        ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
    ];
    let outcomes = Sweep::new(single_hgx_node(), job, specs)
        .with_sim_config(SimConfig::fast())
        .workers(2)
        .run_outcomes();
    assert_eq!(outcomes.len(), 2, "every point yields an outcome");
    match &outcomes[0] {
        SweepOutcome::Skipped { point, reason } => {
            assert_eq!(point.index, 0);
            assert!(!reason.is_empty());
        }
        other => panic!("expected structured skip, got {other:?}"),
    }
    assert!(outcomes[1].report().is_some());
}
