/root/repo/target/debug/deps/charllm-abab9638c76d7d0c.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/charllm-abab9638c76d7d0c: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/insights.rs:
crates/core/src/presets.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sweep.rs:
