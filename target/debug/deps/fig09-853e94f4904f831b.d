/root/repo/target/debug/deps/fig09-853e94f4904f831b.d: crates/bench/benches/fig09.rs

/root/repo/target/debug/deps/fig09-853e94f4904f831b: crates/bench/benches/fig09.rs

crates/bench/benches/fig09.rs:
