/root/repo/target/debug/examples/datacenter_projection-44261a0c710507c7.d: examples/datacenter_projection.rs Cargo.toml

/root/repo/target/debug/examples/libdatacenter_projection-44261a0c710507c7.rmeta: examples/datacenter_projection.rs Cargo.toml

examples/datacenter_projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
