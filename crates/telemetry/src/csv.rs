//! CSV writers matching the artifact's telemetry output format.

use std::io::{self, Write};

use crate::store::TelemetryStore;
use crate::timeseries::TimeSeries;

/// Write one series as `t,value` rows.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_series<W: Write>(mut w: W, header: &str, series: &TimeSeries) -> io::Result<()> {
    writeln!(w, "t_s,{header}")?;
    for (t, v) in series.iter() {
        writeln!(w, "{t:.4},{v:.4}")?;
    }
    Ok(())
}

/// Write a whole store as wide CSV: one row per timestamp, one column group
/// per GPU (`powerN,tempN,freqN`).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_store<W: Write>(mut w: W, store: &TelemetryStore) -> io::Result<()> {
    let n = store.num_gpus();
    write!(w, "t_s")?;
    for g in 0..n {
        write!(w, ",power{g}_w,temp{g}_c,freq{g}_mhz,util{g},pcie{g}_gbps")?;
    }
    writeln!(w)?;
    let samples = if n > 0 { store.power(0).len() } else { 0 };
    for i in 0..samples {
        let t = store.power(0).times()[i];
        write!(w, "{t:.4}")?;
        for g in 0..n {
            write!(
                w,
                ",{:.2},{:.2},{:.0},{:.3},{:.3}",
                store.power(g).values()[i],
                store.temp(g).values()[i],
                store.freq(g).values()[i],
                store.util(g).values()[i],
                store.pcie(g).values()[i],
            )?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GpuSample;

    #[test]
    fn series_csv_roundtrip_shape() {
        let mut s = TimeSeries::new();
        s.push(0.0, 1.5);
        s.push(0.5, 2.5);
        let mut buf = Vec::new();
        write_series(&mut buf, "power_w", &s).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "t_s,power_w");
        assert!(lines[1].starts_with("0.0000,1.5"));
    }

    #[test]
    fn store_csv_has_one_column_group_per_gpu() {
        let mut store = TelemetryStore::new(2);
        for g in 0..2 {
            store.record(
                g,
                0.0,
                GpuSample {
                    power_w: 100.0,
                    temp_c: 40.0,
                    freq_mhz: 1980.0,
                    util: 1.0,
                    pcie_gbps: 0.5,
                },
            );
        }
        let mut buf = Vec::new();
        write_store(&mut buf, &store).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.contains("power0_w"));
        assert!(header.contains("pcie1_gbps"));
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn multi_gpu_store_roundtrips_rows_and_ordering() {
        // 3 GPUs × 4 samples with distinct values everywhere, so any
        // column/row transposition or reordering changes the parsed floats.
        let gpus = 3;
        let samples = 4;
        let mut store = TelemetryStore::new(gpus);
        for i in 0..samples {
            let t = i as f64 * 0.25;
            for g in 0..gpus {
                store.record(
                    g,
                    t,
                    GpuSample {
                        power_w: 100.0 + (g * samples + i) as f64,
                        temp_c: 40.0 + g as f64,
                        freq_mhz: 1500.0 + i as f64,
                        util: 0.5,
                        pcie_gbps: g as f64 + i as f64 / 8.0,
                    },
                );
            }
        }
        let mut buf = Vec::new();
        write_store(&mut buf, &store).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + samples, "one row per timestamp");
        let header: Vec<&str> = lines[0].split(',').collect();
        assert_eq!(header.len(), 1 + 5 * gpus, "five columns per GPU");
        assert_eq!(header[1], "power0_w");
        assert_eq!(header[1 + 5 * (gpus - 1)], format!("power{}_w", gpus - 1));
        let mut last_t = f64::NEG_INFINITY;
        for (i, line) in lines[1..].iter().enumerate() {
            let fields: Vec<f64> = line.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 1 + 5 * gpus);
            assert!(fields[0] > last_t, "timestamps must ascend");
            last_t = fields[0];
            for g in 0..gpus {
                let power = fields[1 + 5 * g];
                assert_eq!(
                    power,
                    100.0 + (g * samples + i) as f64,
                    "gpu {g} sample {i} landed in the wrong cell"
                );
            }
        }
    }

    #[test]
    fn empty_store_writes_header_only() {
        let store = TelemetryStore::new(0);
        let mut buf = Vec::new();
        write_store(&mut buf, &store).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap().lines().count(), 1);
    }
}
