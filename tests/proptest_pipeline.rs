//! Property-based integration tests: random valid configurations must
//! lower to structurally valid traces and simulate to completion (no
//! deadlocks, conserved tokens, sane telemetry).

use proptest::prelude::*;

use charllm_hw::{Cluster, GpuModel, NodeLayout};
use charllm_models::{MoeConfig, TrainJob, TransformerArch};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{SimConfig, Simulator};
use charllm_trace::{lower_train, DeviceHints};

fn tiny_arch(moe: bool) -> TransformerArch {
    TransformerArch {
        name: "tiny".to_string(),
        num_layers: 8,
        hidden: 256,
        num_heads: 4,
        num_kv_heads: 4,
        ffn_hidden: 1024,
        vocab: 1024,
        gated_mlp: false,
        tied_embeddings: true,
        moe: moe.then_some(MoeConfig {
            num_experts: 4,
            top_k: 2,
        }),
        default_seq_len: 128,
    }
}

fn arb_config() -> impl Strategy<Value = (usize, usize, usize, usize, bool, bool, bool, bool)> {
    // (tp, pp, ep_idx, mb, moe, recompute, cc, chunked)
    (
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0usize..3,
        prop_oneof![Just(1usize), Just(2)],
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_valid_configs_simulate_to_completion(
        (tp, pp, ep_idx, mb, moe, recompute, cc, chunked) in arb_config(),
    ) {
        let arch = tiny_arch(moe);
        let ep = if moe { [1usize, 2, 4][ep_idx] } else { 1 };
        let world = 16usize;
        let mp = tp * pp * ep;
        prop_assume!(world.is_multiple_of(mp));
        prop_assume!(arch.num_layers.is_multiple_of(pp));
        let spec = ParallelismSpec::infer_dp(tp, pp, ep, world, false).unwrap();

        let mut job = TrainJob::pretrain(arch)
            .with_global_batch(16)
            .with_microbatch(mb)
            .with_recompute(recompute)
            .with_cc_overlap(cc);
        job.optim.chunked_p2p = chunked;
        prop_assume!(job.validate_for_dp(spec.dp).is_ok());

        let cluster = Cluster::new("2xHGX", GpuModel::H200.spec(), NodeLayout::hgx(), 2).unwrap();
        let partition = StagePartition::even(job.arch.num_layers, pp).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        prop_assert!(lowered.trace.validate().is_empty());

        let placement = Placement::identity(&cluster, spec.world()).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.prewarm = false; // keep tiny runs fast
        let result = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
            .unwrap()
            .run()
            .expect("no deadlock for any valid configuration");
        prop_assert!(result.step_time_s > 0.0);
        prop_assert!(result.tokens_per_s > 0.0);
        // Conservation: step time x throughput = tokens per step.
        let tokens = job.tokens_per_step() as f64;
        prop_assert!((result.tokens_per_s * result.step_time_s - tokens).abs() / tokens < 1e-6);
        // Every rank did some compute.
        for k in &result.kernel_time {
            prop_assert!(k.compute_total() > 0.0);
        }
    }

    #[test]
    fn interleaved_schedules_also_complete(
        v in 2usize..=4,
        tp in prop_oneof![Just(1usize), Just(2)],
    ) {
        let arch = tiny_arch(false);
        let pp = 4usize;
        let world = 16usize;
        let spec = ParallelismSpec::infer_dp(tp, pp, 1, world, false).unwrap();
        // 8 layers / 4 stages = 2 per stage; v must divide 2.
        prop_assume!(2 % v == 0 || v == 2);
        let job = TrainJob::pretrain(arch).with_global_batch(spec.dp * pp * 2);
        prop_assume!(job.validate_for_dp(spec.dp).is_ok());
        prop_assume!(job.num_microbatches(spec.dp).is_multiple_of(pp));

        let cluster = Cluster::new("2xHGX", GpuModel::H200.spec(), NodeLayout::hgx(), 2).unwrap();
        let partition = StagePartition::even(8, pp).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered = lower_train(
            &job,
            &spec,
            PipelineSchedule::Interleaved(v),
            &partition,
            &hints,
        );
        prop_assume!(lowered.is_ok());
        let lowered = lowered.unwrap();
        let placement = Placement::identity(&cluster, spec.world()).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.prewarm = false;
        let result = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
            .unwrap()
            .run()
            .expect("interleaved schedule must not deadlock");
        prop_assert!(result.tokens_per_s > 0.0);
    }
}
