/root/repo/target/debug/deps/fig23-6e9973879e71d2f8.d: crates/bench/benches/fig23.rs Cargo.toml

/root/repo/target/debug/deps/libfig23-6e9973879e71d2f8.rmeta: crates/bench/benches/fig23.rs Cargo.toml

crates/bench/benches/fig23.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
