//! Profile one training iteration and export a Perfetto-loadable trace.
//!
//! Runs GPT3-175B with TP4-PP8 (DP2) on the 64-GPU H200 cluster, attaches a
//! span recorder, and writes a Chrome `traceEvents` JSON next to the phase
//! attribution table. Open the JSON at <https://ui.perfetto.dev> to see one
//! track per rank with flow arrows between communicating GPUs.
//!
//! ```sh
//! cargo run --release --example profile_iteration
//! ```

use std::fs;

use charllm::{phase_table, top_spans_table};
use charllm_hw::presets::hgx_h200_with_nodes;
use charllm_hw::GpuId;
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{SimConfig, Simulator};
use charllm_telemetry::{chrome_trace, phase, SpanRecorder};
use charllm_trace::lower::{lower_train, DeviceHints};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 64-GPU GPT-3 preset: 8 HGX-H200 nodes, TP4 inside the node,
    // PP8 across nodes, DP2 filling the remainder.
    let cluster = hgx_h200_with_nodes(8);
    let job = TrainJob::pretrain(models::gpt3_175b()).with_global_batch(64);
    let spec = ParallelismSpec::infer_dp(4, 8, 1, 64, false)?;
    let partition = StagePartition::even(job.arch.num_layers, spec.pp)?;
    let hints = DeviceHints::for_spec(cluster.gpu());
    let lowered = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)?;
    let trace = lowered.trace;
    let placement = Placement::identity(&cluster, trace.world())?;

    println!(
        "== {} {} on {} ({} ranks) ==",
        job.arch.name,
        spec,
        cluster.name(),
        trace.world()
    );

    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    let sim = Simulator::with_observer(&cluster, &placement, &trace, cfg, SpanRecorder::new())?;
    let (result, recorder) = sim.run_observed()?;
    let profile = phase::attribute(&recorder, result.sim_time_s, cfg.iterations);

    println!("\n{}\n", phase_table(&profile));
    println!("{}", top_spans_table(&profile, 10));

    // Export the Chrome traceEvents JSON: one process per node, one thread
    // per rank, flow arrows for every network flow, power counters per GPU.
    let node_of_gpu: Vec<usize> = (0..cluster.num_gpus())
        .map(|g| cluster.node_of(GpuId(g as u32)).index())
        .collect();
    let events = chrome_trace::export(&recorder, &node_of_gpu);
    let path = std::env::temp_dir().join("charllm_profile_iteration.json");
    fs::write(&path, serde_json::to_string(&events)?)?;
    println!(
        "\nwrote {} spans / {} flows to {}",
        recorder.num_spans(),
        recorder.flows().len(),
        path.display()
    );
    println!("open it at https://ui.perfetto.dev");
    Ok(())
}
