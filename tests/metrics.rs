//! Cross-layer metrics hub: correctness, export stability, and the two
//! guarantees the observability layer rides on — an unobserved (or
//! disabled-hub) engine is byte-identical to the plain engine, and a
//! streamed sweep's final snapshot reconciles exactly with the summed
//! per-point reports.

use std::io::Write;
use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use charllm::prelude::*;
use charllm_telemetry::metrics::MetricsHub;
use charllm_telemetry::MetricsSnapshot;

/// A cloneable writer that accumulates into shared memory, so a test can
/// hand it to a [`ProgressStream`] and read the lines back afterwards.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }
}

fn small_sweep(specs: Vec<ParallelismSpec>) -> Sweep {
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(4);
    Sweep::new(single_hgx_node(), job, specs).with_sim_config(SimConfig::fast())
}

fn spec(label: &str) -> ParallelismSpec {
    ParallelismSpec::parse(label, 8).unwrap()
}

/// Constructible but infeasible on 8 GPUs: the sweep skips (or fails) it.
fn bad_spec() -> ParallelismSpec {
    ParallelismSpec::new(2, 16, 1, 1, false).unwrap()
}

/// One mutation against a deterministic three-series hub.
#[derive(Debug, Clone)]
enum Op {
    Count(u64),
    Gauge(f64),
    Observe(f64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    collection::vec(
        (0u64..3, 0u64..400).prop_map(|(sel, v)| match sel {
            0 => Op::Count(v + 1),
            1 => Op::Gauge(v as f64 * 0.25 - 50.0),
            _ => Op::Observe(v as f64 * 0.01),
        }),
        0..12,
    )
}

fn apply(hub: &Arc<MetricsHub>, ops: &[Op]) {
    let shard = hub.shard(0);
    for op in ops {
        match op {
            Op::Count(v) => shard.counter("ops_total", &[("kind", "test")]).add(*v),
            Op::Gauge(v) => shard.gauge("level", &[]).set(*v),
            Op::Observe(v) => shard.histogram("latency_s", &[], &[0.5, 2.0]).observe(*v),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// snap(a→c) == snap(a→b) + snap(b→c): deltas compose exactly, for
    /// any interleaving of counter/gauge/histogram activity. This is what
    /// lets the sweep stream emit per-point deltas that sum bit-for-bit
    /// to the final snapshot.
    #[test]
    fn snapshot_diffs_compose(ops1 in arb_ops(), ops2 in arb_ops(), ops3 in arb_ops()) {
        let hub = MetricsHub::new(2);
        apply(&hub, &ops1);
        let a = hub.snapshot();
        apply(&hub, &ops2);
        let b = hub.snapshot();
        apply(&hub, &ops3);
        let c = hub.snapshot();
        let direct = c.diff(&a);
        let composed = b.diff(&a).add(&c.diff(&b));
        prop_assert_eq!(
            serde_json::to_string(&direct.to_json()).unwrap(),
            serde_json::to_string(&composed.to_json()).unwrap()
        );
    }
}

#[test]
fn prometheus_and_json_exports_are_stable() {
    let hub = MetricsHub::new(1);
    let shard = hub.shard(0);
    shard.counter("requests_total", &[("code", "200")]).add(3);
    shard.gauge("queue_depth", &[]).set(2.5);
    let h = shard.histogram("latency_s", &[], &[0.1, 1.0]);
    h.observe(0.05);
    h.observe(0.5);
    h.observe(5.0);
    let snap = hub.snapshot();
    assert_eq!(
        snap.prometheus_text(),
        "# TYPE latency_s histogram\n\
         latency_s_bucket{le=\"0.1\"} 1\n\
         latency_s_bucket{le=\"1\"} 2\n\
         latency_s_bucket{le=\"+Inf\"} 3\n\
         latency_s_sum 5.55\n\
         latency_s_count 3\n\
         # TYPE queue_depth gauge\n\
         queue_depth 2.5\n\
         # TYPE requests_total counter\n\
         requests_total{code=\"200\"} 3\n"
    );
    assert_eq!(
        serde_json::to_string(&snap.to_json()).unwrap(),
        r#"{"metrics":[{"name":"latency_s","labels":{},"kind":"histogram","bounds":[0.1,1],"buckets":[1,1,1],"count":3,"sum":5.55},{"name":"queue_depth","labels":{},"kind":"gauge","value":2.5},{"name":"requests_total","labels":{"code":"200"},"kind":"counter","value":3}]}"#
    );
}

#[test]
fn engine_is_byte_identical_with_hub_disabled_and_enabled() {
    let baseline = small_sweep(vec![spec("TP2-PP2")]).workers(1).run().unwrap();
    let disabled = small_sweep(vec![spec("TP2-PP2")])
        .workers(1)
        .with_metrics(MetricsHub::disabled())
        .run()
        .unwrap();
    let enabled = small_sweep(vec![spec("TP2-PP2")])
        .workers(1)
        .with_metrics(MetricsHub::new(2))
        .run()
        .unwrap();
    let json = |r: &RunReport| serde_json::to_string(&r.sim).unwrap();
    assert_eq!(json(&baseline[0]), json(&disabled[0]));
    assert_eq!(
        json(&baseline[0]),
        json(&enabled[0]),
        "the hub observes the engine; it must never feed back"
    );
}

#[test]
fn engine_gauges_populate_under_enabled_hub() {
    let hub = MetricsHub::new(1);
    // Force the calendar path so the satellite counters are exercised.
    let mut cfg = SimConfig::fast();
    cfg.sched_heap_threshold = 1;
    let report = Experiment::builder()
        .cluster(single_hgx_node())
        .job(TrainJob::pretrain(gpt3_13b()).with_global_batch(4))
        .parallelism("TP2-PP2")
        .unwrap()
        .sim_config(cfg)
        .metrics(hub.shard(0))
        .run()
        .unwrap();
    let snap = hub.snapshot();
    let gauge = |name: &str| {
        snap.gauge(name, &[("worker", "0")])
            .unwrap_or_else(|| panic!("{name} registered"))
    };
    assert!(gauge("sim_events") > 0.0, "event counter published");
    assert!(gauge("sim_time_s") > 0.0, "sim clock published");
    assert!(
        gauge("sim_cal_bucket_drains") > 0.0,
        "calendar drain counter flows through to the hub"
    );
    assert!(gauge("sim_heap_pops") > 0.0);
    // The end-of-run stats and the gauges tell the same story.
    assert!((gauge("sim_time_s") - report.sim.sim_time_s).abs() < 1e-9);
    // Host-side stage timings landed in the shared histogram.
    let stages = snap
        .iter()
        .filter(|(id, _)| id.name == "sim_stage_seconds")
        .count();
    assert_eq!(stages, 4, "lower/plan_setup/event_loop/report series");
}

#[test]
fn self_profiled_reports_carry_stage_timings() {
    let build = |profile: bool| {
        Experiment::builder()
            .cluster(single_hgx_node())
            .job(TrainJob::pretrain(gpt3_13b()).with_global_batch(4))
            .parallelism("TP2-PP2")
            .unwrap()
            .sim_config(SimConfig::fast())
            .self_profile(profile)
            .run()
            .unwrap()
    };
    let plain = build(false);
    assert!(plain.stages.is_none(), "off by default");
    let profiled = build(true);
    let stages = profiled.stages.expect("opted in");
    let names: Vec<&str> = stages.stages.iter().map(|s| s.stage.as_str()).collect();
    assert_eq!(names, ["lower", "plan_setup", "event_loop", "report"]);
    assert!(stages.total_seconds() > 0.0);
    assert!(stages.seconds("event_loop") > 0.0);
    // The sim results themselves stay identical; only the report metadata
    // differs, so profiled runs remain comparable with unprofiled ones.
    assert_eq!(
        serde_json::to_string(&plain.sim).unwrap(),
        serde_json::to_string(&profiled.sim).unwrap()
    );
}

#[test]
fn progress_callbacks_are_serialized_and_monotone() {
    // 3 specs x 2 microbatches = 6 points; the PP16 spec skips.
    let specs = vec![bad_spec(), spec("TP2-PP2"), spec("TP4-PP2")];
    let seen: Arc<Mutex<Vec<(usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let outcomes = small_sweep(specs)
        .with_microbatches(vec![1, 2])
        .workers(4)
        .on_progress(move |p| {
            sink.lock()
                .unwrap()
                .push((p.completed, p.outcome.is_skipped()));
        })
        .run_outcomes();
    let seen = seen.lock().unwrap();
    assert_eq!(seen.len(), outcomes.len());
    let counts: Vec<usize> = seen.iter().map(|&(c, _)| c).collect();
    assert_eq!(
        counts,
        (1..=outcomes.len()).collect::<Vec<_>>(),
        "completed is strictly increasing under workers(4): callbacks are \
         serialized, each point reported exactly once"
    );
    assert_eq!(
        seen.iter().filter(|&&(_, s)| s).count(),
        2,
        "skips report too"
    );
}

#[test]
fn failed_outcomes_report_progress_in_strict_mode() {
    let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seen);
    let outcomes = small_sweep(vec![bad_spec(), spec("TP2-PP2")])
        .strict()
        .workers(2)
        .on_progress(move |p| sink.lock().unwrap().push(p.completed))
        .run_outcomes();
    assert!(matches!(outcomes[0], SweepOutcome::Failed { .. }));
    assert_eq!(*seen.lock().unwrap(), vec![1, 2]);
}

#[test]
fn streamed_sweep_reconciles_exactly_with_summed_reports() {
    // 4 specs x 2 variants x 4 microbatches = 32 points, parallel workers.
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let variants = vec![job.clone(), job.clone().with_cc_overlap(true)];
    let specs = vec![
        spec("TP2-PP2"),
        spec("TP4-PP2"),
        spec("TP2-PP4"),
        spec("TP8"),
    ];
    let hub = MetricsHub::new(4);
    let buf = SharedBuf::default();
    let stream = Arc::new(ProgressStream::new(buf.clone()));
    let outcomes = Sweep::new(single_hgx_node(), job, specs)
        .with_job_variants(variants)
        .with_microbatches(vec![1, 2, 4, 8])
        .with_sim_config(SimConfig::fast())
        .workers(4)
        .with_metrics(Arc::clone(&hub))
        .stream(stream)
        .run_outcomes();
    assert_eq!(outcomes.len(), 32);

    // Every line is well-formed; point events arrive in enumeration order
    // with a dense seq, then one terminal sweep_end.
    let lines = buf.lines();
    assert_eq!(lines.len(), 33);
    let events: Vec<ProgressEvent> = lines
        .iter()
        .map(|l| ProgressEvent::from_json_line(l).expect("well-formed JSONL"))
        .collect();
    for (i, e) in events[..32].iter().enumerate() {
        assert_eq!(e.event, "point");
        assert_eq!(e.seq, i as u64);
        assert_eq!(e.index, i, "stream is in enumeration order");
        assert_eq!(e.total, 32);
        assert_eq!(e.point, outcomes[i].point().to_string());
    }
    let end = &events[32];
    assert_eq!(end.event, "sweep_end");
    assert_eq!(end.seq, 32);

    // The final snapshot reconciles exactly with the summed reports.
    let reports: Vec<&RunReport> = outcomes.iter().filter_map(|o| o.report()).collect();
    let snap = hub.snapshot();
    assert_eq!(
        snap.counter("sweep_points_completed_total", &[]),
        reports.len() as u64
    );
    assert_eq!(
        snap.counter("sweep_points_skipped_total", &[]),
        outcomes.iter().filter(|o| o.is_skipped()).count() as u64
    );
    assert_eq!(
        end.completed + end.skipped + end.failed,
        32,
        "terminal event tallies every point"
    );
    let energy_mj: u64 = reports
        .iter()
        .map(|r| (r.energy_per_step_j * 1e3).round() as u64)
        .sum();
    assert_eq!(
        snap.counter("sweep_energy_per_step_mj_total", &[]),
        energy_mj,
        "energy counter is the exact quantized sum of per-point reports"
    );
    // Cache counters agree with the per-report CacheStats sums.
    let (hits, misses) = reports
        .iter()
        .filter_map(|r| r.cache)
        .fold((0u64, 0u64), |(h, m), c| {
            (h + c.hits(), m + c.lookups() - c.hits())
        });
    let hub_hits = snap.counter(
        "cache_lookups_total",
        &[("family", "lowered"), ("result", "hit")],
    ) + snap.counter(
        "cache_lookups_total",
        &[("family", "plans"), ("result", "hit")],
    );
    let hub_misses = snap.counter(
        "cache_lookups_total",
        &[("family", "lowered"), ("result", "miss")],
    ) + snap.counter(
        "cache_lookups_total",
        &[("family", "plans"), ("result", "miss")],
    );
    assert_eq!((hub_hits, hub_misses), (hits, misses));

    // Deltas embedded in the stream sum to the final snapshot for the
    // sweep's own counters (exact: integer arithmetic end to end).
    let mut summed_completed = 0u64;
    for e in &events[..32] {
        if let Some(list) = e.metrics.as_object().and_then(|o| o.get("metrics")) {
            if let Some(arr) = list.as_array() {
                for m in arr {
                    let obj = m.as_object().unwrap();
                    if obj.get("name").and_then(|v| v.as_str())
                        == Some("sweep_points_completed_total")
                    {
                        summed_completed +=
                            obj.get("value").and_then(|v| v.as_f64()).unwrap() as u64;
                    }
                }
            }
        }
    }
    assert_eq!(
        summed_completed,
        reports.len() as u64,
        "per-event deltas sum to the final counter"
    );

    // Worker accounting exists for at least worker 0 and utilization is a
    // sane ratio.
    assert!(snap.counter_sum("sweep_worker_busy_ms_total") > 0 || reports.is_empty());
    let util = snap
        .gauge("sweep_worker_utilization", &[("worker", "0")])
        .expect("worker 0 utilization");
    assert!((0.0..=1.5).contains(&util), "utilization ratio, got {util}");
}

#[test]
fn disabled_hub_snapshot_is_empty_and_stream_carries_null_metrics() {
    let hub = MetricsHub::disabled();
    let buf = SharedBuf::default();
    let outcomes = small_sweep(vec![spec("TP2-PP2")])
        .workers(1)
        .with_metrics(Arc::clone(&hub))
        .stream(Arc::new(ProgressStream::new(buf.clone())))
        .run_outcomes();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(hub.snapshot(), MetricsSnapshot::default());
    let events: Vec<ProgressEvent> = buf
        .lines()
        .iter()
        .map(|l| ProgressEvent::from_json_line(l).unwrap())
        .collect();
    assert_eq!(events.len(), 2);
    assert!(
        events.iter().all(|e| e.metrics == serde_json::Value::Null),
        "disabled hub => null metrics payloads, not empty snapshots"
    );
}
