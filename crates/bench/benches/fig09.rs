//! Figure 9: GPU power, temperature and clock frequency on the H200 cluster
//! across models, parallelism configurations and optimization techniques
//! (Base / cc / act / cc+act), efficiency normalized per model.

use charllm::prelude::*;
use charllm::sweep::normalized;
use charllm_bench::{banner, bench_job, feasible, report_json, save_json, try_run};

fn main() {
    banner(
        "Figure 9",
        "H200: optimization techniques vs power/temp/frequency/efficiency",
    );
    let cluster = hgx_h200_cluster();
    let mut rows = Vec::new();
    for arch in [gpt3_175b(), llama3_70b(), mixtral_8x22b()] {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<7} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "config", "opt", "eff", "avg W", "peak W", "peak C", "MHz", "thr %"
        );
        let base = bench_job(arch.clone());
        let mut reports = Vec::new();
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for job in optimization_variants(&base) {
                if !feasible(&job, &spec, &cluster) {
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    reports.push(r);
                }
            }
        }
        for (r, eff) in normalized(&reports, |r| r.tokens_per_joule) {
            println!(
                "{:<14} {:<7} {:>7.2} {:>8.0} {:>8.0} {:>8.1} {:>8.0} {:>6.1}%",
                r.parallelism,
                r.optimization,
                eff,
                r.mean_power_w,
                r.peak_power_w,
                r.peak_temp_c,
                r.mean_freq_mhz,
                r.mean_throttle * 100.0,
            );
            rows.push(report_json(r));
        }
    }
    save_json("fig09", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: cc-overlap helps communication-bound configs but\n\
         raises peak temperature; recomputation costs efficiency except where\n\
         it unlocks configurations (Mixtral EP8-TP1-PP4 becomes the best\n\
         point by a large margin); PP-heavy points run hotter."
    );
}
