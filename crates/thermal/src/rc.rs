//! First-order RC thermal model per GPU.
//!
//! `C · dT/dt = P − (T − T_inlet) / (R · cooling_factor)`
//!
//! Steady state is `T = T_inlet + P · R · cooling_factor`: a rear GPU with a
//! preheated inlet and a worse cooling factor settles visibly hotter than a
//! front GPU at identical power — the paper's persistent thermal imbalance
//! (Figs. 17a/18a/19).

use serde::{Deserialize, Serialize};

use charllm_hw::GpuModel;

/// Thermal resistance/capacitance of one GPU + heatsink assembly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSpec {
    /// Junction-to-inlet thermal resistance, °C per watt (nominal cooling).
    pub r_c_per_w: f64,
    /// Lumped heat capacity, joules per °C.
    pub c_j_per_c: f64,
}

impl ThermalSpec {
    /// Calibrated spec for a GPU model: full sustained load at ambient inlet
    /// lands in the device's typical operating band (~65–70 °C front), with
    /// a heatsink time constant of tens of seconds.
    pub fn for_model(model: GpuModel) -> Self {
        match model {
            // 650 W sustained -> ~40 °C rise over inlet.
            GpuModel::H100 | GpuModel::H200 => ThermalSpec {
                r_c_per_w: 0.062,
                c_j_per_c: 520.0,
            },
            // 240 W sustained per GCD -> ~43 °C rise over inlet.
            GpuModel::Mi250Gcd => ThermalSpec {
                r_c_per_w: 0.18,
                c_j_per_c: 180.0,
            },
        }
    }

    /// Steady-state temperature at constant power and inlet.
    pub fn steady_state_c(&self, power_w: f64, inlet_c: f64, cooling_factor: f64) -> f64 {
        inlet_c + power_w * self.r_c_per_w * cooling_factor
    }

    /// Advance the junction temperature by `dt` seconds (forward Euler with
    /// internal sub-stepping for stability).
    pub fn step(
        &self,
        temp_c: f64,
        power_w: f64,
        inlet_c: f64,
        cooling_factor: f64,
        dt_s: f64,
    ) -> f64 {
        let tau = self.r_c_per_w * cooling_factor * self.c_j_per_c;
        // Exact solution of the linear ODE over dt: exponential approach to
        // steady state.
        let target = self.steady_state_c(power_w, inlet_c, cooling_factor);
        target + (temp_c - target) * (-dt_s / tau).exp()
    }

    /// The thermal time constant (seconds) at nominal cooling.
    pub fn time_constant_s(&self) -> f64 {
        self.r_c_per_w * self.c_j_per_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ThermalSpec {
        ThermalSpec::for_model(GpuModel::H200)
    }

    #[test]
    fn steady_state_operating_band() {
        // Full sustained H200 load at a 26 C inlet should land around 62-72C.
        let t = spec().steady_state_c(650.0, 26.0, 1.0);
        assert!((60.0..75.0).contains(&t), "steady = {t}");
    }

    #[test]
    fn rear_gpu_with_preheat_can_cross_throttle_threshold() {
        // Preheated inlet (~40 C) + worse cooling crosses the 83 C throttle
        // line under sustained near-TDP load — the Fig. 17 mechanism.
        let spec = spec();
        let t = spec.steady_state_c(680.0, 41.0, 1.08);
        assert!(t > 83.0, "rear steady = {t}");
        let front = spec.steady_state_c(680.0, 26.0, 1.0);
        assert!(front < 83.0, "front steady = {front}");
    }

    #[test]
    fn step_converges_to_steady_state() {
        let s = spec();
        let mut t = 30.0;
        for _ in 0..10_000 {
            t = s.step(t, 650.0, 26.0, 1.0, 0.1);
        }
        assert!((t - s.steady_state_c(650.0, 26.0, 1.0)).abs() < 0.01);
    }

    #[test]
    fn step_is_monotone_towards_target() {
        let s = spec();
        let cold = s.step(30.0, 650.0, 26.0, 1.0, 1.0);
        assert!(cold > 30.0, "heating up");
        let hot = s.step(90.0, 90.0, 26.0, 1.0, 1.0);
        assert!(hot < 90.0, "cooling down");
    }

    #[test]
    fn step_never_overshoots() {
        let s = spec();
        let target = s.steady_state_c(650.0, 26.0, 1.0);
        let t = s.step(30.0, 650.0, 26.0, 1.0, 1e6);
        assert!((t - target).abs() < 1e-6);
    }

    #[test]
    fn time_constant_is_tens_of_seconds() {
        for m in [GpuModel::H100, GpuModel::H200, GpuModel::Mi250Gcd] {
            let tau = ThermalSpec::for_model(m).time_constant_s();
            assert!((10.0..120.0).contains(&tau), "{m}: tau = {tau}");
        }
    }

    #[test]
    fn mi250_band_reasonable() {
        let s = ThermalSpec::for_model(GpuModel::Mi250Gcd);
        let t = s.steady_state_c(240.0, 26.0, 1.0);
        assert!((60.0..80.0).contains(&t), "mi250 steady = {t}");
    }
}
