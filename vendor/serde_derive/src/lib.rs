//! Syn-free `#[derive(Serialize, Deserialize)]` for the vendored serde.
//!
//! The offline build environment has neither `syn` nor `quote`, so this
//! crate walks the raw [`proc_macro::TokenStream`] of the deriving item and
//! emits impls as source text. Supported shapes — everything the workspace
//! derives on:
//!
//! - structs with named fields (any visibility, no generics)
//! - tuple structs (newtype ids like `GpuId(pub u32)`)
//! - unit structs
//! - enums with unit, single-field tuple, and named-field variants
//!   (externally tagged, matching serde's default representation)
//!
//! `#[serde(...)]` attributes and generic parameters are intentionally
//! unsupported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Newtype(String),
    Named(String, Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error token parses"),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("derive does not support generics on `{name}`"));
    }
    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body for `{name}`, got {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Names of the fields in `{ vis name: Type, ... }`, skipping types by
/// tracking top-level angle-bracket depth.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => return Ok(fields),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type: everything until a comma at angle depth zero.
        let mut depth = 0i32;
        for tok in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

/// Number of fields in a tuple-struct body (top-level commas + trailing).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut last_was_comma = false;
    for tok in stream {
        saw_tokens = true;
        last_was_comma = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    match (saw_tokens, last_was_comma) {
        (false, _) => 0,
        (true, true) => count,
        (true, false) => count + 1,
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => return Ok(variants),
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                if arity != 1 {
                    return Err(format!(
                        "variant `{name}`: only single-field tuple variants are supported"
                    ));
                }
                tokens.next();
                variants.push(Variant::Newtype(name));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                variants.push(Variant::Named(name, fields));
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Optional discriminant is unsupported; expect `,` or end.
        match tokens.next() {
            None => return Ok(variants),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => return Err(format!("expected `,` after variant, got {other:?}")),
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut obj = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "obj.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::serialize_value(&self.{f}));\n"
                ));
            }
            body.push_str("::serde::Value::Object(obj)");
            impl_block(name, "Serialize", &ser_fn(&body))
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            impl_block(name, "Serialize", &ser_fn(&body))
        }
        Item::UnitStruct { name } => impl_block(name, "Serialize", &ser_fn("::serde::Value::Null")),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => \
                         ::serde::Value::String(::std::string::String::from({vn:?})),\n"
                    )),
                    Variant::Newtype(vn) => arms.push_str(&format!(
                        "{name}::{vn}(x0) => {{\n\
                         let mut obj = ::serde::Map::new();\n\
                         obj.insert(::std::string::String::from({vn:?}), \
                         ::serde::Serialize::serialize_value(x0));\n\
                         ::serde::Value::Object(obj)\n}}\n"
                    )),
                    Variant::Named(vn, fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut obj = ::serde::Map::new();\n\
                             obj.insert(::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(obj)\n}}\n"
                        ));
                    }
                }
            }
            impl_block(
                name,
                "Serialize",
                &ser_fn(&format!("match self {{\n{arms}}}")),
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                 format!(\"expected object for {name}, got {{}}\", v.kind())))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                body.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(\
                     obj.get({f:?}).unwrap_or(&::serde::Value::Null))\
                     .map_err(|e| e.in_field({f:?}))?,\n"
                ));
            }
            body.push_str("})");
            impl_block(name, "Deserialize", &de_fn(&body))
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(v)?))"
                )
            } else {
                let mut b = format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::Error::custom(\
                     format!(\"expected array for {name}, got {{}}\", v.kind())))?;\n\
                     if items.len() != {arity} {{\n\
                     return ::core::result::Result::Err(::serde::Error::custom(\
                     format!(\"expected {arity} elements for {name}, got {{}}\", items.len())));\n\
                     }}\n\
                     ::core::result::Result::Ok({name}("
                );
                for i in 0..*arity {
                    b.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(&items[{i}])?,"
                    ));
                }
                b.push_str("))");
                b
            };
            impl_block(name, "Deserialize", &de_fn(&body))
        }
        Item::UnitStruct { name } => impl_block(
            name,
            "Deserialize",
            &de_fn(&format!("::core::result::Result::Ok({name})")),
        ),
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => str_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Newtype(vn) => obj_arms.push_str(&format!(
                        "if let ::core::option::Option::Some(inner) = obj.get({vn:?}) {{\n\
                         return ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(inner)?));\n}}\n"
                    )),
                    Variant::Named(vn, fields) => {
                        let mut build = format!(
                            "let fields = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(format!(\
                             \"expected object for {name}::{vn}, got {{}}\", inner.kind())))?;\n\
                             return ::core::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            build.push_str(&format!(
                                "{f}: ::serde::Deserialize::deserialize_value(\
                                 fields.get({f:?}).unwrap_or(&::serde::Value::Null))\
                                 .map_err(|e| e.in_field({f:?}))?,\n"
                            ));
                        }
                        build.push_str("});");
                        obj_arms.push_str(&format!(
                            "if let ::core::option::Option::Some(inner) = obj.get({vn:?}) {{\n\
                             {build}\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {str_arms}\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(obj) => {{\n\
                 {obj_arms}\
                 ::core::result::Result::Err(::serde::Error::custom(\
                 \"unknown {name} variant object\"))\n\
                 }},\n\
                 other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected {name} variant, got {{}}\", other.kind()))),\n\
                 }}"
            );
            impl_block(name, "Deserialize", &de_fn(&body))
        }
    }
}

fn ser_fn(body: &str) -> String {
    format!("fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}")
}

fn de_fn(body: &str) -> String {
    format!(
        "fn deserialize_value(v: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}"
    )
}

fn impl_block(name: &str, trait_name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::{trait_name} for {name} {{\n{body}\n}}\n"
    )
}
