/root/repo/target/debug/deps/executor_scaling-478b2fb687c25a12.d: crates/bench/benches/executor_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libexecutor_scaling-478b2fb687c25a12.rmeta: crates/bench/benches/executor_scaling.rs Cargo.toml

crates/bench/benches/executor_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
