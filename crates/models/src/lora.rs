//! Low-Rank Adaptation (LoRA) finetuning configuration (§4.3).

use serde::{Deserialize, Serialize};

use crate::arch::TransformerArch;

/// LoRA adapter configuration: rank-`r` adapters on the attention and FFN
/// projections, freezing the base model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Adapter rank (the paper's finetuning uses small ranks; 16 by default).
    pub rank: usize,
    /// Whether adapters are also attached to the FFN/expert projections (in
    /// addition to attention QKV/O).
    pub adapt_ffn: bool,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig {
            rank: 16,
            adapt_ffn: true,
        }
    }
}

impl LoraConfig {
    /// Number of *trainable* parameters for `arch` under this config.
    ///
    /// Every adapted `m×n` projection contributes `r·(m+n)`.
    pub fn trainable_params(&self, arch: &TransformerArch) -> u64 {
        let h = arch.hidden as u64;
        let kv = (arch.num_kv_heads * arch.head_dim()) as u64;
        let r = self.rank as u64;
        // Attention: Q (h×h), K (h×kv), V (h×kv), O (h×h).
        let mut per_layer = r * (h + h) * 2 + r * (h + kv) * 2;
        if self.adapt_ffn {
            let f = arch.ffn_hidden as u64;
            let mats = if arch.gated_mlp { 3 } else { 2 };
            let per_block = mats * r * (h + f);
            per_layer += match &arch.moe {
                None => per_block,
                Some(moe) => moe.num_experts as u64 * per_block,
            };
        }
        per_layer * arch.num_layers as u64
    }

    /// Fraction of total model parameters that are trainable.
    ///
    /// ```
    /// use charllm_models::{presets, LoraConfig};
    /// let frac = LoraConfig::default().trainable_fraction(&presets::llama3_70b());
    /// assert!(frac < 0.01, "LoRA trains <1% of parameters, got {frac}");
    /// ```
    pub fn trainable_fraction(&self, arch: &TransformerArch) -> f64 {
        self.trainable_params(arch) as f64 / arch.total_params() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn lora_params_are_tiny() {
        for arch in presets::all_models() {
            let frac = LoraConfig::default().trainable_fraction(&arch);
            assert!(frac < 0.02, "{}: {frac}", arch.name);
            assert!(frac > 0.0);
        }
    }

    #[test]
    fn rank_scales_params_linearly() {
        let arch = presets::gpt3_175b();
        let r16 = LoraConfig {
            rank: 16,
            adapt_ffn: true,
        }
        .trainable_params(&arch);
        let r32 = LoraConfig {
            rank: 32,
            adapt_ffn: true,
        }
        .trainable_params(&arch);
        assert_eq!(r32, 2 * r16);
    }

    #[test]
    fn attention_only_is_smaller() {
        let arch = presets::llama3_70b();
        let full = LoraConfig {
            rank: 16,
            adapt_ffn: true,
        }
        .trainable_params(&arch);
        let attn = LoraConfig {
            rank: 16,
            adapt_ffn: false,
        }
        .trainable_params(&arch);
        assert!(attn < full);
    }
}
