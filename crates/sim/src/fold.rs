//! Symmetry-folded simulation: run one data-parallel replica, report all.
//!
//! When every DP replica of a training job is placed *congruently* — same
//! node-local slots, a clean node-to-node translation, no node shared
//! between replicas — the replicas evolve identically: same kernels, same
//! flow rates, same thermal trajectories, exact to f64 accumulation order
//! (the engine's `swap_remove` flow compaction lets concurrent flows
//! credit one GPU's accumulators in either order, so even the unfolded
//! run's replicas differ among themselves by an ulp). Simulating the
//! dp == 0 replica is then enough: every expanded metric agrees with the
//! unfolded engine to relative 1e-12, and is frequently bit-equal. This module detects that symmetry
//! ([`detect`]), runs the representative replica on the *original* cluster
//! with the engine's fold hooks ([`run_folded`]), and expands the result
//! back to full-cluster shape by copying representative rows onto the
//! replicas that were skipped.
//!
//! Exactness rests on three facts:
//!
//! * Cross-replica collectives (gradient AllReduce) span all replicas and
//!   exist only once per (tp, ep, pp) column in the unfolded run too —
//!   their full rings are rebuilt from
//!   [`charllm_trace::FoldedCollective::full_group`]
//!   and injected into the plan cache unchanged.
//! * Intra-replica collectives exist `dp` times unfolded; the folded run
//!   keeps the dp == 0 copy and multiplies its load on shared
//!   switch-tier links by `dp` ([`charllm_hw::LinkClass::Switch`] only —
//!   NVLink/PCIe/NIC links are replica-private under the congruence
//!   rules).
//! * Replica-symmetric runs give every member of a dp ring identical
//!   per-link loads, so trimming the ring's *launch gate* to the dp == 0
//!   members (the only ranks that still emit steps) changes neither its
//!   start nor its finish time.
//!
//! Anything that breaks replica symmetry — fault injection, a per-node
//!   power cap, per-GPU silicon variability — must run unfolded;
//! [`split_reason`] names the offender and [`simulate_train_folded`]
//! falls back automatically.

use std::sync::Arc;
use std::time::Instant;

use charllm_hw::{Cluster, GpuId};
use charllm_models::TrainJob;
use charllm_net::folding::translated_copy;
use charllm_net::lower_collective;
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, RankGrid, StagePartition};
use charllm_telemetry::metrics::MetricsShard;
use charllm_trace::{lower_train, lower_train_folded, DeviceHints, FoldedJob, TraceError};

use crate::config::SimConfig;
use crate::engine::{plan_from_lowered, EngineStats, FoldSetup, SharedPlans, Simulator};
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::observer::NoopObserver;
use crate::result::SimResult;

/// Options controlling folded-result expansion.
#[derive(Debug, Clone)]
pub struct FoldOptions {
    /// Copy the representative replica's telemetry time series onto every
    /// skipped GPU (default). At very large scale the expanded store can
    /// run to hundreds of megabytes; disable to keep series only for the
    /// GPUs that were actually stepped (aggregates like
    /// `telemetry.peak_temp_c()` stay correct either way — phantom GPUs
    /// mirror representatives).
    pub expand_telemetry: bool,
    /// Metrics shard to attach to the folded run (default `None`). When
    /// set, [`run_folded`] wires the engine's live gauges through
    /// [`Simulator::with_metrics`], publishes the fold multiplicity as
    /// `sim_fold_replicas`, and records per-stage wall time
    /// (`plan_build`, `event_loop`, `fold_expand`) into the
    /// `sim_stage_seconds` histogram.
    pub metrics: Option<MetricsShard>,
}

impl Default for FoldOptions {
    fn default() -> Self {
        FoldOptions {
            expand_telemetry: true,
            metrics: None,
        }
    }
}

/// Histogram bounds (seconds) shared by every `sim_stage_seconds` series.
pub const STAGE_SECONDS_BOUNDS: &[f64] = &[0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

/// The rank/GPU correspondence a successful [`detect`] proves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldMap {
    /// Replica count (`spec.dp`).
    pub multiplicity: u32,
    /// For every rank, its dp == 0 representative (identity on reps).
    pub rank_rep: Vec<u32>,
    /// For every GPU, the congruent GPU on the representative replica's
    /// node (identity on representative-node GPUs, mapped by node
    /// translation + equal slot elsewhere; covers placement-idle GPUs).
    pub gpu_rep: Vec<u32>,
    /// Representative ranks, ascending.
    pub active_ranks: Vec<u32>,
    /// Nodes hosting representative ranks, ascending.
    pub active_nodes: Vec<u32>,
}

/// How a run was executed by [`simulate_train_folded`].
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Whether the folded engine ran (false: unfolded fallback).
    pub folded: bool,
    /// Replica count folded over (1 when unfolded).
    pub multiplicity: u32,
    /// Why folding was skipped, when it was.
    pub reason: Option<String>,
    /// Engine counters of the run that actually executed.
    pub stats: EngineStats,
}

/// Check whether `placement` places the replicas of `spec` congruently and
/// build the correspondence maps.
///
/// The rules (each necessary for exactness, see the module docs):
///
/// 1. `spec` and `placement` cover the same world, with `spec.dp > 1`.
/// 2. Every node hosts ranks of exactly one dp value — replicas may not
///    share a node (idle phantom neighbours would distort the
///    representative's airflow preheat), and no node may sit empty (the
///    ×dp energy expansion would miscount its idle draw).
/// 3. Every replica's GPU list is a translated copy of replica 0's: equal
///    node-local slots rank-for-rank under a consistent, injective
///    node-to-node translation.
///
/// # Errors
///
/// Returns [`SimError::FoldUnsupported`] naming the first violated rule.
pub fn detect(
    cluster: &Cluster,
    placement: &Placement,
    spec: &ParallelismSpec,
) -> Result<FoldMap, SimError> {
    if spec.dp <= 1 {
        return Err(SimError::FoldUnsupported(
            "dp = 1: no data-parallel replicas to fold".into(),
        ));
    }
    let world = spec.world();
    if world != placement.world() {
        return Err(SimError::FoldUnsupported(format!(
            "spec world {} != placement world {}",
            world,
            placement.world()
        )));
    }
    let grid = RankGrid::new(*spec);
    let dp_stride = spec.tp * spec.ep;

    // Rule 2: node purity and full coverage.
    let mut node_dp: Vec<Option<usize>> = vec![None; cluster.num_nodes()];
    for rank in 0..world {
        let node = cluster.node_of(placement.gpu(rank)).index();
        let dp = grid.coords(rank).dp;
        match node_dp[node] {
            None => node_dp[node] = Some(dp),
            Some(d) if d == dp => {}
            Some(d) => {
                return Err(SimError::FoldUnsupported(format!(
                    "node {node} hosts ranks of replicas {d} and {dp}"
                )))
            }
        }
    }
    if let Some(empty) = node_dp.iter().position(Option::is_none) {
        return Err(SimError::FoldUnsupported(format!(
            "node {empty} hosts no ranks; its idle energy cannot be \
             attributed to a replica"
        )));
    }

    // Rule 3: every replica is a translated copy of replica 0.
    let replica_gpus = |d: usize| -> Vec<GpuId> {
        (0..world)
            .filter(|&r| grid.coords(r).dp == d)
            .map(|r| placement.gpu(r))
            .collect()
    };
    let rep_gpus = replica_gpus(0);
    for d in 1..spec.dp {
        if !translated_copy(&rep_gpus, &replica_gpus(d), cluster) {
            return Err(SimError::FoldUnsupported(format!(
                "replica {d} is not a slot-congruent translated copy of \
                 replica 0"
            )));
        }
    }

    // Maps. Ranks: drop the dp coordinate. GPUs: translate the node (taken
    // from any rank the node hosts — pure by rule 2) and keep the slot, so
    // placement-idle GPUs are covered too.
    let rank_rep: Vec<u32> = (0..world)
        .map(|r| (r - grid.coords(r).dp * dp_stride) as u32)
        .collect();
    let mut node_map: Vec<u32> = (0..cluster.num_nodes() as u32).collect();
    for (rank, &rep) in rank_rep.iter().enumerate() {
        let node = cluster.node_of(placement.gpu(rank)).index();
        let rep_node = cluster.node_of(placement.gpu(rep as usize)).index();
        node_map[node] = rep_node as u32;
    }
    let gpu_rep: Vec<u32> = (0..cluster.num_gpus() as u32)
        .map(|g| {
            let gpu = GpuId(g);
            let rep_node = charllm_hw::NodeId(node_map[cluster.node_of(gpu).index()]);
            cluster.gpu_at(rep_node, cluster.slot_of(gpu)).0
        })
        .collect();
    let active_ranks: Vec<u32> = (0..world as u32)
        .filter(|&r| rank_rep[r as usize] == r)
        .collect();
    let active_nodes: Vec<u32> = (0..cluster.num_nodes() as u32)
        .filter(|&n| node_map[n as usize] == n)
        .collect();
    Ok(FoldMap {
        multiplicity: spec.dp as u32,
        rank_rep,
        gpu_rep,
        active_ranks,
        active_nodes,
    })
}

/// Why a run must execute unfolded despite a symmetric placement, if it
/// must. Checked before [`detect`]: these are configuration properties,
/// independent of the placement.
pub fn split_reason(cfg: &SimConfig, faults: Option<&FaultPlan>) -> Option<String> {
    if faults.is_some_and(|f| !f.is_empty()) {
        return Some("fault plan present: failures break replica symmetry".into());
    }
    if cfg.node_power_cap.is_some() {
        return Some("per-node power cap breaks replica symmetry".into());
    }
    if !cfg.uniform_variability {
        return Some("seeded per-GPU silicon variability differs across replicas".into());
    }
    None
}

/// Run a [`FoldedJob`] on the full cluster and expand the result.
///
/// The trace keeps the original world size; only representative ranks carry
/// steps, phantom ranks finish instantly. The engine multiplies
/// intra-replica switch-link loads by `multiplicity` and serves the
/// cross-replica collectives from injected full-ring plans. The returned
/// [`SimResult`] is shaped exactly like an unfolded run's (per-rank /
/// per-GPU vectors over the whole cluster, cluster-total energy).
///
/// # Errors
///
/// [`SimError::FoldUnsupported`] when the configuration or placement cannot
/// fold (callers wanting a fallback use [`simulate_train_folded`]);
/// otherwise the usual simulator errors.
pub fn run_folded(
    cluster: &Cluster,
    placement: &Placement,
    folded: &FoldedJob,
    spec: &ParallelismSpec,
    cfg: SimConfig,
    shared: Option<Arc<SharedPlans>>,
    opts: &FoldOptions,
) -> Result<(SimResult, EngineStats), SimError> {
    if let Some(reason) = split_reason(&cfg, None) {
        return Err(SimError::FoldUnsupported(reason));
    }
    let map = detect(cluster, placement, spec)?;
    if map.multiplicity != folded.multiplicity {
        return Err(SimError::FoldUnsupported(format!(
            "trace folded over {} replicas but placement has {}",
            folded.multiplicity, map.multiplicity
        )));
    }
    let switch_mult = u16::try_from(map.multiplicity).map_err(|_| {
        SimError::FoldUnsupported(format!(
            "dp = {} exceeds the fold multiplier range",
            spec.dp
        ))
    })?;

    let shard = opts.metrics.as_ref().filter(|s| s.enabled());
    let stage_hist = |stage: &str| {
        shard.map(|s| {
            s.histogram(
                "sim_stage_seconds",
                &[("stage", stage)],
                STAGE_SECONDS_BOUNDS,
            )
        })
    };
    let mut stage_start = Instant::now();
    let mut mark_stage = |hist: Option<charllm_telemetry::metrics::Histogram>| {
        let now = Instant::now();
        let secs = now.duration_since(stage_start).as_secs_f64();
        stage_start = now;
        if let Some(h) = hist {
            h.observe(secs);
        }
    };

    // Rebuild the full cross-replica rings and seed them into the plan
    // cache with multiplier 1: they exist exactly once in the unfolded run.
    let mut injected = Vec::with_capacity(folded.folded.len());
    for fc in &folded.folded {
        let gpus: Vec<GpuId> = fc.full_group.iter().map(|&r| placement.gpu(r)).collect();
        let plan = lower_collective(fc.kind, fc.bytes_per_rank, &gpus, cluster, fc.chunking)?;
        injected.push((fc.id.0, plan_from_lowered(cluster, plan, 1)));
    }

    let setup = FoldSetup {
        switch_mult,
        active_ranks: map.active_ranks.clone(),
        active_nodes: map.active_nodes.clone(),
        injected,
    };
    let mut sim = Simulator::with_observer_fold(
        cluster,
        placement,
        &folded.trace,
        cfg,
        NoopObserver,
        Some(setup),
    )?;
    if let Some(plans) = shared {
        sim = sim.with_shared_plans(plans)?;
    }
    if let Some(s) = shard {
        sim = sim.with_metrics(s);
    }
    mark_stage(stage_hist("plan_build"));
    let (mut result, stats) = sim.run_stats()?;
    mark_stage(stage_hist("event_loop"));
    expand(&mut result, &map, opts);
    mark_stage(stage_hist("fold_expand"));
    Ok((result, stats))
}

/// Copy representative rows onto skipped replicas and restore
/// cluster-total energy figures.
fn expand(result: &mut SimResult, map: &FoldMap, opts: &FoldOptions) {
    for (rank, &rep) in map.rank_rep.iter().enumerate() {
        let rep = rep as usize;
        if rep != rank {
            result.kernel_time[rank] = result.kernel_time[rep].clone();
        }
    }
    for (gpu, &rep) in map.gpu_rep.iter().enumerate() {
        let rep = rep as usize;
        if rep != gpu {
            result.traffic.copy_gpu(rep, gpu);
            result.throttle_ratio[gpu] = result.throttle_ratio[rep];
            result.thermal_throttle_ratio[gpu] = result.thermal_throttle_ratio[rep];
            result.occupancy[gpu] = result.occupancy[rep].clone();
            if opts.expand_telemetry {
                result.telemetry.copy_gpu(rep, gpu);
            }
        }
    }
    // The folded run integrated one replica's worth of power; every
    // replica draws the same, so the cluster total is a clean multiple.
    let d = f64::from(map.multiplicity);
    result.energy_per_step_j *= d;
    result.tokens_per_joule /= d;
    result.energy_wasted_j *= d;
}

/// Lower and simulate a training job, folding over data-parallel replicas
/// whenever the configuration and placement allow it, and falling back to
/// the ordinary unfolded engine (same results, more work) when they don't.
/// The returned [`FoldReport`] says which path ran and why.
///
/// # Errors
///
/// Propagates lowering errors (as [`SimError::InvalidTrace`]) and simulator
/// errors; never errors merely because folding was impossible.
#[allow(clippy::too_many_arguments)]
pub fn simulate_train_folded(
    cluster: &Cluster,
    placement: &Placement,
    job: &TrainJob,
    spec: &ParallelismSpec,
    schedule: PipelineSchedule,
    partition: &StagePartition,
    cfg: SimConfig,
    opts: &FoldOptions,
) -> Result<(SimResult, FoldReport), SimError> {
    let hints = DeviceHints::for_spec(cluster.gpu());
    let reason = split_reason(&cfg, None).or_else(|| {
        detect(cluster, placement, spec).err().map(|e| match e {
            SimError::FoldUnsupported(s) => s,
            other => other.to_string(),
        })
    });
    match reason {
        None => {
            let folded =
                lower_train_folded(job, spec, schedule, partition, &hints).map_err(trace_err)?;
            let multiplicity = folded.multiplicity;
            let (result, stats) = run_folded(cluster, placement, &folded, spec, cfg, None, opts)?;
            Ok((
                result,
                FoldReport {
                    folded: true,
                    multiplicity,
                    reason: None,
                    stats,
                },
            ))
        }
        Some(reason) => {
            let lowered = lower_train(job, spec, schedule, partition, &hints).map_err(trace_err)?;
            let (result, stats) =
                Simulator::new(cluster, placement, &lowered.trace, cfg)?.run_stats()?;
            Ok((
                result,
                FoldReport {
                    folded: false,
                    multiplicity: 1,
                    reason: Some(reason),
                    stats,
                },
            ))
        }
    }
}

fn trace_err(e: TraceError) -> SimError {
    SimError::InvalidTrace(vec![e.to_string()])
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;
    use charllm_models::presets as models;

    fn spec(tp: usize, pp: usize, world: usize) -> ParallelismSpec {
        ParallelismSpec::infer_dp(tp, pp, 1, world, false).unwrap()
    }

    #[test]
    fn identity_placement_is_congruent() {
        let cluster = presets::hgx_h100_with_nodes(8); // 64 GPUs
        let s = spec(8, 2, 64); // dp = 4, one node per (pp, dp) cell
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        let map = detect(&cluster, &placement, &s).unwrap();
        assert_eq!(map.multiplicity, 4);
        assert_eq!(map.active_ranks.len(), 16);
        assert_eq!(map.active_nodes.len(), 2);
        // Representatives map to themselves.
        for &r in &map.active_ranks {
            assert_eq!(map.rank_rep[r as usize], r);
        }
        // Phantom GPUs map onto active nodes.
        let active: std::collections::BTreeSet<u32> = map.active_nodes.iter().copied().collect();
        for (g, &rep) in map.gpu_rep.iter().enumerate() {
            assert_eq!(
                cluster.slot_of(GpuId(g as u32)),
                cluster.slot_of(GpuId(rep))
            );
            assert!(active.contains(&(cluster.node_of(GpuId(rep)).index() as u32)));
        }
    }

    #[test]
    fn dp1_and_mixed_nodes_are_rejected() {
        let cluster = presets::hgx_h100_with_nodes(4);
        let s = spec(8, 4, 32); // dp = 1
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        assert!(matches!(
            detect(&cluster, &placement, &s),
            Err(SimError::FoldUnsupported(_))
        ));

        // tp4 on 8-GPU nodes: two dp values share each node.
        let s = spec(4, 2, 32); // dp = 4
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        let err = detect(&cluster, &placement, &s).unwrap_err();
        assert!(err.to_string().contains("replicas"), "{err}");
    }

    #[test]
    fn uncovered_nodes_are_rejected() {
        let cluster = presets::hgx_h100_with_nodes(8);
        let s = spec(8, 2, 32); // dp = 2, uses 4 of 8 nodes
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        let err = detect(&cluster, &placement, &s).unwrap_err();
        assert!(err.to_string().contains("no ranks"), "{err}");
    }

    #[test]
    fn split_reasons_cover_config_and_faults() {
        let mut cfg = SimConfig::fast();
        cfg.uniform_variability = true;
        assert_eq!(split_reason(&cfg, None), None);
        assert_eq!(split_reason(&cfg, Some(&FaultPlan::none())), None);
        cfg.node_power_cap = Some((0, 5000.0));
        assert!(split_reason(&cfg, None).is_some());
        cfg.node_power_cap = None;
        cfg.uniform_variability = false;
        assert!(split_reason(&cfg, None).is_some());
    }

    #[test]
    fn folded_run_matches_unfolded_throughput() {
        let cluster = presets::hgx_h100_with_nodes(8);
        let s = spec(8, 2, 64); // dp = 4
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
        let partition = StagePartition::even(job.arch.num_layers, s.pp).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.uniform_variability = true;

        let (folded, report) = simulate_train_folded(
            &cluster,
            &placement,
            &job,
            &s,
            PipelineSchedule::OneFOneB,
            &partition,
            cfg,
            &FoldOptions::default(),
        )
        .unwrap();
        assert!(report.folded, "{:?}", report.reason);
        assert_eq!(report.multiplicity, 4);

        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &s, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let unfolded = Simulator::new(&cluster, &placement, &lowered.trace, cfg)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(folded.step_time_s, unfolded.step_time_s);
        assert_eq!(folded.tokens_per_s, unfolded.tokens_per_s);
        assert_eq!(folded.kernel_time, unfolded.kernel_time);
        let rel = (folded.energy_per_step_j - unfolded.energy_per_step_j).abs()
            / unfolded.energy_per_step_j;
        assert!(rel < 1e-12, "energy rel err {rel}");
    }

    #[test]
    fn fallback_runs_unfolded_with_reason() {
        let cluster = presets::hgx_h100_with_nodes(4);
        let s = spec(8, 4, 32); // dp = 1
        let placement = Placement::identity(&cluster, s.world()).unwrap();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
        let partition = StagePartition::even(job.arch.num_layers, s.pp).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.uniform_variability = true;
        let (_, report) = simulate_train_folded(
            &cluster,
            &placement,
            &job,
            &s,
            PipelineSchedule::OneFOneB,
            &partition,
            cfg,
            &FoldOptions::default(),
        )
        .unwrap();
        assert!(!report.folded);
        assert!(report.reason.unwrap().contains("dp = 1"));
    }
}
