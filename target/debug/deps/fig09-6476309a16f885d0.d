/root/repo/target/debug/deps/fig09-6476309a16f885d0.d: crates/bench/benches/fig09.rs Cargo.toml

/root/repo/target/debug/deps/libfig09-6476309a16f885d0.rmeta: crates/bench/benches/fig09.rs Cargo.toml

crates/bench/benches/fig09.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
