//! Facade error type.

use std::fmt;

/// Any error from the underlying stack, unified for experiment code.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// Hardware topology error.
    Hw(charllm_hw::HwError),
    /// Workload model error.
    Model(charllm_models::ModelError),
    /// Parallelism configuration error.
    Parallel(charllm_parallel::ParallelError),
    /// Trace lowering error.
    Trace(charllm_trace::lower::TraceError),
    /// Simulation error.
    Sim(charllm_sim::SimError),
    /// Experiment was under-specified.
    Incomplete(String),
    /// I/O error (persistent cache tier, server sockets).
    Io(std::io::Error),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Hw(e) => write!(f, "{e}"),
            CoreError::Model(e) => write!(f, "{e}"),
            CoreError::Parallel(e) => write!(f, "{e}"),
            CoreError::Trace(e) => write!(f, "{e}"),
            CoreError::Sim(e) => write!(f, "{e}"),
            CoreError::Incomplete(msg) => write!(f, "incomplete experiment: {msg}"),
            CoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<charllm_hw::HwError> for CoreError {
    fn from(e: charllm_hw::HwError) -> Self {
        CoreError::Hw(e)
    }
}

impl From<charllm_models::ModelError> for CoreError {
    fn from(e: charllm_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<charllm_parallel::ParallelError> for CoreError {
    fn from(e: charllm_parallel::ParallelError) -> Self {
        CoreError::Parallel(e)
    }
}

impl From<charllm_trace::lower::TraceError> for CoreError {
    fn from(e: charllm_trace::lower::TraceError) -> Self {
        CoreError::Trace(e)
    }
}

impl From<charllm_sim::SimError> for CoreError {
    fn from(e: charllm_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_passthrough() {
        let e = CoreError::Incomplete("no cluster".into());
        assert!(e.to_string().contains("no cluster"));
        let e: CoreError = charllm_hw::HwError::EmptyCluster.into();
        assert!(e.to_string().contains("cluster"));
    }
}
