//! The work-progress simulation engine.

use std::collections::HashMap;

use charllm_hw::{Cluster, GpuId, LinkId};
use charllm_net::lower_collective;
use charllm_parallel::Placement;
use charllm_telemetry::{GpuSample, TelemetryStore};
use charllm_thermal::{GovernorConfig, GpuThermal, GpuVariability, ThermalSpec};
use charllm_trace::{ExecutionTrace, KernelClass, Step};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::result::{KernelBreakdown, OccupancyStats, SimResult, TrafficMatrix};

/// What a rank is currently doing.
#[derive(Debug, Clone, Copy, PartialEq)]
enum RankMode {
    /// Ready to process its next step.
    Ready,
    /// Running a compute kernel.
    Computing {
        kind: charllm_trace::ComputeKind,
        remaining_flops: f64,
    },
    /// Blocked on a collective.
    Waiting { coll: u32 },
    /// All iterations done.
    Finished,
}

#[derive(Debug)]
struct RankState {
    gpu: GpuId,
    step_idx: usize,
    iteration: usize,
    mode: RankMode,
}

#[derive(Debug, Default)]
struct CollState {
    arrived: u32,
    launched: bool,
    flows_remaining: u32,
    complete: bool,
}

#[derive(Debug)]
struct FlowState {
    work_remaining: f64,
    payload_ratio: f64,
    route: Vec<LinkId>,
    src: GpuId,
    dst: GpuId,
    measured: bool,
    coll_key: (u32, u32),
}

/// Executes a trace on a cluster with thermal/DVFS feedback.
///
/// ```no_run
/// use charllm_sim::{SimConfig, Simulator};
/// # fn demo(cluster: charllm_hw::Cluster, placement: charllm_parallel::Placement,
/// #         trace: charllm_trace::ExecutionTrace) -> Result<(), charllm_sim::SimError> {
/// let result = Simulator::new(&cluster, &placement, &trace, SimConfig::default())?.run()?;
/// println!("step time {:.2}s, {:.0} tokens/s", result.step_time_s, result.tokens_per_s);
/// # Ok(())
/// # }
/// ```
pub struct Simulator<'a> {
    cluster: &'a Cluster,
    trace: &'a ExecutionTrace,
    cfg: SimConfig,

    ranks: Vec<RankState>,
    colls: HashMap<(u32, u32), CollState>,
    flows: Vec<FlowState>,
    /// Number of active flows touching each GPU (as src or dst).
    gpu_flow_count: Vec<u32>,
    /// Scratch: flow load per link.
    link_load: Vec<u32>,

    thermals: Vec<GpuThermal>,
    freq_ratio: Vec<f64>,
    last_power_w: Vec<f64>,

    /// Time-weighted activity accumulation since the last control boundary.
    activity_acc: Vec<f64>,
    util_acc: Vec<f64>,
    pcie_window_bytes: Vec<f64>,

    kernel_time: Vec<KernelBreakdown>,
    traffic: TrafficMatrix,
    occ_acc: Vec<(f64, f64, f64)>,
    telemetry: TelemetryStore,

    t: f64,
    next_control: f64,
    next_sample: f64,
    busy_time_denominator: f64,
    iteration_complete_at: Vec<f64>,
    measure_start: Option<f64>,
    energy_measured_j: f64,
}

impl<'a> Simulator<'a> {
    /// Build a simulator after validating trace/placement/cluster agreement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidTrace`] or [`SimError::PlacementMismatch`].
    pub fn new(
        cluster: &'a Cluster,
        placement: &Placement,
        trace: &'a ExecutionTrace,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        let problems = trace.validate();
        if !problems.is_empty() {
            return Err(SimError::InvalidTrace(problems));
        }
        if placement.world() < trace.world() {
            return Err(SimError::PlacementMismatch {
                trace_world: trace.world(),
                placement_world: placement.world(),
            });
        }
        let num_gpus = cluster.num_gpus();
        let ranks: Vec<RankState> = (0..trace.world())
            .map(|r| RankState {
                gpu: placement.gpu(r),
                step_idx: 0,
                iteration: 0,
                mode: RankMode::Ready,
            })
            .collect();

        let airflow = &cluster.node_layout().airflow;
        let mut thermals = Vec::with_capacity(num_gpus);
        for gpu in cluster.gpus() {
            let spec = cluster.gpu().clone();
            let variability = GpuVariability::for_gpu(gpu, cfg.seed);
            let slot = cluster.slot_of(gpu);
            let mut governor_cfg = GovernorConfig::for_spec(&spec);
            if let Some((node, cap_w)) = cfg.node_power_cap {
                if cluster.node_of(gpu) == charllm_hw::NodeId(node) {
                    governor_cfg.power_cap_w = cap_w;
                }
            }
            let mut thermal = GpuThermal::new(
                spec.clone(),
                ThermalSpec::for_model(spec.model),
                governor_cfg,
                variability,
                airflow.ambient_c,
            );
            if cfg.prewarm && cfg.thermal_feedback {
                // Settle near a loaded operating point, including the
                // inlet preheat a busy node would produce.
                let node_power = spec.tdp_w * 0.85;
                let powers = vec![node_power; airflow.num_slots()];
                let inlet = airflow.inlet_temp_c(slot, &powers);
                for _ in 0..400 {
                    thermal.step(0.75, inlet, 1.0);
                }
            }
            thermals.push(thermal);
        }
        let freq_ratio = thermals.iter().map(GpuThermal::freq_ratio).collect();
        let last_power_w = thermals.iter().map(GpuThermal::power_w).collect();

        Ok(Simulator {
            cluster,
            trace,
            ranks,
            colls: HashMap::new(),
            flows: Vec::new(),
            gpu_flow_count: vec![0; num_gpus],
            link_load: vec![0; cluster.num_links()],
            thermals,
            freq_ratio,
            last_power_w,
            activity_acc: vec![0.0; num_gpus],
            util_acc: vec![0.0; num_gpus],
            pcie_window_bytes: vec![0.0; num_gpus],
            kernel_time: vec![KernelBreakdown::default(); trace.world()],
            traffic: TrafficMatrix::new(num_gpus),
            occ_acc: vec![(0.0, 0.0, 0.0); num_gpus],
            telemetry: TelemetryStore::new(num_gpus),
            t: 0.0,
            next_control: cfg.control_period_s,
            next_sample: cfg.sample_period_s,
            busy_time_denominator: 0.0,
            iteration_complete_at: vec![0.0; cfg.iterations],
            measure_start: if cfg.warmup_iterations == 0 {
                Some(0.0)
            } else {
                None
            },
            energy_measured_j: 0.0,
            cfg,
        })
    }

    /// Run to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no progress is possible and
    /// [`SimError::Timeout`] when the simulated-time cap is hit.
    pub fn run(mut self) -> Result<SimResult, SimError> {
        loop {
            let progressed = self.advance_ready_ranks();

            if self.ranks.iter().all(|r| r.mode == RankMode::Finished) {
                break;
            }

            let dt = match self.next_dt() {
                Some(dt) => dt,
                None => {
                    if progressed {
                        continue;
                    }
                    return Err(SimError::Deadlock {
                        at_s: self.t,
                        detail: self.blocked_summary(),
                    });
                }
            };

            self.advance(dt);

            if self.t >= self.next_control - 1e-12 {
                self.control_update();
                self.next_control += self.cfg.control_period_s;
            }
            if self.t > self.cfg.max_sim_time_s {
                return Err(SimError::Timeout {
                    cap_s: self.cfg.max_sim_time_s,
                });
            }
        }
        Ok(self.finish())
    }

    /// Process instantaneous steps for every rank that can move.
    fn advance_ready_ranks(&mut self) -> bool {
        let mut progressed = false;
        for rank in 0..self.ranks.len() {
            progressed |= self.advance_rank(rank);
        }
        progressed
    }

    fn advance_rank(&mut self, rank: usize) -> bool {
        let mut progressed = false;
        loop {
            match self.ranks[rank].mode {
                RankMode::Computing { .. } | RankMode::Finished => return progressed,
                RankMode::Waiting { coll } => {
                    let key = (self.ranks[rank].iteration as u32, coll);
                    let done = self.colls.get(&key).is_some_and(|c| c.complete);
                    if !done {
                        return progressed;
                    }
                    self.ranks[rank].mode = RankMode::Ready;
                    progressed = true;
                }
                RankMode::Ready => {
                    let steps = self.trace.steps(rank);
                    if self.ranks[rank].step_idx >= steps.len() {
                        // Iteration boundary.
                        let iter = self.ranks[rank].iteration;
                        self.iteration_complete_at[iter] =
                            self.iteration_complete_at[iter].max(self.t);
                        self.ranks[rank].iteration += 1;
                        self.ranks[rank].step_idx = 0;
                        progressed = true;
                        if self.ranks[rank].iteration >= self.cfg.iterations {
                            self.ranks[rank].mode = RankMode::Finished;
                            continue;
                        }
                        if self.measure_start.is_none()
                            && self
                                .ranks
                                .iter()
                                .all(|r| r.iteration >= self.cfg.warmup_iterations)
                        {
                            self.measure_start = Some(self.t);
                        }
                        continue;
                    }
                    let step = steps[self.ranks[rank].step_idx];
                    self.ranks[rank].step_idx += 1;
                    progressed = true;
                    match step {
                        Step::Compute { kind, flops } => {
                            self.ranks[rank].mode = RankMode::Computing {
                                kind,
                                remaining_flops: flops,
                            };
                            return progressed;
                        }
                        Step::CollStart { coll } => {
                            self.arrive(rank, coll.0);
                        }
                        Step::CollWait { coll } => {
                            let key = (self.ranks[rank].iteration as u32, coll.0);
                            let done = self.colls.get(&key).is_some_and(|c| c.complete);
                            if !done {
                                self.ranks[rank].mode = RankMode::Waiting { coll: coll.0 };
                                return progressed;
                            }
                        }
                    }
                }
            }
        }
    }

    /// A rank arrives at a collective; launch its flows when ready.
    fn arrive(&mut self, rank: usize, coll: u32) {
        let iter = self.ranks[rank].iteration as u32;
        let key = (iter, coll);
        let inst = self
            .trace
            .collective(charllm_trace::task::CollectiveId(coll));
        let state = self.colls.entry(key).or_default();
        state.arrived += 1;
        let ready = if inst.eager_p2p {
            true
        } else {
            state.arrived as usize == inst.group.len()
        };
        if !ready || state.launched {
            return;
        }
        state.launched = true;
        let gpus: Vec<GpuId> = inst.group.iter().map(|&r| self.ranks[r].gpu).collect();
        let plan = lower_collective(
            inst.kind,
            inst.bytes_per_rank,
            &gpus,
            self.cluster,
            inst.chunking,
        )
        .expect("placement-validated gpus");
        let measured = self.ranks[rank].iteration >= self.cfg.warmup_iterations;
        let mut active = 0u32;
        for flow in plan.flows {
            let route = self.cluster.route(flow.src, flow.dst).expect("valid route");
            if route.is_empty() {
                continue;
            }
            let work = flow.work_bytes(self.cluster, &route);
            if work <= 0.0 {
                continue;
            }
            active += 1;
            self.gpu_flow_count[flow.src.index()] += 1;
            self.gpu_flow_count[flow.dst.index()] += 1;
            self.flows.push(FlowState {
                work_remaining: work,
                payload_ratio: flow.bytes as f64 / work,
                route,
                src: flow.src,
                dst: flow.dst,
                measured,
                coll_key: key,
            });
        }
        let state = self.colls.get_mut(&key).expect("just inserted");
        state.flows_remaining = active;
        if active == 0 {
            state.complete = true;
        }
    }

    /// Current per-flow rate in bytes/s (fair share of the slowest link).
    fn flow_rate(&self, flow: &FlowState) -> f64 {
        flow.route
            .iter()
            .map(|id| {
                let load = self.link_load[id.index()].max(1) as f64;
                self.cluster.link(*id).bw_gbps * 1e9 / load
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn compute_rate(&self, rank: usize, kind: charllm_trace::ComputeKind) -> f64 {
        let gpu = self.ranks[rank].gpu.index();
        let mut rate = self.cluster.gpu().peak_fp16_flops * kind.mfu() * self.freq_ratio[gpu];
        if self.gpu_flow_count[gpu] > 0 {
            rate /= self.cfg.overlap_slowdown;
        }
        rate.max(1.0)
    }

    /// Choose the next time step: the earliest completion, capped by the
    /// control period. `None` when nothing is in flight.
    fn next_dt(&mut self) -> Option<f64> {
        // Refresh link loads.
        for l in &mut self.link_load {
            *l = 0;
        }
        for flow in &self.flows {
            for id in &flow.route {
                self.link_load[id.index()] += 1;
            }
        }
        let mut dt = self.next_control - self.t;
        let mut any = false;
        for (rank, state) in self.ranks.iter().enumerate() {
            if let RankMode::Computing {
                kind,
                remaining_flops,
            } = state.mode
            {
                any = true;
                let rate = self.compute_rate(rank, kind);
                dt = dt.min(remaining_flops / rate);
            }
        }
        for flow in &self.flows {
            any = true;
            dt = dt.min(flow.work_remaining / self.flow_rate(flow));
        }
        if !any {
            return None;
        }
        Some(dt.max(1e-9))
    }

    /// Advance all in-flight work by `dt` and process completions.
    fn advance(&mut self, dt: f64) {
        // Compute progress + busy accounting.
        for rank in 0..self.ranks.len() {
            let gpu = self.ranks[rank].gpu.index();
            let measured = self.ranks[rank].iteration >= self.cfg.warmup_iterations;
            match self.ranks[rank].mode {
                RankMode::Computing {
                    kind,
                    remaining_flops,
                } => {
                    let rate = self.compute_rate(rank, kind);
                    let left = remaining_flops - rate * dt;
                    if measured {
                        self.kernel_time[rank].add(KernelClass::of_compute(kind), dt);
                    }
                    let act = kind.activity()
                        + if self.gpu_flow_count[gpu] > 0 {
                            0.25
                        } else {
                            0.0
                        };
                    self.activity_acc[gpu] += act.min(1.0) * dt;
                    self.util_acc[gpu] += dt;
                    let (w, tb) = kernel_pressure(kind);
                    let comm = if self.gpu_flow_count[gpu] > 0 {
                        1.0
                    } else {
                        0.0
                    };
                    let occ = &mut self.occ_acc[gpu];
                    occ.0 += dt;
                    occ.1 += (w + 0.2 * comm) * dt;
                    occ.2 += (tb + 0.1 * comm) * dt;
                    if left <= 1.0 {
                        self.ranks[rank].mode = RankMode::Ready;
                    } else {
                        self.ranks[rank].mode = RankMode::Computing {
                            kind,
                            remaining_flops: left,
                        };
                    }
                }
                RankMode::Waiting { coll } => {
                    let inst = self
                        .trace
                        .collective(charllm_trace::task::CollectiveId(coll));
                    if measured {
                        self.kernel_time[rank].add(inst.class(), dt);
                    }
                    // Communication kernels keep the SMs occupied at low
                    // pressure (the paper's "prolonged communication
                    // kernels" sustaining occupancy).
                    self.activity_acc[gpu] += 0.38 * dt;
                    self.util_acc[gpu] += dt;
                    let occ = &mut self.occ_acc[gpu];
                    occ.0 += dt;
                    occ.1 += 0.2 * dt;
                    occ.2 += 0.1 * dt;
                }
                _ => {
                    // Idle or finished: eager-send flows may still be
                    // flying; count comm presence lightly.
                    if self.gpu_flow_count[gpu] > 0 {
                        self.activity_acc[gpu] += 0.38 * dt;
                    }
                }
            }
        }

        // Flow progress + traffic accounting.
        let mut i = 0;
        while i < self.flows.len() {
            let rate = self.flow_rate(&self.flows[i]);
            let actually = (rate * dt).min(self.flows[i].work_remaining);
            self.flows[i].work_remaining -= actually;
            let payload = actually * self.flows[i].payload_ratio;
            let src = self.flows[i].src;
            let dst = self.flows[i].dst;
            let measured = self.flows[i].measured;
            let done = self.flows[i].work_remaining <= 1.0;
            let coll_key = self.flows[i].coll_key;
            // Charge GPU-owned links for telemetry + traffic matrices.
            for k in 0..self.flows[i].route.len() {
                let id = self.flows[i].route[k];
                let class = self.cluster.link(id).class;
                for &gpu in &[src, dst] {
                    let owns = match class {
                        charllm_hw::LinkClass::Pcie => self.cluster.pcie(gpu) == id,
                        charllm_hw::LinkClass::NvLink | charllm_hw::LinkClass::XgmiPort => {
                            self.cluster.fabric_port(gpu) == id
                        }
                        charllm_hw::LinkClass::XgmiPackage => {
                            // Package bus: charge both endpoints.
                            self.cluster.same_package(src, dst) && (gpu == src || gpu == dst)
                        }
                        charllm_hw::LinkClass::Nic => false,
                    };
                    if owns {
                        if measured {
                            self.traffic.add(gpu.index(), class, payload);
                        }
                        if class == charllm_hw::LinkClass::Pcie {
                            self.pcie_window_bytes[gpu.index()] += payload;
                        }
                    }
                }
            }
            if done {
                self.gpu_flow_count[src.index()] -= 1;
                self.gpu_flow_count[dst.index()] -= 1;
                let state = self.colls.get_mut(&coll_key).expect("flow has state");
                state.flows_remaining -= 1;
                if state.flows_remaining == 0 {
                    state.complete = true;
                }
                self.flows.swap_remove(i);
            } else {
                i += 1;
            }
        }

        self.t += dt;
        self.busy_time_denominator += dt;
    }

    /// Thermal/governor update + telemetry sampling at a control boundary.
    fn control_update(&mut self) {
        let period = self.cfg.control_period_s;
        let airflow = &self.cluster.node_layout().airflow;
        let slots = airflow.num_slots();
        let measuring = self.measure_start.is_some();

        for node in 0..self.cluster.num_nodes() {
            let node_powers: Vec<f64> = (0..slots)
                .map(|s| {
                    let gpu = self
                        .cluster
                        .gpu_at(charllm_hw::NodeId(node as u32), s)
                        .index();
                    self.last_power_w[gpu]
                })
                .collect();
            for slot in 0..slots {
                let gpu_id = self.cluster.gpu_at(charllm_hw::NodeId(node as u32), slot);
                let gpu = gpu_id.index();
                let activity = (self.activity_acc[gpu] / period).min(1.0);
                let inlet = airflow.inlet_temp_c(slot, &node_powers);
                let sample = self.thermals[gpu].step(activity, inlet, period);
                // With feedback disabled the physics still run (for power
                // and temperature telemetry) but clocks stay pinned.
                self.freq_ratio[gpu] = if self.cfg.thermal_feedback {
                    self.thermals[gpu].freq_ratio()
                } else {
                    1.0
                };
                self.last_power_w[gpu] = sample.power_w;
                if measuring {
                    self.energy_measured_j += sample.power_w * period;
                }
                self.activity_acc[gpu] = 0.0;
            }
        }

        if self.t >= self.next_sample - 1e-12 {
            for gpu in 0..self.cluster.num_gpus() {
                let window = self.cfg.sample_period_s;
                let sample = GpuSample {
                    power_w: self.last_power_w[gpu],
                    temp_c: self.thermals[gpu].temp_c(),
                    freq_mhz: self.thermals[gpu].freq_mhz(),
                    util: (self.util_acc[gpu] / window).min(1.0),
                    pcie_gbps: self.pcie_window_bytes[gpu] / window / 1e9,
                };
                self.telemetry.record(gpu, self.t, sample);
                self.util_acc[gpu] = 0.0;
                self.pcie_window_bytes[gpu] = 0.0;
            }
            self.next_sample += self.cfg.sample_period_s;
        }
    }

    fn blocked_summary(&self) -> String {
        let blocked: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .filter_map(|(r, s)| match s.mode {
                RankMode::Waiting { coll } => {
                    Some(format!("rank {r} waits coll {coll} (iter {})", s.iteration))
                }
                _ => None,
            })
            .take(8)
            .collect();
        blocked.join("; ")
    }

    fn finish(self) -> SimResult {
        let cfg = &self.cfg;
        let mut iteration_times = Vec::with_capacity(cfg.iterations);
        let mut prev = 0.0;
        for &t in &self.iteration_complete_at {
            iteration_times.push(t - prev);
            prev = t;
        }
        let measured_window = self.iteration_complete_at.last().copied().unwrap_or(0.0)
            - self.measure_start.unwrap_or(0.0);
        let measured_iters = cfg.measured_iterations() as f64;
        let step_time = if measured_window > 0.0 {
            measured_window / measured_iters
        } else {
            iteration_times.iter().sum::<f64>() / iteration_times.len().max(1) as f64
        };
        let tokens_per_iter = self.trace.meta().tokens_per_iteration as f64;
        let tokens_per_s = if step_time > 0.0 {
            tokens_per_iter / step_time
        } else {
            0.0
        };
        let energy_per_step = self.energy_measured_j / measured_iters;
        let tokens_per_joule = if energy_per_step > 0.0 {
            tokens_per_iter / energy_per_step
        } else {
            0.0
        };

        let occupancy = self
            .occ_acc
            .iter()
            .map(|(busy, warps, tbs)| {
                let total = self.t.max(1e-9);
                OccupancyStats {
                    occupancy: busy / total,
                    warps: warps / total,
                    threadblocks: tbs / total,
                }
            })
            .collect();

        SimResult {
            step_time_s: step_time,
            iteration_times_s: iteration_times,
            tokens_per_s,
            energy_per_step_j: energy_per_step,
            tokens_per_joule,
            kernel_time: self
                .kernel_time
                .iter()
                .map(|k| k.scaled(1.0 / measured_iters))
                .collect(),
            traffic: self.traffic,
            telemetry: self.telemetry,
            throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::throttle_ratio)
                .collect(),
            thermal_throttle_ratio: self
                .thermals
                .iter()
                .map(GpuThermal::thermal_throttle_ratio)
                .collect(),
            occupancy,
            sim_time_s: self.t,
        }
    }
}

/// Warp/threadblock pressure proxies per kernel class.
fn kernel_pressure(kind: charllm_trace::ComputeKind) -> (f64, f64) {
    use charllm_trace::ComputeKind as K;
    match kind {
        K::Gemm => (0.85, 0.9),
        K::MoeGemm => (0.9, 1.0),
        K::Attention | K::Recompute => (0.7, 0.75),
        K::Router | K::Embedding | K::Optimizer => (0.5, 0.4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::{presets, GpuModel, NodeLayout};
    use charllm_models::{presets as models, TrainJob};
    use charllm_net::ChunkingPolicy;
    use charllm_net::CollectiveKind;
    use charllm_parallel::{ParallelismSpec, PipelineSchedule, StagePartition};
    use charllm_trace::builder::{CollKey, TraceBuilder};
    use charllm_trace::lower::{lower_train, DeviceHints};
    use charllm_trace::trace::TraceMeta;
    use charllm_trace::ComputeKind;

    fn one_node_cluster() -> Cluster {
        Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1).unwrap()
    }

    fn run_trace(cluster: &Cluster, trace: &ExecutionTrace, cfg: SimConfig) -> SimResult {
        let placement = Placement::identity(cluster, trace.world()).unwrap();
        Simulator::new(cluster, &placement, trace, cfg)
            .unwrap()
            .run()
            .unwrap()
    }

    #[test]
    fn pure_compute_matches_analytic_time() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(1);
        // 1e14 FLOPs of GEMM at 1 PFLOP/s * 0.55 MFU = ~0.1818 s.
        b.compute(0, ComputeKind::Gemm, 1e14);
        let trace = b.build(TraceMeta {
            tokens_per_iteration: 1000,
            ..Default::default()
        });
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false; // pinned clocks for the analytic check
        let r = run_trace(&cluster, &trace, cfg);
        let expect = 1e14 / (1e15 * 0.55);
        assert!(
            (r.step_time_s - expect).abs() / expect < 0.05,
            "step {} vs expected {expect}",
            r.step_time_s
        );
        assert!(r.kernel_time[0].get(KernelClass::Gemm) > 0.0);
    }

    #[test]
    fn blocking_allreduce_synchronizes_stragglers() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        b.compute(0, ComputeKind::Gemm, 1e12); // fast rank
        b.compute(1, ComputeKind::Gemm, 5e13); // slow rank
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            1 << 20,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id);
        b.blocking(1, id);
        let trace = b.build(TraceMeta {
            tokens_per_iteration: 1,
            ..Default::default()
        });
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let r = run_trace(&cluster, &trace, cfg);
        // The fast rank spends most of the step waiting in AllReduce.
        let fast_wait = r.kernel_time[0].get(KernelClass::AllReduce);
        let slow_wait = r.kernel_time[1].get(KernelClass::AllReduce);
        assert!(
            fast_wait > 10.0 * slow_wait.max(1e-6),
            "fast {fast_wait} slow {slow_wait}"
        );
    }

    #[test]
    fn unstarted_collective_deadlocks() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "p2p",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            1 << 20,
            vec![0, 1],
            ChunkingPolicy::Unchunked,
            true,
        );
        // Receiver waits but the sender never starts: rank 0 has no steps.
        b.wait(1, id);
        // Keep the trace structurally valid by having rank 0 send in a
        // LATER iteration than rank 1 expects... simplest: sender starts
        // after an impossible wait on a second collective.
        let id2 = b.collective(
            CollKey {
                site: "p2p2",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::SendRecv,
            1 << 20,
            vec![1, 0],
            ChunkingPolicy::Unchunked,
            true,
        );
        b.wait(0, id2); // rank 0 waits for rank 1...
        b.start(0, id);
        b.start(1, id2); // ...but rank 1 only sends after its own wait
                         // Reorder rank 1: wait(id) then start(id2) => classic cycle.
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        let res = Simulator::new(&cluster, &placement, &trace, SimConfig::fast())
            .unwrap()
            .run();
        assert!(matches!(res, Err(SimError::Deadlock { .. })), "{res:?}");
    }

    #[test]
    fn lowered_training_step_runs_end_to_end() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let r = run_trace(&cluster, &lowered.trace, SimConfig::fast());
        assert!(r.step_time_s > 0.0);
        assert!(r.tokens_per_s > 0.0);
        assert!(r.energy_per_step_j > 0.0);
        assert!(r.tokens_per_joule > 0.0);
        // TP AllReduce traffic must appear on NVLink.
        let nv: f64 = (0..8).map(|g| r.traffic.fabric(g)).sum();
        assert!(nv > 0.0, "expected NVLink traffic");
        // All ranks spent time in GEMMs.
        for rank in 0..8 {
            assert!(
                r.kernel_time[rank].get(KernelClass::Gemm) > 0.0,
                "rank {rank}"
            );
        }
        // Telemetry got sampled.
        assert!(r.telemetry.power(0).len() > 2);
        assert!(r.telemetry.mean_power_w() > 100.0);
    }

    #[test]
    fn pinned_clocks_run_faster_or_equal() {
        let cluster = one_node_cluster();
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let with = run_trace(&cluster, &lowered.trace, SimConfig::fast());
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let without = run_trace(&cluster, &lowered.trace, cfg);
        assert!(without.step_time_s <= with.step_time_s * 1.02);
    }

    #[test]
    fn inter_node_config_slower_than_intra_node() {
        // Same 8-rank workload: one node vs spread over 8 nodes (1 GPU each
        // communicating over the 100G NIC).
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
        let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
        let partition = StagePartition::even(40, 2).unwrap();

        let intra = one_node_cluster();
        let hints = DeviceHints::for_spec(intra.gpu());
        let lowered =
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
        let mut cfg = SimConfig::fast();
        cfg.thermal_feedback = false;
        let fast = run_trace(&intra, &lowered.trace, cfg);

        let spread = presets::single_gpu_per_node_cluster(8);
        let slow = run_trace(&spread, &lowered.trace, cfg);
        assert!(
            slow.step_time_s > 1.5 * fast.step_time_s,
            "inter-node {} vs intra-node {}",
            slow.step_time_s,
            fast.step_time_s
        );
    }

    #[test]
    fn placement_mismatch_rejected() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(4);
        b.compute(0, ComputeKind::Gemm, 1.0);
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        assert!(matches!(
            Simulator::new(&cluster, &placement, &trace, SimConfig::fast()),
            Err(SimError::PlacementMismatch { .. })
        ));
    }

    #[test]
    fn invalid_trace_rejected() {
        let cluster = one_node_cluster();
        let mut b = TraceBuilder::new(2);
        let id = b.collective(
            CollKey {
                site: "ar",
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            CollectiveKind::AllReduce,
            8,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        b.blocking(0, id); // rank 1 never arrives -> invalid
        let trace = b.build(TraceMeta::default());
        let placement = Placement::identity(&cluster, 2).unwrap();
        assert!(matches!(
            Simulator::new(&cluster, &placement, &trace, SimConfig::fast()),
            Err(SimError::InvalidTrace(_))
        ));
    }
}
