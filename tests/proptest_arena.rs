//! Property-based tests for the flow arena's generation-stamped slot reuse.
//!
//! The engine's calendar holds lazily-deleted entries keyed by
//! `(slot, gen)`. Soundness rests on one invariant: **a recycled slot never
//! revives a stale reference** — every generation a slot hands out must be
//! distinct from every generation it has handed out before, no matter how
//! allocations and frees interleave. These properties drive `FlowArena`
//! through arbitrary alloc/free schedules and check the stamp discipline
//! plus the liveness bookkeeping the engine's retire path depends on.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use charllm_sim::FlowArena;

/// A random interleaving of allocations and frees. `true` allocates;
/// `false` frees the oldest live slot (when one exists).
fn arb_schedule() -> impl Strategy<Value = Vec<bool>> {
    collection::vec(any::<bool>(), 1..200)
}

proptest! {
    /// Every (slot, gen) pair observed at allocation time is globally
    /// unique across the whole schedule: a stale calendar entry recorded
    /// under an old generation can never match a reused slot.
    #[test]
    fn reused_slots_never_repeat_a_generation(schedule in arb_schedule()) {
        let mut fa = FlowArena::new();
        let mut live: Vec<u32> = Vec::new();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut history: HashMap<u32, Vec<u32>> = HashMap::new();
        for alloc in schedule {
            if alloc {
                let slot = fa.alloc();
                let gen = fa.generation(slot);
                prop_assert!(
                    seen.insert((slot, gen)),
                    "slot {slot} re-issued generation {gen}"
                );
                for &old in history.get(&slot).into_iter().flatten() {
                    prop_assert!(
                        gen != old,
                        "reused slot {slot} matches prior generation {old}"
                    );
                }
                history.entry(slot).or_default().push(gen);
                live.push(slot);
            } else if !live.is_empty() {
                let slot = live.remove(0);
                let before = fa.generation(slot);
                fa.free(slot);
                prop_assert!(
                    fa.generation(slot) != before,
                    "free must invalidate slot {slot}'s generation"
                );
            }
        }
    }

    /// Live-count bookkeeping and slot-reuse accounting stay consistent
    /// under arbitrary schedules: `live()` tracks the schedule exactly, and
    /// the arena only grows when the free list is empty.
    #[test]
    fn live_count_and_reuse_accounting_are_exact(schedule in arb_schedule()) {
        let mut fa = FlowArena::new();
        let mut live: Vec<u32> = Vec::new();
        let mut frees = 0u64;
        let mut allocs = 0u64;
        for alloc in schedule {
            if alloc {
                let slot = fa.alloc();
                allocs += 1;
                prop_assert!((slot as usize) < fa.num_slots());
                live.push(slot);
            } else if !live.is_empty() {
                fa.free(live.pop().unwrap());
                frees += 1;
            }
            prop_assert_eq!(fa.live(), live.len());
        }
        // Every allocation either grew the arena or reused a freed slot.
        prop_assert_eq!(fa.num_slots() as u64 + fa.slot_reuses(), allocs);
        // LIFO reuse can never exceed the number of frees.
        prop_assert!(fa.slot_reuses() <= frees);
    }
}
