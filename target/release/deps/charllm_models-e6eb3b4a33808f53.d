/root/repo/target/release/deps/charllm_models-e6eb3b4a33808f53.d: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

/root/repo/target/release/deps/libcharllm_models-e6eb3b4a33808f53.rlib: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

/root/repo/target/release/deps/libcharllm_models-e6eb3b4a33808f53.rmeta: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

crates/models/src/lib.rs:
crates/models/src/arch.rs:
crates/models/src/error.rs:
crates/models/src/flops.rs:
crates/models/src/job.rs:
crates/models/src/lora.rs:
crates/models/src/memory.rs:
crates/models/src/precision.rs:
crates/models/src/presets.rs:
