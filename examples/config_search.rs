//! Strategy-aware configuration search — the paper's closing
//! recommendation ("strategy-aware, topology-conscious tuning") as a tool:
//! enumerate every feasible parallelism configuration, screen them with the
//! fast analytic estimator, fully simulate the finalists, and rank them.
//!
//! ```sh
//! cargo run --release --example config_search
//! ```

use charllm::prelude::*;
use charllm::search::{search_configs, Objective, SearchOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = hgx_h200_cluster();
    let job = TrainJob::pretrain(mixtral_8x22b())
        .with_global_batch(32)
        .with_recompute(true);
    println!(
        "Searching parallelism configurations for {} on {}...\n",
        job.arch.name,
        cluster.name()
    );

    for (name, objective) in [
        ("throughput", Objective::Throughput),
        ("energy efficiency", Objective::Efficiency),
    ] {
        // workers: 0 = fan the finalist simulations across all cores.
        let opts = SearchOptions {
            objective,
            finalists: 3,
            workers: 0,
            ..Default::default()
        };
        let ranked = search_configs(&job, &cluster, opts)?;
        println!("== ranked by {name} ==");
        for (i, c) in ranked.iter().take(5).enumerate() {
            match &c.report {
                Some(r) => println!(
                    "  {}. {:<14} {:>9.0} tok/s  {:>7.3} tok/J  peak {:>5.1}C  (simulated)",
                    i + 1,
                    c.spec.label(),
                    r.tokens_per_s,
                    r.tokens_per_joule,
                    r.peak_temp_c,
                ),
                None => println!(
                    "  {}. {:<14} {:>9.0} tok/s est.                        (screened)",
                    i + 1,
                    c.spec.label(),
                    c.analytic.tokens_per_s,
                ),
            }
        }
        println!();
    }
    println!(
        "The search localizes expert routing (narrow TP, node-local EP) and\n\
         avoids thermally pathological corners automatically — the co-design\n\
         loop the paper argues for, closed in software."
    );
    Ok(())
}
