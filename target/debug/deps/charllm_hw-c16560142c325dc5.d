/root/repo/target/debug/deps/charllm_hw-c16560142c325dc5.d: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

/root/repo/target/debug/deps/charllm_hw-c16560142c325dc5: crates/hw/src/lib.rs crates/hw/src/airflow.rs crates/hw/src/cluster.rs crates/hw/src/error.rs crates/hw/src/gpu.rs crates/hw/src/link.rs crates/hw/src/node.rs crates/hw/src/presets.rs

crates/hw/src/lib.rs:
crates/hw/src/airflow.rs:
crates/hw/src/cluster.rs:
crates/hw/src/error.rs:
crates/hw/src/gpu.rs:
crates/hw/src/link.rs:
crates/hw/src/node.rs:
crates/hw/src/presets.rs:
