//! Figure 6: aggregate PCIe throughput over time across the 8 GPUs of one
//! H200 node during GPT3-175B training, TP8-PP4 (left) vs TP2-PP16 (right).

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, try_run};
use charllm_telemetry::TimeSeries;

fn main() {
    banner(
        "Figure 6",
        "aggregate node PCIe throughput over time, TP8-PP4 vs TP2-PP16",
    );
    let cluster = hgx_h200_cluster();
    let job = bench_job(gpt3_175b()).with_recompute(true);
    let mut json = serde_json::Map::new();
    for label in ["TP8-PP4", "TP2-PP16"] {
        let spec = ParallelismSpec::parse(label, cluster.num_gpus()).expect("paper config");
        let Some(r) = try_run(&cluster, &job, spec) else {
            continue;
        };
        // Sum PCIe throughput over node 0's GPUs at each sample.
        let mut agg = TimeSeries::new();
        let n = r.sim.telemetry.pcie(0).len();
        for i in 0..n {
            let t = r.sim.telemetry.pcie(0).times()[i];
            let total: f64 = (0..8).map(|g| r.sim.telemetry.pcie(g).values()[i]).sum();
            agg.push(t, total);
        }
        println!("\n--- {label}: node-0 aggregate PCIe GB/s (sampled) ---");
        println!(
            "samples {:>5}  mean {:>7.3}  peak {:>7.3}  p95 {:>7.3}",
            agg.len(),
            agg.mean(),
            agg.peak(),
            agg.percentile(95.0)
        );
        // Print a coarse sparkline-style series (every ~20th sample).
        let stride = (agg.len() / 24).max(1);
        let series: Vec<String> = agg
            .iter()
            .step_by(stride)
            .map(|(t, v)| format!("{t:.1}s:{v:.2}"))
            .collect();
        println!("{}", series.join("  "));
        json.insert(
            label.to_string(),
            serde_json::json!({
                "mean_gbps": agg.mean(),
                "peak_gbps": agg.peak(),
                "t": agg.times(),
                "gbps": agg.values(),
            }),
        );
    }
    save_json("fig06", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: TP2-PP16 transfers larger chunks over fewer\n\
         endpoints, sustaining higher aggregate PCIe throughput than TP8-PP4,\n\
         whose sparse unchunked SendRecv underutilizes the links."
    );
}
