/root/repo/target/debug/deps/charllm_bench-73a9af1cf0100d69.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_bench-73a9af1cf0100d69.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
