//! Simulation results: the quantities the paper's figures plot.

use serde::{Deserialize, Serialize};

use charllm_hw::LinkClass;
use charllm_telemetry::{Profile, TelemetryStore};
use charllm_trace::KernelClass;

/// Busy seconds per kernel class (one rank, measured iterations).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelBreakdown {
    seconds: [f64; 10],
}

impl KernelBreakdown {
    /// Index of a class in the fixed layout (the [`KernelClass::all`]
    /// order). A constant match, not a `position` search: `add` sits on the
    /// per-event accounting path of both engines.
    fn idx(class: KernelClass) -> usize {
        match class {
            KernelClass::Gemm => 0,
            KernelClass::Attention => 1,
            KernelClass::Recompute => 2,
            KernelClass::OtherCompute => 3,
            KernelClass::SendRecv => 4,
            KernelClass::AllReduce => 5,
            KernelClass::AllGather => 6,
            KernelClass::ReduceScatter => 7,
            KernelClass::AllToAll => 8,
            KernelClass::Idle => 9,
        }
    }

    /// Add busy time to a class.
    pub fn add(&mut self, class: KernelClass, seconds: f64) {
        self.seconds[Self::idx(class)] += seconds;
    }

    /// Busy time of a class.
    pub fn get(&self, class: KernelClass) -> f64 {
        self.seconds[Self::idx(class)]
    }

    /// Total busy time (excluding [`KernelClass::Idle`]).
    pub fn busy_total(&self) -> f64 {
        KernelClass::all()
            .iter()
            .filter(|c| **c != KernelClass::Idle)
            .map(|c| self.get(*c))
            .sum()
    }

    /// Total communication time.
    pub fn comm_total(&self) -> f64 {
        KernelClass::all()
            .iter()
            .filter(|c| c.is_comm())
            .map(|c| self.get(*c))
            .sum()
    }

    /// Total compute time.
    pub fn compute_total(&self) -> f64 {
        self.busy_total() - self.comm_total()
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &KernelBreakdown) -> KernelBreakdown {
        let mut out = self.clone();
        for i in 0..out.seconds.len() {
            out.seconds[i] += other.seconds[i];
        }
        out
    }

    /// Scale all buckets (e.g. averaging across ranks).
    pub fn scaled(&self, factor: f64) -> KernelBreakdown {
        let mut out = self.clone();
        for s in &mut out.seconds {
            *s *= factor;
        }
        out
    }
}

/// Per-GPU traffic by link class, bytes over the measured iterations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    bytes: Vec<[f64; 6]>,
}

impl TrafficMatrix {
    /// An all-zero matrix covering `num_gpus` GPUs.
    pub fn new(num_gpus: usize) -> Self {
        TrafficMatrix {
            bytes: vec![[0.0; 6]; num_gpus],
        }
    }

    fn idx(class: LinkClass) -> usize {
        match class {
            LinkClass::NvLink => 0,
            LinkClass::XgmiPackage => 1,
            LinkClass::XgmiPort => 2,
            LinkClass::Pcie => 3,
            LinkClass::Nic => 4,
            LinkClass::Switch => 5,
        }
    }

    pub(crate) fn add(&mut self, gpu: usize, class: LinkClass, bytes: f64) {
        self.bytes[gpu][Self::idx(class)] += bytes;
    }

    /// Overwrite one GPU's row with a copy of another's (symmetry-folded
    /// result expansion).
    pub(crate) fn copy_gpu(&mut self, from: usize, to: usize) {
        if from != to {
            self.bytes[to] = self.bytes[from];
        }
    }

    /// Traffic of one GPU on one link class, bytes.
    pub fn get(&self, gpu: usize, class: LinkClass) -> f64 {
        self.bytes[gpu][Self::idx(class)]
    }

    /// Fabric (NVLink/xGMI) traffic of a GPU, bytes.
    pub fn fabric(&self, gpu: usize) -> f64 {
        self.get(gpu, LinkClass::NvLink)
            + self.get(gpu, LinkClass::XgmiPackage)
            + self.get(gpu, LinkClass::XgmiPort)
    }

    /// PCIe-visible traffic of a GPU (PCIe staging for inter-node), bytes.
    pub fn pcie(&self, gpu: usize) -> f64 {
        self.get(gpu, LinkClass::Pcie)
    }

    /// Total traffic of a GPU across classes.
    pub fn total(&self, gpu: usize) -> f64 {
        self.bytes[gpu].iter().sum()
    }

    /// Number of GPUs covered.
    pub fn num_gpus(&self) -> usize {
        self.bytes.len()
    }
}

/// Time-averaged occupancy proxies per GPU (Fig. 20).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct OccupancyStats {
    /// Fraction of time any kernel was resident.
    pub occupancy: f64,
    /// Average concurrent warp pressure (0..~1.2).
    pub warps: f64,
    /// Average concurrent threadblock pressure (0..~1.2).
    pub threadblocks: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Mean measured iteration (training-step) time, seconds.
    pub step_time_s: f64,
    /// Per-iteration wall-clock times (all iterations, including warmup).
    pub iteration_times_s: Vec<f64>,
    /// Training throughput over measured iterations, tokens/second.
    pub tokens_per_s: f64,
    /// Energy per measured iteration, joules.
    pub energy_per_step_j: f64,
    /// Energy efficiency, tokens per joule.
    pub tokens_per_joule: f64,
    /// Per-rank kernel-class busy time over measured iterations.
    pub kernel_time: Vec<KernelBreakdown>,
    /// Per-GPU traffic by link class over measured iterations.
    pub traffic: TrafficMatrix,
    /// Sampled telemetry time series (full run including warmup).
    pub telemetry: TelemetryStore,
    /// Per-GPU throttle residency (any reason) over the whole run.
    pub throttle_ratio: Vec<f64>,
    /// Per-GPU thermal throttle residency.
    pub thermal_throttle_ratio: Vec<f64>,
    /// Per-GPU occupancy proxies.
    pub occupancy: Vec<OccupancyStats>,
    /// Total simulated time, seconds.
    pub sim_time_s: f64,
    /// Useful-token throughput net of failures: measured tokens over the
    /// gross measured window *including* recovery outages and re-computed
    /// lost work, scaled by any elastic-shrink capacity loss. Equals
    /// [`SimResult::tokens_per_s`] exactly when no fault fired.
    pub goodput_tokens_per_s: f64,
    /// Energy consumed during fault outages (restart, lost-work redo,
    /// reconfiguration) — spent without producing retained tokens. Joules.
    pub energy_wasted_j: f64,
    /// Number of fail-stop recoveries performed.
    pub restarts: u64,
    /// Total simulated time lost to fault outages, seconds.
    pub fault_downtime_s: f64,
    /// Span-level phase/energy attribution; `None` unless the run was
    /// profiled (e.g. via `Simulator::profiled`).
    pub profile: Option<Profile>,
}

impl SimResult {
    /// Mean kernel breakdown across ranks.
    pub fn mean_kernel_time(&self) -> KernelBreakdown {
        if self.kernel_time.is_empty() {
            return KernelBreakdown::default();
        }
        let sum = self
            .kernel_time
            .iter()
            .fold(KernelBreakdown::default(), |acc, k| acc.merged(k));
        sum.scaled(1.0 / self.kernel_time.len() as f64)
    }

    /// Training efficiency normalized per GPU: tokens/s/GPU.
    pub fn tokens_per_s_per_gpu(&self) -> f64 {
        if self.kernel_time.is_empty() {
            0.0
        } else {
            self.tokens_per_s / self.kernel_time.len() as f64
        }
    }

    /// Mean energy wasted per fail-stop recovery, joules (0.0 when the run
    /// had no restarts).
    pub fn energy_wasted_per_failure_j(&self) -> f64 {
        if self.restarts == 0 {
            0.0
        } else {
            self.energy_wasted_j / self.restarts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut k = KernelBreakdown::default();
        k.add(KernelClass::Gemm, 2.0);
        k.add(KernelClass::AllReduce, 1.0);
        k.add(KernelClass::Gemm, 0.5);
        assert_eq!(k.get(KernelClass::Gemm), 2.5);
        assert_eq!(k.comm_total(), 1.0);
        assert_eq!(k.compute_total(), 2.5);
        assert_eq!(k.busy_total(), 3.5);
    }

    #[test]
    fn idle_not_counted_as_busy() {
        let mut k = KernelBreakdown::default();
        k.add(KernelClass::Idle, 10.0);
        assert_eq!(k.busy_total(), 0.0);
        assert_eq!(k.get(KernelClass::Idle), 10.0);
    }

    #[test]
    fn merged_and_scaled() {
        let mut a = KernelBreakdown::default();
        a.add(KernelClass::Gemm, 2.0);
        let mut b = KernelBreakdown::default();
        b.add(KernelClass::Gemm, 4.0);
        let m = a.merged(&b).scaled(0.5);
        assert_eq!(m.get(KernelClass::Gemm), 3.0);
    }

    #[test]
    fn traffic_matrix_accumulates_by_class() {
        let mut t = TrafficMatrix::new(2);
        t.add(0, LinkClass::NvLink, 100.0);
        t.add(0, LinkClass::Pcie, 50.0);
        t.add(1, LinkClass::XgmiPackage, 10.0);
        assert_eq!(t.fabric(0), 100.0);
        assert_eq!(t.pcie(0), 50.0);
        assert_eq!(t.total(0), 150.0);
        assert_eq!(t.fabric(1), 10.0);
    }
}
