/root/repo/target/debug/deps/charllm_bench-9b520f93cdfb533a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/charllm_bench-9b520f93cdfb533a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
