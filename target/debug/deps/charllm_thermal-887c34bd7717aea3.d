/root/repo/target/debug/deps/charllm_thermal-887c34bd7717aea3.d: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/debug/deps/libcharllm_thermal-887c34bd7717aea3.rlib: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/debug/deps/libcharllm_thermal-887c34bd7717aea3.rmeta: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

crates/thermal/src/lib.rs:
crates/thermal/src/governor.rs:
crates/thermal/src/gpu_state.rs:
crates/thermal/src/power.rs:
crates/thermal/src/rc.rs:
crates/thermal/src/variability.rs:
