//! End-of-step gradient synchronization and optimizer emission.

use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::memory::rank_params;

use crate::builder::{CollKey, TraceBuilder};
use crate::task::{CollectiveId, ComputeKind};

use super::Ctx;

/// Gradient bytes a rank contributes to DP synchronization.
pub(crate) fn grad_bytes(ctx: &Ctx<'_>, rank: usize) -> u64 {
    let stage = ctx.grid.coords(rank).pp;
    if let Some(lora) = &ctx.job.optim.lora {
        let trainable = lora.trainable_params(&ctx.job.arch) / (ctx.spec.tp * ctx.spec.pp) as u64;
        return trainable * ctx.job.precision.bytes();
    }
    rank_params(ctx.job, ctx.spec, ctx.partition, stage) * ctx.job.precision.bytes()
}

/// Parameters this rank's optimizer updates.
fn optimizer_params(ctx: &Ctx<'_>, rank: usize) -> u64 {
    let stage = ctx.grid.coords(rank).pp;
    if let Some(lora) = &ctx.job.optim.lora {
        return lora.trainable_params(&ctx.job.arch) / (ctx.spec.tp * ctx.spec.pp) as u64;
    }
    let params = rank_params(ctx.job, ctx.spec, ctx.partition, stage);
    if ctx.spec.fsdp || ctx.job.optim.distributed_optimizer {
        params.div_ceil(ctx.spec.dp as u64)
    } else {
        params
    }
}

/// One pending end-of-step collective.
struct Pending {
    key: CollKey,
    kind: CollectiveKind,
    bytes: u64,
    group: Vec<usize>,
    /// Runs after the optimizer (ZeRO-1 parameter AllGather).
    post_optimizer: bool,
}

/// Plans and emits the gradient-sync + optimizer tail of a rank's stream.
pub(crate) struct GradSync {
    pending: Vec<Pending>,
    started: Vec<CollectiveId>,
    overlap_started: bool,
}

impl GradSync {
    /// Decide which collectives this rank owes at the end of the step.
    pub(crate) fn plan(ctx: &Ctx<'_>, rank: usize) -> Self {
        let mut pending = Vec::new();
        let spec = ctx.spec;
        let dp_group = ctx.grid.dp_group(rank);
        let lead = dp_group[0] as u32;
        if spec.dp > 1 && !spec.fsdp {
            let bytes = grad_bytes(ctx, rank);
            if ctx.job.optim.lora.is_some() {
                pending.push(Pending {
                    key: CollKey {
                        site: "lora-ar",
                        mb: 0,
                        layer: 0,
                        aux: 0,
                        group_lead: lead,
                    },
                    kind: CollectiveKind::AllReduce,
                    bytes,
                    group: dp_group,
                    post_optimizer: false,
                });
            } else if ctx.job.optim.distributed_optimizer {
                pending.push(Pending {
                    key: CollKey {
                        site: "dp-rs",
                        mb: 0,
                        layer: 0,
                        aux: 0,
                        group_lead: lead,
                    },
                    kind: CollectiveKind::ReduceScatter,
                    bytes,
                    group: dp_group.clone(),
                    post_optimizer: false,
                });
                pending.push(Pending {
                    key: CollKey {
                        site: "dp-ag",
                        mb: 0,
                        layer: 0,
                        aux: 0,
                        group_lead: lead,
                    },
                    kind: CollectiveKind::AllGather,
                    bytes,
                    group: dp_group,
                    post_optimizer: true,
                });
            } else {
                pending.push(Pending {
                    key: CollKey {
                        site: "dp-ar",
                        mb: 0,
                        layer: 0,
                        aux: 0,
                        group_lead: lead,
                    },
                    kind: CollectiveKind::AllReduce,
                    bytes,
                    group: dp_group,
                    post_optimizer: false,
                });
            }
        }
        GradSync {
            pending,
            started: Vec::new(),
            overlap_started: false,
        }
    }

    /// Start the pre-optimizer collectives early (compute–communication
    /// overlap of the DP gradient sync with the tail of backward).
    pub(crate) fn start_overlapped(&mut self, b: &mut TraceBuilder, rank: usize) {
        if self.overlap_started {
            return;
        }
        self.overlap_started = true;
        for p in self.pending.iter().filter(|p| !p.post_optimizer) {
            let id = b.collective(
                p.key,
                p.kind,
                p.bytes,
                p.group.clone(),
                ChunkingPolicy::nccl_default(),
                false,
            );
            b.start(rank, id);
            self.started.push(id);
        }
    }

    /// Emit the remaining waits, the optimizer step, and post-optimizer
    /// collectives.
    pub(crate) fn finish(mut self, b: &mut TraceBuilder, ctx: &Ctx<'_>, rank: usize) {
        // Pre-optimizer collectives: start (if not already) and wait.
        let pre: Vec<&Pending> = self.pending.iter().filter(|p| !p.post_optimizer).collect();
        if !self.overlap_started {
            for p in &pre {
                let id = b.collective(
                    p.key,
                    p.kind,
                    p.bytes,
                    p.group.clone(),
                    ChunkingPolicy::nccl_default(),
                    false,
                );
                b.start(rank, id);
                self.started.push(id);
            }
        }
        for id in &self.started {
            b.wait(rank, *id);
        }

        // Optimizer: memory-bound over ~20 bytes per updated parameter.
        let params = optimizer_params(ctx, rank) as f64;
        let seconds = params * 20.0 / (ctx.hints.hbm_bw_gbps * 1e9);
        b.compute(
            rank,
            ComputeKind::Optimizer,
            seconds * ctx.hints.peak_fp16_flops,
        );

        // Post-optimizer collectives (ZeRO-1 parameter AllGather).
        for p in self.pending.iter().filter(|p| p.post_optimizer) {
            let id = b.collective(
                p.key,
                p.kind,
                p.bytes,
                p.group.clone(),
                ChunkingPolicy::nccl_default(),
                false,
            );
            b.blocking(rank, id);
        }
    }
}
