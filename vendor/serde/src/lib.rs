//! Offline stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real serde cannot be fetched. This crate keeps the same surface the
//! workspace actually uses — `#[derive(Serialize, Deserialize)]` plus the
//! `serde_json` functions layered on top — while serializing through an
//! in-memory [`Value`] tree instead of serde's visitor machinery.
//!
//! It is intentionally minimal: no `#[serde(...)]` attributes, no generics
//! on derived types, no zero-copy deserialization. Everything the CharLLM
//! reproduction derives (plain structs, newtype ids, unit/struct/tuple enum
//! variants) round-trips exactly.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization error (shared with `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Wrap with the field that failed, for struct-field context.
    #[must_use]
    pub fn in_field(self, field: &str) -> Self {
        Error {
            msg: format!("{field}: {}", self.msg),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be turned into a JSON-like [`Value`] tree.
pub trait Serialize {
    /// Produce the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a JSON-like [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree's shape does not match `Self`.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", v.kind()))
                })?;
                n.to_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_number().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", v.kind()))
                })?;
                n.to_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_f64(f64::from(*self)))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                match v {
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    _ => v
                        .as_number()
                        .map(|n| n.to_f64() as $t)
                        .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind()))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(T::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(T::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(T::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let Value::Array(items) = v else {
                    return Err(Error::custom(format!("expected tuple array, got {}", v.kind())));
                };
                let expected = [$(stringify!($idx)),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($t::deserialize_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
