//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`bench_function`
//! surface the workspace's micro-benchmarks use, backed by a simple
//! wall-clock timer: warm up briefly, then run a fixed number of timed
//! samples and report min/mean. No statistical analysis, plots or HTML
//! reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            sample_size,
        }
    }
}

/// A group of related benchmarks (shares configuration).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, storing one sample per configured repetition.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut impl FnMut(&mut Bencher)) {
    // One warmup call, then calibrate iterations so a sample takes >= ~1ms.
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut bencher);
    let warmup = bencher.samples.first().copied().unwrap_or_default();
    let iters = if warmup < Duration::from_millis(1) {
        (Duration::from_millis(1).as_nanos() / warmup.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("bench {name}: no samples (closure never called iter)");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "bench {name}: mean {:.3?} min {:.3?} ({} samples x {iters} iters)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
