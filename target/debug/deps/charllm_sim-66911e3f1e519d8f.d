/root/repo/target/debug/deps/charllm_sim-66911e3f1e519d8f.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_sim-66911e3f1e519d8f.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
