/root/repo/target/debug/deps/charllm_telemetry-094bb786b8c68fcd.d: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_telemetry-094bb786b8c68fcd.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/aggregate.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/heatmap.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/timeseries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
