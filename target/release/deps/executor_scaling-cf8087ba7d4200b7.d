/root/repo/target/release/deps/executor_scaling-cf8087ba7d4200b7.d: crates/bench/benches/executor_scaling.rs

/root/repo/target/release/deps/executor_scaling-cf8087ba7d4200b7: crates/bench/benches/executor_scaling.rs

crates/bench/benches/executor_scaling.rs:
