/root/repo/target/debug/deps/paper_shapes-80435f8f9dfcfc05.d: tests/paper_shapes.rs

/root/repo/target/debug/deps/paper_shapes-80435f8f9dfcfc05: tests/paper_shapes.rs

tests/paper_shapes.rs:
