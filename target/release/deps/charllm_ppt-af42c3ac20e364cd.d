/root/repo/target/release/deps/charllm_ppt-af42c3ac20e364cd.d: src/lib.rs

/root/repo/target/release/deps/libcharllm_ppt-af42c3ac20e364cd.rlib: src/lib.rs

/root/repo/target/release/deps/libcharllm_ppt-af42c3ac20e364cd.rmeta: src/lib.rs

src/lib.rs:
