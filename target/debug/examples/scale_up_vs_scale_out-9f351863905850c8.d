/root/repo/target/debug/examples/scale_up_vs_scale_out-9f351863905850c8.d: examples/scale_up_vs_scale_out.rs Cargo.toml

/root/repo/target/debug/examples/libscale_up_vs_scale_out-9f351863905850c8.rmeta: examples/scale_up_vs_scale_out.rs Cargo.toml

examples/scale_up_vs_scale_out.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
