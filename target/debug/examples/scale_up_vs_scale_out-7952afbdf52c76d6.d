/root/repo/target/debug/examples/scale_up_vs_scale_out-7952afbdf52c76d6.d: examples/scale_up_vs_scale_out.rs

/root/repo/target/debug/examples/scale_up_vs_scale_out-7952afbdf52c76d6: examples/scale_up_vs_scale_out.rs

examples/scale_up_vs_scale_out.rs:
