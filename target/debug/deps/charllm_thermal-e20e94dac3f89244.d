/root/repo/target/debug/deps/charllm_thermal-e20e94dac3f89244.d: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/debug/deps/charllm_thermal-e20e94dac3f89244: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

crates/thermal/src/lib.rs:
crates/thermal/src/governor.rs:
crates/thermal/src/gpu_state.rs:
crates/thermal/src/power.rs:
crates/thermal/src/rc.rs:
crates/thermal/src/variability.rs:
