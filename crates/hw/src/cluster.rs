//! Whole-cluster topology: nodes, GPU indexing and routing.

use serde::{Deserialize, Serialize};

use crate::error::HwError;
use crate::gpu::GpuSpec;
use crate::link::{LinkId, LinkSpec};
use crate::node::{FabricKind, NodeLayout};

/// Global index of a GPU within a cluster (`node * gpus_per_node + slot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId(pub u32);

impl GpuId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for GpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Index of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A two-tier rail-optimized switch fabric above the per-node NICs.
///
/// Inter-node traffic from a GPU in slot `s` enters leaf switch `s % rails`
/// (its *rail*); same-rail traffic turns around at the leaf, cross-rail
/// traffic additionally crosses the spine tier. Rail-optimized placement is
/// what makes DP rings single-hop at SuperPOD scale: data-parallel peers
/// occupy the same slot on every node, so their rings never leave the rail.
///
/// Each tier is modeled as one shared [`LinkSpec`] whose bandwidth is the
/// tier's aggregate capacity (a non-blocking switch scales with its port
/// count), so the per-port contention points remain the NICs — matching the
/// paper's bottleneck analysis — while switch hops still add latency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RailFabric {
    /// Number of rails (leaf switches); must divide the node's GPU count.
    pub rails: usize,
    /// Per-leaf switch spec (aggregate bandwidth, per-hop latency).
    pub leaf: LinkSpec,
    /// Spine tier spec (aggregate bandwidth across all leaf uplinks).
    pub spine: LinkSpec,
}

/// A homogeneous GPU cluster: `num_nodes` identical [`NodeLayout`]s populated
/// with one [`GpuSpec`], plus a flat table of every shared link.
///
/// The link table is the contract with the simulator: a transfer between two
/// GPUs occupies every link on [`Cluster::route`] simultaneously, and
/// concurrent transfers fair-share each link's bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    name: String,
    gpu: GpuSpec,
    node: NodeLayout,
    num_nodes: usize,
    links: Vec<LinkSpec>,
    fabric_port_links: Vec<LinkId>,
    pcie_links: Vec<LinkId>,
    nic_links: Vec<LinkId>,
    package_bus_links: Vec<Vec<LinkId>>,
    rail_fabric: Option<RailFabric>,
    leaf_links: Vec<LinkId>,
    spine_link: Option<LinkId>,
}

impl Cluster {
    /// Build a cluster of `num_nodes` copies of `node` populated with `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EmptyCluster`] for zero nodes and propagates node
    /// layout validation failures.
    pub fn new(
        name: impl Into<String>,
        gpu: GpuSpec,
        node: NodeLayout,
        num_nodes: usize,
    ) -> Result<Self, HwError> {
        if num_nodes == 0 {
            return Err(HwError::EmptyCluster);
        }
        node.validate()?;
        let mut links = Vec::new();
        let mut push = |spec: LinkSpec| {
            let id = LinkId(links.len() as u32);
            links.push(spec);
            id
        };
        let g = node.gpus_per_node;
        let mut fabric_port_links = Vec::with_capacity(num_nodes * g);
        let mut pcie_links = Vec::with_capacity(num_nodes * g);
        let mut nic_links = Vec::with_capacity(num_nodes);
        let mut package_bus_links = Vec::with_capacity(num_nodes);
        for _n in 0..num_nodes {
            for _s in 0..g {
                fabric_port_links.push(push(node.fabric_port.clone()));
                pcie_links.push(push(node.pcie.clone()));
            }
            nic_links.push(push(node.nic.clone()));
            let mut buses = Vec::new();
            if let Some(bus) = &node.package_bus {
                for _pkg in 0..node.packages.len() {
                    buses.push(push(bus.clone()));
                }
            }
            package_bus_links.push(buses);
        }
        Ok(Cluster {
            name: name.into(),
            gpu,
            node,
            num_nodes,
            links,
            fabric_port_links,
            pcie_links,
            nic_links,
            package_bus_links,
            rail_fabric: None,
            leaf_links: Vec::new(),
            spine_link: None,
        })
    }

    /// Install a two-tier rail-optimized switch fabric above the NICs (see
    /// [`RailFabric`]). Inter-node routes gain a leaf hop, and a
    /// spine + second leaf hop when the endpoints sit on different rails.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNodeLayout`] when `rails` is zero, exceeds
    /// the node's GPU count, or does not divide it, or when a tier spec is
    /// not [`LinkClass::Switch`](crate::LinkClass::Switch).
    pub fn with_rail_fabric(
        mut self,
        rails: usize,
        leaf: LinkSpec,
        spine: LinkSpec,
    ) -> Result<Self, HwError> {
        let g = self.node.gpus_per_node;
        if rails == 0 || rails > g || !g.is_multiple_of(rails) {
            return Err(HwError::InvalidNodeLayout(format!(
                "{rails} rails do not evenly partition {g} GPUs per node"
            )));
        }
        for spec in [&leaf, &spine] {
            if spec.class != crate::LinkClass::Switch {
                return Err(HwError::InvalidNodeLayout(format!(
                    "rail fabric tiers must be switch links, got {}",
                    spec.class
                )));
            }
        }
        self.leaf_links = (0..rails)
            .map(|_| {
                let id = LinkId(self.links.len() as u32);
                self.links.push(leaf.clone());
                id
            })
            .collect();
        let spine_id = LinkId(self.links.len() as u32);
        self.links.push(spine.clone());
        self.spine_link = Some(spine_id);
        self.rail_fabric = Some(RailFabric { rails, leaf, spine });
        Ok(self)
    }

    /// The installed rail fabric, if any.
    pub fn rail_fabric(&self) -> Option<&RailFabric> {
        self.rail_fabric.as_ref()
    }

    /// The rail (leaf switch index) a GPU's inter-node traffic enters.
    /// Meaningful only when a rail fabric is installed.
    pub fn rail_of(&self, gpu: GpuId) -> usize {
        match &self.rail_fabric {
            Some(rf) => self.slot_of(gpu) % rf.rails,
            None => 0,
        }
    }

    /// Cluster display name (e.g. `"32xH200"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A content fingerprint of the full topology: the serialized cluster,
    /// covering GPU/node specs, link tables and airflow geometry. Two
    /// clusters with equal fingerprints route and perform identically, so
    /// caches keyed on it (e.g. `charllm-core`'s `SimCache`) never alias
    /// differently shaped topologies — unlike [`Cluster::name`], which is
    /// a display label.
    pub fn fingerprint(&self) -> String {
        serde_json::to_string(self).expect("cluster topology serializes")
    }

    /// The GPU spec shared by every device.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// The node layout shared by every node.
    pub fn node_layout(&self) -> &NodeLayout {
        &self.node
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of GPUs per node.
    pub fn gpus_per_node(&self) -> usize {
        self.node.gpus_per_node
    }

    /// Total number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.num_nodes * self.node.gpus_per_node
    }

    /// Total number of shared links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Look up a link spec.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this cluster.
    pub fn link(&self, id: LinkId) -> &LinkSpec {
        &self.links[id.index()]
    }

    /// Iterate over `(LinkId, &LinkSpec)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkSpec)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, s)| (LinkId(i as u32), s))
    }

    /// The node a GPU belongs to.
    pub fn node_of(&self, gpu: GpuId) -> NodeId {
        NodeId((gpu.index() / self.node.gpus_per_node) as u32)
    }

    /// The local slot of a GPU within its node.
    pub fn slot_of(&self, gpu: GpuId) -> usize {
        gpu.index() % self.node.gpus_per_node
    }

    /// The GPU at `(node, slot)`.
    pub fn gpu_at(&self, node: NodeId, slot: usize) -> GpuId {
        GpuId((node.index() * self.node.gpus_per_node + slot) as u32)
    }

    /// Whether two GPUs share a node.
    pub fn same_node(&self, a: GpuId, b: GpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Whether two GPUs share a physical package (always false across nodes;
    /// only true within an MI250 package for the chiplet preset).
    pub fn same_package(&self, a: GpuId, b: GpuId) -> bool {
        self.same_node(a, b) && self.node.same_package(self.slot_of(a), self.slot_of(b))
    }

    /// Validate a GPU id.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::GpuOutOfRange`] when the id exceeds the cluster.
    pub fn check_gpu(&self, gpu: GpuId) -> Result<(), HwError> {
        if gpu.index() >= self.num_gpus() {
            Err(HwError::GpuOutOfRange {
                gpu: gpu.0,
                num_gpus: self.num_gpus() as u32,
            })
        } else {
            Ok(())
        }
    }

    /// The GPU's fabric port link (NVLink or xGMI port).
    pub fn fabric_port(&self, gpu: GpuId) -> LinkId {
        self.fabric_port_links[gpu.index()]
    }

    /// The GPU's PCIe link to its host.
    pub fn pcie(&self, gpu: GpuId) -> LinkId {
        self.pcie_links[gpu.index()]
    }

    /// The node's NIC link.
    pub fn nic(&self, node: NodeId) -> LinkId {
        self.nic_links[node.index()]
    }

    /// The ordered list of shared links a transfer from `src` to `dst`
    /// traverses. Empty when `src == dst` (on-device copy).
    ///
    /// Routing rules:
    /// - intra-package (MI250): the package's xGMI bus;
    /// - intra-node: the two endpoints' fabric ports (NVSwitch planes are
    ///   non-blocking, so ports are the contention points);
    /// - inter-node: source PCIe → source NIC → destination NIC →
    ///   destination PCIe (the shared-NIC path whose contention §4.2
    ///   analyzes). With a [`RailFabric`] installed, the source's leaf
    ///   switch sits between the NICs, plus spine → destination leaf when
    ///   the endpoints are on different rails.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::GpuOutOfRange`] for ids outside the cluster.
    pub fn route(&self, src: GpuId, dst: GpuId) -> Result<Vec<LinkId>, HwError> {
        let mut out = Vec::with_capacity(8);
        self.route_into(src, dst, &mut out)?;
        Ok(out)
    }

    /// Write the route from `src` to `dst` into `out` (cleared first),
    /// avoiding a fresh allocation per call. Routes are at most seven links
    /// long, so a reused buffer never reallocates after the first call.
    /// Produces exactly the links [`Cluster::route`] would return.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::GpuOutOfRange`] for ids outside the cluster
    /// (leaving `out` empty).
    pub fn route_into(&self, src: GpuId, dst: GpuId, out: &mut Vec<LinkId>) -> Result<(), HwError> {
        out.clear();
        self.check_gpu(src)?;
        self.check_gpu(dst)?;
        if src == dst {
            return Ok(());
        }
        if self.same_node(src, dst) {
            if self.node.fabric == FabricKind::Xgmi && self.same_package(src, dst) {
                let node = self.node_of(src);
                let pkg = self.node.package_of(self.slot_of(src));
                out.push(self.package_bus_links[node.index()][pkg]);
                return Ok(());
            }
            out.push(self.fabric_port(src));
            out.push(self.fabric_port(dst));
            return Ok(());
        }
        out.push(self.pcie(src));
        out.push(self.nic(self.node_of(src)));
        if self.rail_fabric.is_some() {
            let (sr, dr) = (self.rail_of(src), self.rail_of(dst));
            out.push(self.leaf_links[sr]);
            if sr != dr {
                out.push(self.spine_link.expect("fabric has a spine"));
                out.push(self.leaf_links[dr]);
            }
        }
        out.push(self.nic(self.node_of(dst)));
        out.push(self.pcie(dst));
        Ok(())
    }

    /// Bottleneck bandwidth of a route in GB/s (`f64::INFINITY` for the
    /// empty on-device route).
    pub fn route_bottleneck_gbps(&self, route: &[LinkId]) -> f64 {
        route
            .iter()
            .map(|id| self.link(*id).bw_gbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// End-to-end base latency of a route in microseconds (sum of link
    /// latencies).
    pub fn route_latency_us(&self, route: &[LinkId]) -> f64 {
        route.iter().map(|id| self.link(*id).latency_us).sum()
    }

    /// Replace the NIC spec on every node (used by the §7.1 bandwidth
    /// scaling study, e.g. swapping 100G for 800G InfiniBand).
    pub fn with_nic(mut self, nic: LinkSpec) -> Self {
        self.node.nic = nic.clone();
        for id in &self.nic_links {
            self.links[id.index()] = nic.clone();
        }
        self
    }

    /// Replace every node's airflow layout (used by the uniform-cooling
    /// ablation).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNodeLayout`] if the layout's slot count
    /// differs from the node's GPU count.
    pub fn with_airflow(mut self, airflow: crate::AirflowLayout) -> Result<Self, HwError> {
        if airflow.num_slots() != self.node.gpus_per_node {
            return Err(HwError::InvalidNodeLayout(format!(
                "airflow covers {} slots but node has {} gpus",
                airflow.num_slots(),
                self.node.gpus_per_node
            )));
        }
        self.node.airflow = airflow;
        Ok(self)
    }

    /// All GPU ids in index order.
    pub fn gpus(&self) -> impl Iterator<Item = GpuId> {
        (0..self.num_gpus() as u32).map(GpuId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;
    use crate::link::LinkClass;

    fn h200() -> Cluster {
        Cluster::new("test-h200", GpuModel::H200.spec(), NodeLayout::hgx(), 4).unwrap()
    }

    fn mi250() -> Cluster {
        Cluster::new(
            "test-mi250",
            GpuModel::Mi250Gcd.spec(),
            NodeLayout::mi250(),
            4,
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_separates_topologies_and_is_stable() {
        assert_eq!(h200().fingerprint(), h200().fingerprint());
        assert_ne!(h200().fingerprint(), mi250().fingerprint());
        // Same shape, one more node: different topology, different print.
        let bigger =
            Cluster::new("test-h200", GpuModel::H200.spec(), NodeLayout::hgx(), 5).unwrap();
        assert_ne!(h200().fingerprint(), bigger.fingerprint());
    }

    #[test]
    fn indexing_roundtrip() {
        let c = h200();
        for gpu in c.gpus() {
            let node = c.node_of(gpu);
            let slot = c.slot_of(gpu);
            assert_eq!(c.gpu_at(node, slot), gpu);
        }
    }

    #[test]
    fn intra_node_route_uses_fabric_ports() {
        let c = h200();
        let route = c.route(GpuId(0), GpuId(3)).unwrap();
        assert_eq!(route.len(), 2);
        for id in route {
            assert_eq!(c.link(id).class, LinkClass::NvLink);
        }
    }

    #[test]
    fn inter_node_route_is_pcie_nic_nic_pcie() {
        let c = h200();
        let route = c.route(GpuId(0), GpuId(8)).unwrap();
        let classes: Vec<_> = route.iter().map(|id| c.link(*id).class).collect();
        assert_eq!(
            classes,
            vec![
                LinkClass::Pcie,
                LinkClass::Nic,
                LinkClass::Nic,
                LinkClass::Pcie
            ]
        );
    }

    #[test]
    fn self_route_is_empty() {
        let c = h200();
        assert!(c.route(GpuId(5), GpuId(5)).unwrap().is_empty());
    }

    #[test]
    fn route_into_matches_route_for_every_pair() {
        for c in [h200(), mi250()] {
            let mut buf = Vec::new();
            for src in c.gpus() {
                for dst in c.gpus() {
                    c.route_into(src, dst, &mut buf).unwrap();
                    assert_eq!(buf, c.route(src, dst).unwrap(), "{src}->{dst}");
                }
            }
        }
    }

    #[test]
    fn route_into_clears_stale_contents_on_error() {
        let c = h200();
        let mut buf = c.route(GpuId(0), GpuId(8)).unwrap();
        assert!(c.route_into(GpuId(0), GpuId(999), &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn mi250_intra_package_route_uses_bus() {
        let c = mi250();
        let route = c.route(GpuId(0), GpuId(1)).unwrap();
        assert_eq!(route.len(), 1);
        assert_eq!(c.link(route[0]).class, LinkClass::XgmiPackage);
    }

    #[test]
    fn mi250_cross_package_route_uses_ports() {
        let c = mi250();
        let route = c.route(GpuId(0), GpuId(2)).unwrap();
        assert_eq!(route.len(), 2);
        for id in route {
            assert_eq!(c.link(id).class, LinkClass::XgmiPort);
        }
    }

    #[test]
    fn nic_is_shared_within_node() {
        let c = h200();
        // Two different source GPUs on node 0 route through the same NIC.
        let r1 = c.route(GpuId(0), GpuId(8)).unwrap();
        let r2 = c.route(GpuId(1), GpuId(9)).unwrap();
        assert_eq!(r1[1], r2[1], "both flows share node 0's NIC");
        assert_ne!(r1[0], r2[0], "each GPU has its own PCIe link");
    }

    #[test]
    fn bottleneck_of_inter_node_route_is_nic() {
        let c = h200();
        let route = c.route(GpuId(0), GpuId(8)).unwrap();
        assert_eq!(c.route_bottleneck_gbps(&route), 12.5);
    }

    #[test]
    fn with_nic_upgrades_every_node() {
        let c = h200().with_nic(LinkSpec::ib_gbps(800.0));
        let route = c.route(GpuId(0), GpuId(8)).unwrap();
        assert_eq!(c.route_bottleneck_gbps(&route), 64.0);
    }

    #[test]
    fn out_of_range_gpu_rejected() {
        let c = h200();
        assert!(matches!(
            c.route(GpuId(0), GpuId(999)),
            Err(HwError::GpuOutOfRange { gpu: 999, .. })
        ));
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(matches!(
            Cluster::new("x", GpuModel::H100.spec(), NodeLayout::hgx(), 0),
            Err(HwError::EmptyCluster)
        ));
    }

    #[test]
    fn route_latency_sums_links() {
        let c = h200();
        let route = c.route(GpuId(0), GpuId(8)).unwrap();
        let expect: f64 = route.iter().map(|id| c.link(*id).latency_us).sum();
        assert_eq!(c.route_latency_us(&route), expect);
    }

    #[test]
    fn same_package_cross_node_is_false() {
        let c = mi250();
        assert!(!c.same_package(GpuId(0), GpuId(8)));
    }
}
