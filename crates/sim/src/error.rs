//! Simulator error types.

use std::fmt;

/// Errors raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The trace failed structural validation.
    InvalidTrace(Vec<String>),
    /// The placement does not cover the trace's world size.
    PlacementMismatch {
        /// Ranks in the trace.
        trace_world: usize,
        /// Ranks in the placement.
        placement_world: usize,
    },
    /// No rank could make progress (cyclic collective waits).
    Deadlock {
        /// Simulated time at which progress stopped.
        at_s: f64,
        /// Human-readable description of blocked ranks.
        detail: String,
    },
    /// The simulated-time cap was exceeded.
    Timeout {
        /// The cap that was hit.
        cap_s: f64,
    },
    /// A shared plan set was sized for a different trace.
    PlanSetMismatch {
        /// Collectives in this simulator's trace.
        trace_collectives: usize,
        /// Slots in the supplied plan set.
        shared_collectives: usize,
    },
    /// A fault plan referenced out-of-range targets or bad magnitudes.
    InvalidFaultPlan(String),
    /// A symmetry-folded run was requested for a configuration the folding
    /// engine cannot reproduce exactly (asymmetric placement, per-node
    /// faults, seeded silicon variability, …).
    FoldUnsupported(String),
    /// A hardware topology query failed.
    Hw(charllm_hw::HwError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidTrace(problems) => {
                write!(
                    f,
                    "trace failed validation with {} problems: {:?}",
                    problems.len(),
                    problems.iter().take(3).collect::<Vec<_>>()
                )
            }
            SimError::PlacementMismatch {
                trace_world,
                placement_world,
            } => write!(
                f,
                "trace has {trace_world} ranks but placement covers {placement_world}"
            ),
            SimError::Deadlock { at_s, detail } => {
                write!(f, "simulation deadlocked at t={at_s:.3}s: {detail}")
            }
            SimError::Timeout { cap_s } => write!(f, "simulated time exceeded cap of {cap_s}s"),
            SimError::PlanSetMismatch {
                trace_collectives,
                shared_collectives,
            } => write!(
                f,
                "shared plan set has {shared_collectives} slots but the trace \
                 has {trace_collectives} collectives (built for a different trace?)"
            ),
            SimError::InvalidFaultPlan(detail) => {
                write!(f, "invalid fault plan: {detail}")
            }
            SimError::FoldUnsupported(detail) => {
                write!(f, "symmetry folding unsupported here: {detail}")
            }
            SimError::Hw(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<charllm_hw::HwError> for SimError {
    fn from(e: charllm_hw::HwError) -> Self {
        SimError::Hw(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SimError::Deadlock {
            at_s: 1.5,
            detail: "rank 0 waiting".into(),
        };
        assert!(e.to_string().contains("1.5"));
        let e = SimError::PlacementMismatch {
            trace_world: 8,
            placement_world: 4,
        };
        assert!(e.to_string().contains('8'));
        let e = SimError::InvalidFaultPlan("gpu 9 out of range".into());
        assert!(e.to_string().contains("fault plan"));
        assert!(e.to_string().contains("gpu 9"));
    }
}
