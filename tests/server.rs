//! The sim server end-to-end, over real sockets: concurrent sweep jobs
//! sharing one `SimCache`, live JSONL progress streams whose per-point
//! metric deltas sum exactly to each job's terminal snapshot, result
//! documents that agree with the streams, cooperative cancel, and a
//! Perfetto trace download served off the shared cache.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use serde_json::{Number, Value};

use charllm::prelude::*;
use charllm::server::http_request;

fn scratch_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("charllm_srv_{tag}_{}_{nanos}", std::process::id()))
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_number)
        .and_then(Number::to_u64)
        .unwrap_or_else(|| panic!("{key} is a u64 in {v:?}"))
}

/// Counter series of a `MetricsSnapshot::to_json` document, keyed by
/// name+labels, zero-valued series dropped (a delta may mention a series
/// the final snapshot also holds at the same running total — only the
/// nonzero mass must reconcile).
fn counters_of(metrics: &Value) -> BTreeMap<String, u64> {
    let mut out = BTreeMap::new();
    let Some(list) = metrics.get("metrics").and_then(Value::as_array) else {
        return out;
    };
    for m in list {
        if m.get("kind").and_then(Value::as_str) != Some("counter") {
            continue;
        }
        let value = get_u64(m, "value");
        if value == 0 {
            continue;
        }
        let name = m.get("name").and_then(Value::as_str).unwrap_or("");
        let labels = serde_json::to_string(m.get("labels").unwrap_or(&Value::Null)).unwrap();
        *out.entry(format!("{name}{labels}")).or_insert(0) += value;
    }
    out
}

#[test]
fn concurrent_jobs_share_one_cache_and_their_streams_reconcile() {
    let dir = scratch_dir("jobs");
    let cache = Arc::new(SimCache::new().with_disk_tier(&dir).unwrap());
    let server = SimServer::bind(
        "127.0.0.1:0",
        Arc::clone(&cache),
        ServerConfig {
            job_workers: 4,
            sweep_workers: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Four identical 4-point sweeps, submitted back-to-back so the
    // 4-wide worker pool runs them concurrently against the one cache.
    let body = r#"{"kind": "sweep", "cluster": "single_hgx_node", "model": "gpt3_13b",
                   "global_batch": 4, "specs": ["TP2-PP2", "TP4-PP2"],
                   "microbatches": [1, 2], "workers": 1}"#;
    let ids: Vec<u64> = (0..4)
        .map(|_| {
            let (status, resp) = http_request(addr, "POST", "/jobs", Some(body)).unwrap();
            assert_eq!(status, 202, "{resp}");
            get_u64(&serde_json::from_str(&resp).unwrap(), "job")
        })
        .collect();

    let mut result_points: Vec<String> = Vec::new();
    for id in &ids {
        // The stream replays from the start and follows until the job
        // finishes (the read blocks on the close-delimited body).
        let (status, stream) =
            http_request(addr, "GET", &format!("/jobs/{id}/stream"), None).unwrap();
        assert_eq!(status, 200);
        let events: Vec<ProgressEvent> = stream
            .lines()
            .map(|l| ProgressEvent::from_json_line(l).expect("well-formed JSONL"))
            .collect();
        assert_eq!(events.len(), 5, "4 points + sweep_end");
        let end = events.last().unwrap();
        assert_eq!(end.event, "sweep_end");
        assert_eq!(end.completed + end.skipped + end.failed, 4);
        for (i, e) in events[..4].iter().enumerate() {
            assert_eq!(e.event, "point");
            assert_eq!(e.index, i, "stream is in enumeration order");
        }

        // Per-point metric deltas sum exactly (integer counters) to the
        // job's terminal snapshot: each job's private hub reconciles no
        // matter what its three concurrent neighbors are doing.
        let mut summed: BTreeMap<String, u64> = BTreeMap::new();
        for e in &events[..4] {
            for (k, v) in counters_of(&e.metrics) {
                *summed.entry(k).or_insert(0) += v;
            }
        }
        assert_eq!(
            summed,
            counters_of(&end.metrics),
            "job {id}: streamed deltas must sum to the final snapshot"
        );

        // The result document tells the same story as the stream.
        let (status, result) =
            http_request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
        assert_eq!(status, 200);
        let result: Value = serde_json::from_str(&result).unwrap();
        assert_eq!(get_u64(&result, "total"), 4);
        assert_eq!(get_u64(&result, "completed"), end.completed as u64);
        assert_eq!(get_u64(&result, "skipped"), end.skipped as u64);
        assert_eq!(get_u64(&result, "failed"), end.failed as u64);
        result_points.push(serde_json::to_string(result.get("points").unwrap()).unwrap());
    }

    // Identical jobs racing through one cache must report identical
    // points — the shared tiers are transparent under concurrency.
    for p in &result_points[1..] {
        assert_eq!(p, &result_points[0]);
    }

    // The shared cache saw every lookup: 4 jobs x 4 points, one lowered
    // and one plan lookup each.
    let (status, cache_body) = http_request(addr, "GET", "/cache", None).unwrap();
    assert_eq!(status, 200);
    let cache_doc: Value = serde_json::from_str(&cache_body).unwrap();
    let stats = cache_doc.get("stats").unwrap();
    assert_eq!(
        get_u64(stats, "lowered_hits") + get_u64(stats, "lowered_misses"),
        16
    );
    assert_eq!(
        get_u64(stats, "plan_hits") + get_u64(stats, "plan_misses"),
        16
    );
    assert_eq!(cache_doc.get("disk").and_then(Value::as_bool), Some(true));
    assert!(
        get_u64(stats, "bytes_written") > 0,
        "finished jobs synced their artifacts to the disk tier"
    );

    // A Perfetto trace for a sweep point, served off the now-warm cache.
    let (status, trace) =
        http_request(addr, "GET", &format!("/jobs/{}/trace/0", ids[0]), None).unwrap();
    assert_eq!(status, 200);
    let trace: Value = serde_json::from_str(&trace).unwrap();
    assert!(
        trace
            .get("traceEvents")
            .and_then(Value::as_array)
            .is_some_and(|a| !a.is_empty()),
        "trace export carries events"
    );

    // /metrics exposes the server's own counters.
    let (status, metrics) = http_request(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("server_jobs_submitted_total 4"));

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_submissions_are_rejected_and_cancel_is_cooperative() {
    let server = SimServer::bind(
        "127.0.0.1:0",
        Arc::new(SimCache::new()),
        ServerConfig {
            job_workers: 1,
            sweep_workers: 1,
        },
    )
    .unwrap();
    let addr = server.local_addr();

    for bad in [
        r#"{"kind": "sweep"}"#,                                    // no specs
        r#"{"kind": "teapot", "specs": ["TP2"]}"#,                 // bad kind
        r#"{"specs": ["TP2-PP2"], "cluster": "warehouse"}"#,       // bad preset
        r#"{"specs": ["TP3-PP5"], "cluster": "single_hgx_node"}"#, // bad spec
    ] {
        let (status, resp) = http_request(addr, "POST", "/jobs", Some(bad)).unwrap();
        assert_eq!(status, 400, "{bad} must be rejected: {resp}");
    }

    // Cancel lands on a many-point job; whatever was still pending is
    // skipped with the cancel reason, and every point stays accounted.
    let body = r#"{"kind": "sweep", "cluster": "single_hgx_node", "model": "gpt3_13b",
                   "global_batch": 4, "specs": ["TP2-PP2", "TP4-PP2", "TP2-PP4", "TP8"],
                   "microbatches": [1, 2, 4], "workers": 1}"#;
    let (status, resp) = http_request(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(status, 202);
    let id = get_u64(&serde_json::from_str(&resp).unwrap(), "job");
    let (status, resp) = http_request(addr, "POST", &format!("/jobs/{id}/cancel"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        serde_json::from_str::<Value>(&resp)
            .unwrap()
            .get("canceled")
            .and_then(Value::as_bool),
        Some(true)
    );
    // Drain the stream (blocks until the job winds down), then check the
    // result accounts for all 12 points.
    let (_, stream) = http_request(addr, "GET", &format!("/jobs/{id}/stream"), None).unwrap();
    let (status, result) = http_request(addr, "GET", &format!("/jobs/{id}/result"), None).unwrap();
    assert_eq!(status, 200);
    let result: Value = serde_json::from_str(&result).unwrap();
    assert_eq!(get_u64(&result, "total"), 12);
    assert_eq!(
        get_u64(&result, "completed") + get_u64(&result, "skipped") + get_u64(&result, "failed"),
        12
    );
    let canceled_lines = stream.lines().filter(|l| l.contains("canceled")).count();
    if get_u64(&result, "skipped") > 0 {
        assert!(
            canceled_lines > 0,
            "skipped points carry the cancel reason in the stream"
        );
    }

    // Unknown job ids and endpoints 404.
    let (status, _) = http_request(addr, "GET", "/jobs/999/result", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = http_request(addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);

    server.shutdown();
}
