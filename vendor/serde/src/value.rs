//! The in-memory JSON value tree shared by `serde` and `serde_json`.

/// A JSON number: integer-preserving where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer (negative values).
    I64(i64),
    /// An unsigned integer (non-negative integers).
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// From a signed integer, normalizing non-negative values to `U64`.
    pub fn from_i64(i: i64) -> Self {
        if let Ok(u) = u64::try_from(i) {
            Number::U64(u)
        } else {
            Number::I64(i)
        }
    }

    /// From an unsigned integer.
    pub fn from_u64(u: u64) -> Self {
        Number::U64(u)
    }

    /// From a float.
    pub fn from_f64(f: f64) -> Self {
        Number::F64(f)
    }

    /// As `i64` if representable.
    pub fn to_i64(self) -> Option<i64> {
        match self {
            Number::I64(i) => Some(i),
            Number::U64(u) => i64::try_from(u).ok(),
            Number::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `u64` if representable.
    pub fn to_u64(self) -> Option<u64> {
        match self {
            Number::I64(i) => u64::try_from(i).ok(),
            Number::U64(u) => Some(u),
            Number::F64(f) if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `f64` (lossy above 2^53).
    pub fn to_f64(self) -> f64 {
        match self {
            Number::I64(i) => i as f64,
            Number::U64(u) => u as f64,
            Number::F64(f) => f,
        }
    }
}

/// An order-preserving string-keyed object.
///
/// Objects in this workspace are small (struct fields, figure rows), so the
/// backing store is a vector with linear lookup.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert or replace a key, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove a key, returning its value. Preserves the order of the
    /// remaining entries.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(i).1)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Index into an object by key. `None` for non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_number().map(Number::to_f64)
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F64(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::F64(f64::from(f)))
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

macro_rules! impl_value_from_int {
    (signed: $($s:ty),*; unsigned: $($u:ty),*) => {
        $(impl From<$s> for Value {
            fn from(i: $s) -> Self {
                Value::Number(Number::from_i64(i64::from(i)))
            }
        })*
        $(impl From<$u> for Value {
            fn from(u: $u) -> Self {
                Value::Number(Number::from_u64(u as u64))
            }
        })*
    };
}

impl_value_from_int!(signed: i8, i16, i32, i64; unsigned: u8, u16, u32, u64, usize);
