//! Symmetry-folded lowering: representative-rank traces for data-parallel
//! replicas.
//!
//! When every data-parallel replica of a training job is placed
//! congruently, the replicas evolve identically — simulating one of them is
//! enough. [`lower_train_folded`] lowers step streams only for the
//! representative (dp == 0) ranks, leaving every other rank's stream empty,
//! and rewrites cross-replica collective groups (gradient AllReduce,
//! ZeRO/FSDP gathers and scatters) down to their emitted members. The
//! original full-group membership is preserved in [`FoldedCollective`] so
//! the simulator can still lay the complete cross-replica ring onto the
//! fabric exactly once — those rings span *all* replicas and exist only
//! once in the unfolded run too.
//!
//! Intra-replica collectives (TP AllReduce, pipeline SendRecv, expert
//! All-to-All) keep their groups untouched; only the dp == 0 copy of each
//! survives, and the simulator multiplies its load on shared switch links
//! by the replica count.

use charllm_models::TrainJob;
use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, RankGrid, StagePartition};

use crate::task::CollectiveId;
use crate::trace::ExecutionTrace;

use super::{lower_train_parts, DeviceHints, TraceError};

/// A cross-replica collective whose group was trimmed during folding,
/// together with everything needed to rebuild its *full* transfer plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedCollective {
    /// Instance id inside the folded trace.
    pub id: CollectiveId,
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Per-rank buffer bytes.
    pub bytes_per_rank: u64,
    /// The original (untrimmed) group, in ring order.
    pub full_group: Vec<usize>,
    /// Message chunking policy.
    pub chunking: ChunkingPolicy,
}

/// A folded training workload: the representative-rank trace plus the
/// bookkeeping the simulator needs to reconstruct full-cluster results.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedJob {
    /// Execution trace with step streams on representative ranks only.
    /// Non-representative ranks exist (world is unchanged) but are empty.
    pub trace: ExecutionTrace,
    /// Gradient bytes one stage-0 rank contributes to DP synchronization.
    pub grad_bytes_per_rank: u64,
    /// Replica count the trace was folded over (`spec.dp`).
    pub multiplicity: u32,
    /// The representative (dp == 0) ranks, ascending.
    pub rep_ranks: Vec<usize>,
    /// Cross-replica collectives whose groups were trimmed.
    pub folded: Vec<FoldedCollective>,
}

/// Lower one training iteration folded over its data-parallel replicas.
///
/// The returned trace has the same world size as the unfolded one, but only
/// dp == 0 ranks carry steps. Valid for the simulator's folded mode only;
/// replaying it rank-for-rank without expansion undercounts the cluster.
///
/// # Errors
///
/// Returns [`TraceError`] under the same conditions as
/// [`super::lower_train`].
pub fn lower_train_folded(
    job: &TrainJob,
    spec: &ParallelismSpec,
    schedule: PipelineSchedule,
    partition: &StagePartition,
    hints: &DeviceHints,
) -> Result<FoldedJob, TraceError> {
    let (mut b, meta, grad_bytes_per_rank) =
        lower_train_parts(job, spec, schedule, partition, hints, true)?;
    let grid = RankGrid::new(*spec);

    // Trim cross-replica groups to their emitted (dp == 0) members, keeping
    // the original membership for plan reconstruction. Every instantiated
    // collective has at least one dp == 0 member — only representatives
    // emit steps, and a rank only references collectives it belongs to.
    let mut folded = Vec::new();
    for (i, c) in b.collectives_mut().iter_mut().enumerate() {
        if c.group.iter().all(|&r| grid.coords(r).dp == 0) {
            continue;
        }
        let full_group = std::mem::take(&mut c.group);
        c.group = full_group
            .iter()
            .copied()
            .filter(|&r| grid.coords(r).dp == 0)
            .collect();
        debug_assert!(!c.group.is_empty(), "folded collective lost all members");
        folded.push(FoldedCollective {
            id: CollectiveId(i as u32),
            kind: c.kind,
            bytes_per_rank: c.bytes_per_rank,
            full_group,
            chunking: c.chunking,
        });
    }

    let rep_ranks = (0..spec.world())
        .filter(|&r| grid.coords(r).dp == 0)
        .collect();
    Ok(FoldedJob {
        trace: b.build(meta),
        grad_bytes_per_rank,
        multiplicity: spec.dp as u32,
        rep_ranks,
        folded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_train;
    use charllm_hw::GpuModel;
    use charllm_models::presets;

    fn hints() -> DeviceHints {
        DeviceHints::for_spec(&GpuModel::H200.spec())
    }

    fn fold(job: &TrainJob, spec: ParallelismSpec, schedule: PipelineSchedule) -> FoldedJob {
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        lower_train_folded(job, &spec, schedule, &partition, &hints()).unwrap()
    }

    #[test]
    fn folded_trace_validates_and_keeps_world() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 2, 1, 64, false).unwrap(); // dp=4
        let f = fold(&job, spec, PipelineSchedule::OneFOneB);
        assert_eq!(f.trace.world(), 64);
        assert_eq!(f.multiplicity, 4);
        assert_eq!(f.rep_ranks.len(), 16);
        let problems = f.trace.validate();
        assert!(problems.is_empty(), "{problems:?}");
    }

    #[test]
    fn non_representative_streams_are_empty() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 2, 1, 64, false).unwrap();
        let f = fold(&job, spec, PipelineSchedule::OneFOneB);
        let grid = RankGrid::new(spec);
        for rank in 0..spec.world() {
            let empty = f.trace.steps(rank).is_empty();
            assert_eq!(grid.coords(rank).dp != 0, empty, "rank {rank}");
        }
    }

    #[test]
    fn folded_collectives_are_cross_replica_and_trimmed() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 2, 1, 64, false).unwrap();
        let f = fold(&job, spec, PipelineSchedule::OneFOneB);
        assert!(!f.folded.is_empty(), "grad sync must fold");
        let grid = RankGrid::new(spec);
        for fc in &f.folded {
            // Full group spans all dp values of one (tp, ep, pp) column.
            assert_eq!(fc.full_group.len() % spec.dp, 0);
            let inst = &f.trace.collectives()[fc.id.index()];
            assert!(inst.group.iter().all(|&r| grid.coords(r).dp == 0));
            assert!(inst.group.len() < fc.full_group.len());
        }
    }

    #[test]
    fn dp1_folds_to_identity() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap(); // dp=1
        let f = fold(&job, spec, PipelineSchedule::OneFOneB);
        assert_eq!(f.multiplicity, 1);
        assert!(f.folded.is_empty());
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        let unfolded = lower_train(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints(),
        )
        .unwrap();
        assert_eq!(f.trace, unfolded.trace);
    }

    #[test]
    fn intra_replica_collectives_keep_groups() {
        let job = TrainJob::pretrain(presets::mixtral_8x7b());
        let spec = ParallelismSpec::infer_dp(1, 2, 8, 64, false).unwrap(); // dp=4
        let f = fold(&job, spec, PipelineSchedule::OneFOneB);
        let grid = RankGrid::new(spec);
        let a2a = f
            .trace
            .collectives()
            .iter()
            .filter(|c| c.kind == CollectiveKind::AllToAll)
            .collect::<Vec<_>>();
        assert!(!a2a.is_empty());
        for c in a2a {
            // EP groups live inside one replica; all members survive.
            assert!(c.group.iter().all(|&r| grid.coords(r).dp == 0));
            assert_eq!(c.group.len(), spec.ep);
        }
    }
}
