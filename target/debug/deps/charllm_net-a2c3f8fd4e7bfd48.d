/root/repo/target/debug/deps/charllm_net-a2c3f8fd4e7bfd48.d: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/debug/deps/libcharllm_net-a2c3f8fd4e7bfd48.rlib: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/debug/deps/libcharllm_net-a2c3f8fd4e7bfd48.rmeta: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

crates/net/src/lib.rs:
crates/net/src/chunking.rs:
crates/net/src/collectives.rs:
crates/net/src/flow.rs:
crates/net/src/hierarchical.rs:
crates/net/src/projection.rs:
