//! Golden equivalence suite for the event-driven engine.
//!
//! The event-driven `Simulator` must produce **byte-identical** results to
//! the scan-based `ReferenceSimulator` (the seed engine, kept as the
//! executable spec in `charllm_sim::reference`). Equality is checked on the
//! serialized `SimResult` — every f64 in every field, bit for bit — across
//! lowered training workloads, NIC-crossing placements, and hand-built
//! traces covering each collective kind. The suite also pins determinism
//! (identical configs ⇒ identical bytes) and the payload-conservation
//! invariant from the residual-credit fix.

use charllm_hw::{presets, Cluster, GpuId, GpuModel, NodeLayout};
use charllm_models::{presets as models, TrainJob};
use charllm_net::{lower_collective, ChunkingPolicy, CollectiveKind};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::reference::ReferenceSimulator;
use charllm_sim::{SimConfig, Simulator};
use charllm_trace::builder::{CollKey, TraceBuilder};
use charllm_trace::lower::{lower_train, DeviceHints};
use charllm_trace::trace::TraceMeta;
use charllm_trace::{ComputeKind, ExecutionTrace};

fn one_node_cluster() -> Cluster {
    Cluster::new("8xH200", GpuModel::H200.spec(), NodeLayout::hgx(), 1).unwrap()
}

fn gpt3_trace(cluster: &Cluster, global_batch: usize) -> ExecutionTrace {
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(global_batch);
    let spec = ParallelismSpec::infer_dp(2, 2, 1, 8, false).unwrap();
    let partition = StagePartition::even(40, 2).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace
}

/// Run both engines on the same inputs and return their serialized results.
fn both_engines_json(
    cluster: &Cluster,
    trace: &ExecutionTrace,
    cfg: SimConfig,
) -> (String, String) {
    let placement = Placement::identity(cluster, trace.world()).unwrap();
    let new = Simulator::new(cluster, &placement, trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let reference = ReferenceSimulator::new(cluster, &placement, trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    (
        serde_json::to_string(&new).unwrap(),
        serde_json::to_string(&reference).unwrap(),
    )
}

#[test]
fn golden_equality_on_lowered_training_step() {
    // Multi-iteration so the plan cache serves hits and CollState pruning
    // fires; warmup so the measured/unmeasured traffic split is exercised.
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    let (new, reference) = both_engines_json(&cluster, &trace, cfg);
    assert_eq!(
        new, reference,
        "event-driven engine diverged from reference"
    );
}

#[test]
fn golden_equality_on_moe_expert_parallel_workload() {
    // Mixtral-style MoE under expert parallelism (tp1 pp4 ep8 dp1 on 32
    // GPUs / 4 nodes): the lowered trace carries AllToAll dispatch/combine
    // plus MoeGemm/Router kernels, none of which the dense GPT-3 workload
    // exercises. Both engines must agree bit-for-bit here too.
    let cluster = presets::hgx_h200_with_nodes(4);
    let job = TrainJob::pretrain(models::mixtral_8x7b()).with_global_batch(8);
    let spec = ParallelismSpec::infer_dp(1, 4, 8, 32, false).unwrap();
    let partition = StagePartition::even(32, 4).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let trace = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace;
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    cfg.warmup_iterations = 1;
    let (new, reference) = both_engines_json(&cluster, &trace, cfg);
    assert_eq!(
        new, reference,
        "event-driven engine diverged from reference on MoE/EP workload"
    );
}

#[test]
fn golden_equality_with_forced_heap_scheduler() {
    // `sched_heap_threshold: 0` pins the event-driven engine to the
    // completion heap for every event (the default keeps small worlds on
    // the linear scan). The heap must reproduce the reference bit-for-bit:
    // conservative lower-bound keys, epoch invalidation, and the
    // re-tighten-on-pop path all under test, with thermal feedback on so
    // frequency steps force compute re-keys mid-run.
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 3;
    cfg.warmup_iterations = 1;
    cfg.sched_heap_threshold = 0;
    let (new, reference) = both_engines_json(&cluster, &trace, cfg);
    assert_eq!(new, reference, "heap scheduler diverged from reference");
}

#[test]
fn scheduler_modes_agree_across_crossings() {
    // A mid-range threshold makes the live-entity count cross it both ways
    // during a pipelined step, exercising heap↔scan transitions (including
    // the link-membership rebuild on each upward crossing). Forced-scan,
    // forced-heap, and the crossing run must all serialize identically.
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let run = |threshold: usize| {
        let mut cfg = SimConfig::fast();
        cfg.iterations = 2;
        cfg.sched_heap_threshold = threshold;
        let r = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .run()
            .unwrap();
        serde_json::to_string(&r).unwrap()
    };
    let scan = run(usize::MAX);
    let crossing = run(6);
    let heap = run(0);
    assert_eq!(scan, crossing, "mode crossings perturbed results");
    assert_eq!(scan, heap, "forced heap diverged from forced scan");
}

#[test]
fn golden_equality_with_thermal_feedback_disabled() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 8);
    let mut cfg = SimConfig::fast();
    cfg.thermal_feedback = false;
    let (new, reference) = both_engines_json(&cluster, &trace, cfg);
    assert_eq!(new, reference);
}

#[test]
fn golden_equality_across_nic_routes() {
    // One GPU per node: every collective crosses PCIe + NIC links, so the
    // charge lists and store-and-forward work factors differ from HGX.
    let spread = presets::single_gpu_per_node_cluster(8);
    let trace = gpt3_trace(&one_node_cluster(), 8);
    let mut cfg = SimConfig::fast();
    cfg.thermal_feedback = false;
    let (new, reference) = both_engines_json(&spread, &trace, cfg);
    assert_eq!(new, reference);
}

#[test]
fn golden_equality_on_every_collective_kind() {
    // Hand-built trace covering the lowering paths the training workload
    // does not: AllToAll, Broadcast, AllGather, ReduceScatter, eager p2p.
    let cluster = one_node_cluster();
    let mut b = TraceBuilder::new(4);
    let group = vec![0, 1, 2, 3];
    let mk = |b: &mut TraceBuilder, site, kind, bytes, eager| {
        b.collective(
            CollKey {
                site,
                mb: 0,
                layer: 0,
                aux: 0,
                group_lead: 0,
            },
            kind,
            bytes,
            if eager { vec![0, 1] } else { group.clone() },
            ChunkingPolicy::nccl_default(),
            eager,
        )
    };
    for rank in 0..4 {
        b.compute(rank, ComputeKind::Attention, 1e11 * (rank + 1) as f64);
    }
    let a2a = mk(&mut b, "a2a", CollectiveKind::AllToAll, 1 << 22, false);
    let bc = mk(&mut b, "bcast", CollectiveKind::Broadcast, 1 << 21, false);
    let ag = mk(&mut b, "ag", CollectiveKind::AllGather, 1 << 20, false);
    let rs = mk(&mut b, "rs", CollectiveKind::ReduceScatter, 1 << 20, false);
    let p2p = mk(&mut b, "p2p", CollectiveKind::SendRecv, 1 << 19, true);
    b.start(0, p2p); // eager sender
    for rank in 0..4 {
        b.blocking(rank, a2a);
        b.compute(rank, ComputeKind::Gemm, 5e10);
        b.blocking(rank, bc);
        b.blocking(rank, ag);
        b.blocking(rank, rs);
    }
    b.wait(1, p2p); // receiver drains the eager send last
    let trace = b.build(TraceMeta {
        tokens_per_iteration: 128,
        ..Default::default()
    });
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    let (new, reference) = both_engines_json(&cluster, &trace, cfg);
    assert_eq!(new, reference);
}

#[test]
fn parallel_rerate_is_deterministic_at_512_gpus_under_faults() {
    // 512-GPU unfolded run (tp4 pp8 dp16), forced into heap mode, with a
    // fault plan that degrades a hot link and slows a straggler rank —
    // exactly the workload whose dirty-flow re-rate batches fan out over
    // scoped workers. The index-ordered write-back must make any worker
    // count produce byte-identical results; this pins workers=4 against
    // the all-serial workers=1 run and checks the parallel path actually
    // fired (batches ≥ the fan-out threshold exist at this scale).
    use charllm_sim::FaultPlan;

    let cluster = presets::hgx_h200_with_nodes(64);
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(128);
    let spec = ParallelismSpec::infer_dp(4, 8, 1, cluster.num_gpus(), false).unwrap();
    let partition = StagePartition::even(40, 8).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let trace = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
        .unwrap()
        .trace;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let plan = FaultPlan::none()
        .link_degrade(0, 0.05, 0.4, 0.25)
        .straggler(17, 0.02, 0.5, 1.7);
    let run = |workers: usize| {
        let mut cfg = SimConfig::fast();
        cfg.iterations = 1;
        cfg.warmup_iterations = 0;
        cfg.sched_heap_threshold = 0;
        cfg.rerate_workers = workers;
        let (r, stats) = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .with_faults(&plan)
            .unwrap()
            .run_stats()
            .unwrap();
        (serde_json::to_string(&r).unwrap(), stats)
    };
    let (serial, serial_stats) = run(1);
    let (parallel, parallel_stats) = run(4);
    assert_eq!(
        serial_stats.parallel_rerate_batches, 0,
        "workers=1 must never fan out"
    );
    assert!(
        parallel_stats.parallel_rerate_batches > 0,
        "512-GPU dirty-flow batches should exceed the fan-out threshold"
    );
    assert!(
        parallel_stats.arena_slot_reuses > 0,
        "steady-state launches should recycle arena slots"
    );
    assert_eq!(serial, parallel, "worker count changed simulation results");
}

#[test]
fn identical_configs_produce_byte_identical_results() {
    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let run = || {
        let r = Simulator::new(&cluster, &placement, &trace, cfg)
            .unwrap()
            .run()
            .unwrap();
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(run(), run(), "same seed + config must be deterministic");
}

/// Sum of payload bytes over the flows a collective actually launches
/// (dropping on-device and zero-work flows, like the engine does).
fn lowered_payload_bytes(
    cluster: &Cluster,
    kind: CollectiveKind,
    bytes: u64,
    gpus: &[GpuId],
    chunking: ChunkingPolicy,
) -> f64 {
    let plan = lower_collective(kind, bytes, gpus, cluster, chunking).unwrap();
    plan.flows
        .iter()
        .filter(|f| {
            let route = f.route(cluster).unwrap();
            !route.is_empty() && f.work_bytes(cluster, &route) > 0.0
        })
        .map(|f| f.bytes as f64)
        .sum()
}

#[test]
fn fabric_traffic_equals_lowered_payload() {
    // 2-rank intra-node AllReduce: each flow rides one NVLink fabric port
    // pair, charging both endpoints, so total fabric traffic must equal
    // exactly 2 × the lowered payload. Before the residual-credit fix each
    // flow silently dropped up to one byte-equivalent of work (a relative
    // error around 1e-6 on this payload), which this tolerance rejects.
    let cluster = one_node_cluster();
    let bytes = 1 << 20;
    let mut b = TraceBuilder::new(2);
    let id = b.collective(
        CollKey {
            site: "ar",
            mb: 0,
            layer: 0,
            aux: 0,
            group_lead: 0,
        },
        CollectiveKind::AllReduce,
        bytes,
        vec![0, 1],
        ChunkingPolicy::nccl_default(),
        false,
    );
    b.blocking(0, id);
    b.blocking(1, id);
    let trace = b.build(TraceMeta {
        tokens_per_iteration: 1,
        ..Default::default()
    });
    let placement = Placement::identity(&cluster, 2).unwrap();
    let mut cfg = SimConfig::fast();
    cfg.thermal_feedback = false;
    let r = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let payload = lowered_payload_bytes(
        &cluster,
        CollectiveKind::AllReduce,
        bytes,
        &[GpuId(0), GpuId(1)],
        ChunkingPolicy::nccl_default(),
    );
    let measured: f64 = (0..2).map(|g| r.traffic.fabric(g)).sum();
    let expected = 2.0 * payload;
    let rel = (measured - expected).abs() / expected;
    assert!(
        rel < 1e-9,
        "fabric traffic {measured} vs expected {expected} (rel err {rel:e})"
    );
}

#[test]
fn pcie_traffic_equals_lowered_payload_across_nodes() {
    // Inter-node SendRecv: the route is pcie(src) → nic → nic → pcie(dst),
    // so each endpoint's PCIe lane carries the full payload once.
    let cluster = presets::single_gpu_per_node_cluster(2);
    let bytes = 1 << 20;
    let mut b = TraceBuilder::new(2);
    let id = b.collective(
        CollKey {
            site: "p2p",
            mb: 0,
            layer: 0,
            aux: 0,
            group_lead: 0,
        },
        CollectiveKind::SendRecv,
        bytes,
        vec![0, 1],
        ChunkingPolicy::Unchunked,
        true,
    );
    b.start(0, id);
    b.wait(1, id);
    let trace = b.build(TraceMeta {
        tokens_per_iteration: 1,
        ..Default::default()
    });
    let placement = Placement::identity(&cluster, 2).unwrap();
    let mut cfg = SimConfig::fast();
    cfg.thermal_feedback = false;
    let r = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let payload = lowered_payload_bytes(
        &cluster,
        CollectiveKind::SendRecv,
        bytes,
        &[GpuId(0), GpuId(1)],
        ChunkingPolicy::Unchunked,
    );
    let measured: f64 = (0..2).map(|g| r.traffic.pcie(g)).sum();
    let expected = 2.0 * payload;
    let rel = (measured - expected).abs() / expected;
    assert!(
        rel < 1e-9,
        "pcie traffic {measured} vs expected {expected} (rel err {rel:e})"
    );
}

#[test]
fn shared_plans_preserve_results_and_count_hits() {
    // Two runs of the same (cluster, placement, trace) triple sharing one
    // plan set: the first builds and publishes every collective plan, the
    // second clones them all instead of lowering — with byte-identical
    // results to an unshared run.
    use charllm_sim::SharedPlans;
    use std::sync::Arc;

    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let mut cfg = SimConfig::fast();
    cfg.iterations = 2;
    cfg.warmup_iterations = 1;

    let baseline = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .run()
        .unwrap();
    let baseline = serde_json::to_string(&baseline).unwrap();

    let shared = Arc::new(SharedPlans::for_trace(&trace));
    let (first, first_stats) = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .with_shared_plans(Arc::clone(&shared))
        .unwrap()
        .run_stats()
        .unwrap();
    assert_eq!(first_stats.shared_plan_hits, 0, "cold set serves nothing");
    assert!(first_stats.plan_builds > 0);
    assert_eq!(
        shared.num_built() as u64,
        first_stats.plan_builds,
        "every built plan is published"
    );

    let (second, second_stats) = Simulator::new(&cluster, &placement, &trace, cfg)
        .unwrap()
        .with_shared_plans(Arc::clone(&shared))
        .unwrap()
        .run_stats()
        .unwrap();
    assert_eq!(second_stats.plan_builds, 0, "warm set builds nothing");
    assert_eq!(
        second_stats.shared_plan_hits, first_stats.plan_builds,
        "every launch's first plan lookup is a shared hit"
    );

    assert_eq!(serde_json::to_string(&first).unwrap(), baseline);
    assert_eq!(serde_json::to_string(&second).unwrap(), baseline);
}

#[test]
fn shared_plans_reject_foreign_traces() {
    use charllm_sim::{SharedPlans, SimError};
    use std::sync::Arc;

    let cluster = one_node_cluster();
    let trace = gpt3_trace(&cluster, 16);
    let other = gpt3_trace(&cluster, 8);
    let placement = Placement::identity(&cluster, trace.world()).unwrap();
    let shared = Arc::new(SharedPlans::for_trace(&other));
    let err = Simulator::new(&cluster, &placement, &trace, SimConfig::fast())
        .unwrap()
        .with_shared_plans(shared)
        .err();
    assert!(
        matches!(err, Some(SimError::PlanSetMismatch { .. })),
        "differently sized plan set must be rejected, got {err:?}"
    );
}
