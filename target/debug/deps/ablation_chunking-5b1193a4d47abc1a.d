/root/repo/target/debug/deps/ablation_chunking-5b1193a4d47abc1a.d: crates/bench/benches/ablation_chunking.rs

/root/repo/target/debug/deps/ablation_chunking-5b1193a4d47abc1a: crates/bench/benches/ablation_chunking.rs

crates/bench/benches/ablation_chunking.rs:
