/root/repo/target/debug/deps/charllm_net-3aaecb10a32d8143.d: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_net-3aaecb10a32d8143.rmeta: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/chunking.rs:
crates/net/src/collectives.rs:
crates/net/src/flow.rs:
crates/net/src/hierarchical.rs:
crates/net/src/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
