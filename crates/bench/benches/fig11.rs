//! Figure 11: breakdown of latency by kernel for Llama3-70B training across
//! pipeline-parallel ranks, without overlap (top) and with CC-overlap
//! (bottom) — overlap replaces exposed communication with finer kernels but
//! elongates compute through contention.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, try_run};
use charllm_trace::KernelClass;

fn main() {
    banner(
        "Figure 11",
        "per-pipeline-rank kernel breakdown, Llama3-70B, ± cc-overlap",
    );
    let cluster = hgx_h200_cluster();
    let spec = ParallelismSpec::parse("TP4-PP4", cluster.num_gpus()).expect("paper config");
    let base = bench_job(llama3_70b()).with_recompute(true);
    let mut json = serde_json::Map::new();
    for (tag, job) in [
        ("no-overlap", base.clone()),
        ("cc-overlap", base.with_cc_overlap(true)),
    ] {
        let Some(r) = try_run(&cluster, &job, spec) else {
            continue;
        };
        println!("\n--- {tag} (step {:.2}s) ---", r.step_time_s);
        println!(
            "{:<6} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "rank", "GEMM", "Attn", "SendRecv", "AllRed", "comm tot"
        );
        let mut per_rank = Vec::new();
        for (rank, k) in r.sim.kernel_time.iter().enumerate() {
            if rank % 4 == 0 {
                // One rank per TP group is representative.
                println!(
                    "{:<6} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
                    rank,
                    k.get(KernelClass::Gemm),
                    k.get(KernelClass::Attention),
                    k.get(KernelClass::SendRecv),
                    k.get(KernelClass::AllReduce),
                    k.comm_total(),
                );
            }
            per_rank.push(serde_json::json!({
                "rank": rank,
                "gemm_s": k.get(KernelClass::Gemm),
                "comm_s": k.comm_total(),
            }));
        }
        let mean = r.mean_kernel_time();
        println!(
            "mean compute {:.2}s, mean exposed comm {:.2}s",
            mean.compute_total(),
            mean.comm_total()
        );
        json.insert(
            tag.to_string(),
            serde_json::json!({
                "step_s": r.step_time_s,
                "mean_compute_s": mean.compute_total(),
                "mean_comm_s": mean.comm_total(),
                "per_rank": per_rank,
            }),
        );
    }
    save_json("fig11", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: overlap reduces exposed communication time but\n\
         compute kernel time grows (SM/memory contention), so the net gain\n\
         depends on how communication-bound the configuration is."
    );
}
