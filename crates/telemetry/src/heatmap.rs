//! Labeled 2-D heatmaps with the paper's row normalization.
//!
//! Figures 17b/18b normalize each row (configuration) so its minimum maps
//! to 0 and maximum to 1; Figure 5 plots absolute per-GPU traffic.

use serde::{Deserialize, Serialize};

/// A labeled matrix of values (rows = configurations, cols = GPUs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Row labels (e.g. parallelism configs).
    pub rows: Vec<String>,
    /// Column labels (e.g. GPU ids).
    pub cols: Vec<String>,
    values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Build from labels and a row-major value matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape does not match the labels.
    pub fn new(rows: Vec<String>, cols: Vec<String>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(rows.len(), values.len(), "row label count");
        for r in &values {
            assert_eq!(cols.len(), r.len(), "column label count");
        }
        Heatmap { rows, cols, values }
    }

    /// Value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[row][col]
    }

    /// A full row.
    pub fn row(&self, row: usize) -> &[f64] {
        &self.values[row]
    }

    /// Row-normalize: per row, min → 0 and max → 1 (constant rows become 0).
    pub fn normalized_rows(&self) -> Heatmap {
        let values = self
            .values
            .iter()
            .map(|row| {
                let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let min = row.iter().copied().fold(f64::INFINITY, f64::min);
                let span = max - min;
                row.iter()
                    .map(|&v| if span > 0.0 { (v - min) / span } else { 0.0 })
                    .collect()
            })
            .collect();
        Heatmap {
            rows: self.rows.clone(),
            cols: self.cols.clone(),
            values,
        }
    }

    /// Render as a CSV table (header row of column labels).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config");
        for c in &self.cols {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, row) in self.rows.iter().zip(&self.values) {
            out.push_str(label);
            for v in row {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Render as an aligned ASCII table for terminal output.
    pub fn to_ascii(&self) -> String {
        let width = 8;
        let label_w = self.rows.iter().map(String::len).max().unwrap_or(6).max(6);
        let mut out = format!("{:label_w$}", "");
        for c in &self.cols {
            out.push_str(&format!(" {c:>width$}"));
        }
        out.push('\n');
        for (label, row) in self.rows.iter().zip(&self.values) {
            out.push_str(&format!("{label:label_w$}"));
            for v in row {
                out.push_str(&format!(" {v:>width$.3}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> Heatmap {
        Heatmap::new(
            vec!["a".into(), "b".into()],
            vec!["g0".into(), "g1".into(), "g2".into()],
            vec![vec![1.0, 2.0, 3.0], vec![5.0, 5.0, 5.0]],
        )
    }

    #[test]
    fn normalization_maps_min_to_0_max_to_1() {
        let n = map().normalized_rows();
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(0, 2), 1.0);
        assert!((n.get(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_rows_normalize_to_zero() {
        let n = map().normalized_rows();
        assert_eq!(n.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = map().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("config,g0,g1,g2"));
        assert!(lines[1].starts_with("a,1.0000"));
    }

    #[test]
    fn golden_csv_and_row_normalization() {
        // Exact golden output: pins the header, the 4-decimal formatting,
        // and the min→0 / max→1 row normalization in one comparison.
        assert_eq!(
            map().to_csv(),
            "config,g0,g1,g2\n\
             a,1.0000,2.0000,3.0000\n\
             b,5.0000,5.0000,5.0000\n"
        );
        assert_eq!(
            map().normalized_rows().to_csv(),
            "config,g0,g1,g2\n\
             a,0.0000,0.5000,1.0000\n\
             b,0.0000,0.0000,0.0000\n"
        );
    }

    #[test]
    fn ascii_contains_labels() {
        let s = map().to_ascii();
        assert!(s.contains("g1"));
        assert!(s.contains('b'));
    }

    #[test]
    #[should_panic(expected = "column label count")]
    fn shape_mismatch_panics() {
        Heatmap::new(vec!["a".into()], vec!["c".into()], vec![vec![1.0, 2.0]]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn normalized_rows_stay_in_unit_interval(
            values in proptest::collection::vec(
                proptest::collection::vec(-1e6f64..1e6, 1..16),
                1..8,
            ),
        ) {
            let cols = values[0].len();
            let values: Vec<Vec<f64>> =
                values.into_iter().map(|mut r| { r.resize(cols, 0.0); r }).collect();
            let rows = values.len();
            let h = Heatmap::new(
                (0..rows).map(|i| format!("r{i}")).collect(),
                (0..cols).map(|i| format!("c{i}")).collect(),
                values,
            );
            let n = h.normalized_rows();
            for r in 0..rows {
                for c in 0..cols {
                    let v = n.get(r, c);
                    prop_assert!((0.0..=1.0).contains(&v), "({r},{c}) = {v}");
                }
            }
        }
    }
}
