/root/repo/target/debug/deps/charllm_bench-301482798d8fabb3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcharllm_bench-301482798d8fabb3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcharllm_bench-301482798d8fabb3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
