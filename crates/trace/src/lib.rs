//! Kernel task-graph IR and workload lowering for CharLLM-PPT.
//!
//! The Rust stand-in for the paper's Chakra execution traces: a per-rank
//! stream of [`Step`]s (compute kernels, collective arrivals and waits)
//! plus a table of [`CollectiveInstance`]s shared between ranks.
//!
//! [`lower`] turns a `(TrainJob × ParallelismSpec × PipelineSchedule)` into
//! an [`ExecutionTrace`] implementing the semantics of the paper's stack:
//!
//! - Megatron tensor parallelism: two AllReduces per layer in forward and
//!   two in backward across the TP group;
//! - 1F1B (and interleaved) pipeline schedules with eager activation
//!   SendRecv between stage-boundary ranks — unchunked, matching the
//!   paper's observed PCIe underutilization;
//! - expert parallelism: token dispatch/combine All-to-All around every
//!   expert GEMM (top-2 routing);
//! - ZeRO-1 distributed optimizer (ReduceScatter + AllGather), plain DP
//!   AllReduce, and FSDP per-layer parameter gathers;
//! - activation recomputation, compute–communication overlap, LoRA
//!   finetuning and inference (prefill/decode) variants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod lower;
pub mod task;
pub mod trace;

pub use builder::TraceBuilder;
pub use task::{CollectiveInstance, ComputeKind, KernelClass, Step};
pub use trace::ExecutionTrace;

pub use lower::{
    lower_inference, lower_train, lower_train_folded, DeviceHints, FoldedCollective, FoldedJob,
    InferenceConfig, LoweredJob, TraceError,
};
