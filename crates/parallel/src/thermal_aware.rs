//! Thermal-aware pipeline-parallel placement (§6 of the paper).
//!
//! The paper's strategy: each pipeline stage is a 4-way tensor-parallel
//! group, two stages per node, DP disabled. Instead of grouping GPUs by
//! consecutive device IDs (which mixes intake and exhaust devices in every
//! stage), hot and cold GPUs are clustered into separate stages, with colder
//! GPUs handling the early (heavier, embedding-bearing) stages. The
//! *asymmetric* variant additionally gives cooler stages an extra layer.

use charllm_hw::Cluster;

use crate::error::ParallelError;
use crate::memory::StagePartition;
use crate::placement::Placement;
use crate::spec::ParallelismSpec;

/// The §6 parallelism spec for a cluster: TP4, PP = GPUs/4, DP = EP = 1.
///
/// # Errors
///
/// Returns [`ParallelError::InvalidPlacement`] when the cluster size is not
/// divisible into 4-GPU stages with two stages per node.
pub fn thermal_pp_spec(cluster: &Cluster) -> Result<ParallelismSpec, ParallelError> {
    let world = cluster.num_gpus();
    if !world.is_multiple_of(4) || cluster.gpus_per_node() != 8 {
        return Err(ParallelError::InvalidPlacement(format!(
            "thermal-aware placement expects 8-GPU nodes and world divisible by 4, got {} nodes \
             of {}",
            cluster.num_nodes(),
            cluster.gpus_per_node()
        )));
    }
    ParallelismSpec::new(4, world / 4, 1, 1, false)
}

/// The conventional baseline: stages over consecutive device IDs, which
/// mixes front (cool) and rear (hot) GPUs within every stage.
pub fn baseline_placement(cluster: &Cluster) -> Result<Placement, ParallelError> {
    let spec = thermal_pp_spec(cluster)?;
    Placement::identity(cluster, spec.world())
}

/// The symmetric thermal-aware placement: each stage is either all-front or
/// all-rear GPUs of one node, with the *cold* (front) stage of each node
/// placed earlier in the pipeline.
pub fn symmetric_placement(cluster: &Cluster) -> Result<Placement, ParallelError> {
    let spec = thermal_pp_spec(cluster)?;
    let airflow = &cluster.node_layout().airflow;
    let front = airflow.front_slots();
    let rear = airflow.rear_slots().to_vec();
    if front.len() != 4 || rear.len() != 4 {
        return Err(ParallelError::InvalidPlacement(
            "thermal-aware placement expects 4 front and 4 rear slots".into(),
        ));
    }
    let mut gpu_of_rank = Vec::with_capacity(spec.world());
    for stage in 0..spec.pp {
        let node = charllm_hw::NodeId((stage / 2) as u32);
        // Even stage within the node pair -> cold (front) slots.
        let slots = if stage % 2 == 0 { &front } else { &rear };
        for &slot in slots.iter() {
            gpu_of_rank.push(cluster.gpu_at(node, slot));
        }
    }
    Placement::from_table(cluster, gpu_of_rank)
}

/// Whether a pipeline stage lands on cold (front) GPUs under
/// [`symmetric_placement`].
pub fn is_cold_stage(stage: usize) -> bool {
    stage.is_multiple_of(2)
}

/// The asymmetric layer partition: cold stages get one extra layer, hot
/// stages one fewer (the paper's 21/19 split for Llama3-70B and 13/11 for
/// GPT3-175B).
///
/// # Errors
///
/// Returns [`ParallelError::InvalidPartition`] if stages is odd or the even
/// base split is impossible.
pub fn asymmetric_partition(layers: usize, stages: usize) -> Result<StagePartition, ParallelError> {
    if stages == 0 || !stages.is_multiple_of(2) {
        return Err(ParallelError::InvalidPartition(format!(
            "asymmetric split needs an even stage count, got {stages}"
        )));
    }
    if !layers.is_multiple_of(stages) {
        return Err(ParallelError::NotDivisible {
            what: "layers",
            value: layers,
            by: stages,
        });
    }
    let base = layers / stages;
    if base < 2 {
        return Err(ParallelError::InvalidPartition(
            "stages too shallow to shift a layer".into(),
        ));
    }
    let per_stage = (0..stages)
        .map(|s| if is_cold_stage(s) { base + 1 } else { base - 1 })
        .collect();
    StagePartition::explicit(layers, per_stage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;

    #[test]
    fn spec_is_tp4_two_stages_per_node() {
        let c = presets::hgx_h200_cluster();
        let s = thermal_pp_spec(&c).unwrap();
        assert_eq!(s.tp, 4);
        assert_eq!(s.pp, 8);
        assert_eq!(s.dp, 1);
        assert_eq!(s.world(), 32);
    }

    #[test]
    fn baseline_mixes_front_and_rear_in_each_stage() {
        let c = presets::hgx_h200_cluster();
        let p = baseline_placement(&c).unwrap();
        let airflow = &c.node_layout().airflow;
        // Stage 0 = ranks 0..4 = devices 0..4 = slots 0,1,2,3: 2 front, 2 rear.
        let rear_count = (0..4)
            .filter(|&r| airflow.is_rear(c.slot_of(p.gpu(r))))
            .count();
        assert_eq!(rear_count, 2);
    }

    #[test]
    fn symmetric_separates_front_and_rear() {
        let c = presets::hgx_h200_cluster();
        let p = symmetric_placement(&c).unwrap();
        let airflow = &c.node_layout().airflow;
        let spec = thermal_pp_spec(&c).unwrap();
        for stage in 0..spec.pp {
            let rear: Vec<bool> = (0..4)
                .map(|t| airflow.is_rear(c.slot_of(p.gpu(stage * 4 + t))))
                .collect();
            if is_cold_stage(stage) {
                assert!(rear.iter().all(|&r| !r), "cold stage {stage} has rear gpus");
            } else {
                assert!(rear.iter().all(|&r| r), "hot stage {stage} has front gpus");
            }
        }
    }

    #[test]
    fn symmetric_stage_pairs_stay_in_one_node() {
        let c = presets::hgx_h200_cluster();
        let p = symmetric_placement(&c).unwrap();
        for stage in 0..8usize {
            let node = c.node_of(p.gpu(stage * 4));
            for t in 1..4 {
                assert_eq!(c.node_of(p.gpu(stage * 4 + t)), node);
            }
            assert_eq!(node.index(), stage / 2);
        }
    }

    #[test]
    fn symmetric_placement_covers_distinct_gpus() {
        let c = presets::hgx_h200_cluster();
        let p = symmetric_placement(&c).unwrap();
        let mut gpus: Vec<_> = (0..32).map(|r| p.gpu(r)).collect();
        gpus.sort();
        gpus.dedup();
        assert_eq!(gpus.len(), 32);
    }

    #[test]
    fn paper_asymmetric_splits_match() {
        // Llama3-70B: 80 layers / 4 stages -> 21/19 with 10% imbalance.
        let p = asymmetric_partition(80, 4).unwrap();
        assert_eq!((p.layers(0), p.layers(1)), (21, 19));
        assert!((p.imbalance() - 0.10).abs() < 1e-9);
        // GPT3-175B: 96 layers / 8 stages -> 13/11 with ~18% imbalance.
        let p = asymmetric_partition(96, 8).unwrap();
        assert_eq!((p.layers(0), p.layers(1)), (13, 11));
        assert!((p.imbalance() - 2.0 / 12.0).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_rejects_odd_stage_counts() {
        assert!(asymmetric_partition(81, 3).is_err());
        assert!(asymmetric_partition(80, 5).is_err());
    }

    #[test]
    fn single_gpu_nodes_rejected() {
        let c = presets::single_gpu_per_node_cluster(4);
        assert!(thermal_pp_spec(&c).is_err());
    }
}
