/root/repo/target/debug/deps/fig06-1fc0d61532bafea9.d: crates/bench/benches/fig06.rs

/root/repo/target/debug/deps/fig06-1fc0d61532bafea9: crates/bench/benches/fig06.rs

crates/bench/benches/fig06.rs:
