//! The evaluated model configurations (Table 1) plus the scaled-down
//! variants used on the AMD cluster and in the 1-GPU-per-node study.

use crate::arch::{MoeConfig, TransformerArch};

/// GPT3-175B: 96 layers, hidden 12288, 96 heads (Brown et al. 2020).
pub fn gpt3_175b() -> TransformerArch {
    TransformerArch {
        name: "GPT3-175B".to_string(),
        num_layers: 96,
        hidden: 12288,
        num_heads: 96,
        num_kv_heads: 96,
        ffn_hidden: 4 * 12288,
        vocab: 50257,
        gated_mlp: false,
        tied_embeddings: true,
        moe: None,
        default_seq_len: 2048,
    }
}

/// GPT3-30B: the paper's scaled-down GPT-3 for the MI250 cluster.
pub fn gpt3_30b() -> TransformerArch {
    TransformerArch {
        name: "GPT3-30B".to_string(),
        num_layers: 48,
        hidden: 7168,
        num_heads: 56,
        num_kv_heads: 56,
        ffn_hidden: 4 * 7168,
        vocab: 50257,
        gated_mlp: false,
        tied_embeddings: true,
        moe: None,
        default_seq_len: 2048,
    }
}

/// GPT3-13B: used in the 1-GPU-per-node interconnect study (Fig. 8).
pub fn gpt3_13b() -> TransformerArch {
    TransformerArch {
        name: "GPT3-13B".to_string(),
        num_layers: 40,
        hidden: 5120,
        num_heads: 40,
        num_kv_heads: 40,
        ffn_hidden: 4 * 5120,
        vocab: 50257,
        gated_mlp: false,
        tied_embeddings: true,
        moe: None,
        default_seq_len: 2048,
    }
}

/// Llama3-70B: 80 layers, hidden 8192, GQA with 8 KV heads.
pub fn llama3_70b() -> TransformerArch {
    TransformerArch {
        name: "Llama3-70B".to_string(),
        num_layers: 80,
        hidden: 8192,
        num_heads: 64,
        num_kv_heads: 8,
        ffn_hidden: 28672,
        vocab: 128256,
        gated_mlp: true,
        tied_embeddings: false,
        moe: None,
        default_seq_len: 4096,
    }
}

/// Llama3-30B: the paper's proportionally scaled Llama-3 for MI250
/// ("maintaining proportional relationships among key architectural
/// parameters").
pub fn llama3_30b() -> TransformerArch {
    TransformerArch {
        name: "Llama3-30B".to_string(),
        num_layers: 60,
        hidden: 6144,
        num_heads: 48,
        num_kv_heads: 8,
        ffn_hidden: 21504,
        vocab: 128256,
        gated_mlp: true,
        tied_embeddings: false,
        moe: None,
        default_seq_len: 4096,
    }
}

/// Mixtral-8x22B: 56 layers, 8 experts, top-2 routing (141B total params).
pub fn mixtral_8x22b() -> TransformerArch {
    TransformerArch {
        name: "Mixtral-8x22B".to_string(),
        num_layers: 56,
        hidden: 6144,
        num_heads: 48,
        num_kv_heads: 8,
        ffn_hidden: 16384,
        vocab: 32000,
        gated_mlp: true,
        tied_embeddings: false,
        moe: Some(MoeConfig {
            num_experts: 8,
            top_k: 2,
        }),
        default_seq_len: 4096,
    }
}

/// Mixtral-8x7B: 32 layers, 8 experts, top-2 routing (47B total params).
pub fn mixtral_8x7b() -> TransformerArch {
    TransformerArch {
        name: "Mixtral-8x7B".to_string(),
        num_layers: 32,
        hidden: 4096,
        num_heads: 32,
        num_kv_heads: 8,
        ffn_hidden: 14336,
        vocab: 32000,
        gated_mlp: true,
        tied_embeddings: false,
        moe: Some(MoeConfig {
            num_experts: 8,
            top_k: 2,
        }),
        default_seq_len: 4096,
    }
}

/// Mixtral-4x7B: the paper's reduced Mixtral for the 1-GPU-per-node study.
pub fn mixtral_4x7b() -> TransformerArch {
    TransformerArch {
        name: "Mixtral-4x7B".to_string(),
        moe: Some(MoeConfig {
            num_experts: 4,
            top_k: 2,
        }),
        ..mixtral_8x7b()
    }
}

/// Every model preset, in the order Table 1 lists them (plus the scaled
/// variants appended).
pub fn all_models() -> Vec<TransformerArch> {
    vec![
        gpt3_175b(),
        gpt3_30b(),
        llama3_70b(),
        llama3_30b(),
        mixtral_8x22b(),
        mixtral_8x7b(),
        gpt3_13b(),
        mixtral_4x7b(),
    ]
}

/// Look up a preset by its display name.
pub fn by_name(name: &str) -> Option<TransformerArch> {
    all_models().into_iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_param_count(arch: &TransformerArch, expected: f64, tol: f64) {
        let got = arch.total_params() as f64;
        let rel = (got - expected).abs() / expected;
        assert!(
            rel < tol,
            "{}: expected ~{expected:e}, got {got:e} (rel {rel:.3})",
            arch.name
        );
    }

    #[test]
    fn table1_parameter_sizes() {
        assert_param_count(&gpt3_175b(), 175e9, 0.03);
        assert_param_count(&gpt3_30b(), 30e9, 0.05);
        assert_param_count(&llama3_70b(), 70e9, 0.03);
        assert_param_count(&llama3_30b(), 30e9, 0.05);
        assert_param_count(&mixtral_8x22b(), 141e9, 0.05);
        assert_param_count(&mixtral_8x7b(), 47e9, 0.03);
    }

    #[test]
    fn scaled_variants_are_smaller() {
        assert_param_count(&gpt3_13b(), 13e9, 0.05);
        assert!(mixtral_4x7b().total_params() < mixtral_8x7b().total_params());
    }

    #[test]
    fn moe_presets_are_marked_sparse() {
        assert!(mixtral_8x22b().is_moe());
        assert!(mixtral_8x7b().is_moe());
        assert!(!gpt3_175b().is_moe());
        assert!(!llama3_70b().is_moe());
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("GPT3-175B").unwrap().num_layers, 96);
        assert!(by_name("GPT5-1T").is_none());
    }

    #[test]
    fn all_models_unique_names() {
        let models = all_models();
        let mut names: Vec<_> = models.iter().map(|m| m.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), models.len());
    }
}
