/root/repo/target/debug/deps/charllm_sim-5d35cd4db6cb7a9a.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/charllm_sim-5d35cd4db6cb7a9a: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
