/root/repo/target/debug/deps/fig22-6bcfb77eb28055b1.d: crates/bench/benches/fig22.rs Cargo.toml

/root/repo/target/debug/deps/libfig22-6bcfb77eb28055b1.rmeta: crates/bench/benches/fig22.rs Cargo.toml

crates/bench/benches/fig22.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
