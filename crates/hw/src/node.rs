//! Node (server) layout: GPUs, intra-node fabric and packaging.

use serde::{Deserialize, Serialize};

use crate::airflow::AirflowLayout;
use crate::error::HwError;
use crate::link::LinkSpec;

/// The kind of intra-node GPU fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// NVLink ports into a non-blocking NVSwitch plane (HGX systems).
    NvSwitch,
    /// AMD xGMI: a fast intra-package hop plus lower-bandwidth inter-package
    /// ports (chiplet MI250 systems).
    Xgmi,
}

/// Layout of one server node.
///
/// All nodes of a [`crate::Cluster`] share the same layout; per-GPU silicon
/// variability is applied downstream by the thermal crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLayout {
    /// Number of logical GPUs (GCDs for MI250) in the node.
    pub gpus_per_node: usize,
    /// Fabric connecting GPUs inside the node.
    pub fabric: FabricKind,
    /// Grouping of local GPU slots into physical packages. For monolithic
    /// GPUs every package holds one slot; for MI250 each holds two GCDs.
    pub packages: Vec<Vec<usize>>,
    /// Fabric port link spec for each GPU (NVLink port or xGMI port).
    pub fabric_port: LinkSpec,
    /// Intra-package bus spec (MI250 only; ignored for NvSwitch fabrics).
    pub package_bus: Option<LinkSpec>,
    /// PCIe link of each GPU to the host.
    pub pcie: LinkSpec,
    /// The node's NIC to the inter-node fabric.
    pub nic: LinkSpec,
    /// Airflow/cooling geometry.
    pub airflow: AirflowLayout,
}

impl NodeLayout {
    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidNodeLayout`] when package membership does
    /// not partition the GPU slots or the airflow layout covers a different
    /// number of slots.
    pub fn validate(&self) -> Result<(), HwError> {
        if self.gpus_per_node == 0 {
            return Err(HwError::InvalidNodeLayout(
                "node must have at least one gpu".into(),
            ));
        }
        let mut seen = vec![false; self.gpus_per_node];
        for pkg in &self.packages {
            for &slot in pkg {
                if slot >= self.gpus_per_node {
                    return Err(HwError::InvalidNodeLayout(format!(
                        "package references slot {slot} but node has {} gpus",
                        self.gpus_per_node
                    )));
                }
                if seen[slot] {
                    return Err(HwError::InvalidNodeLayout(format!(
                        "slot {slot} appears in more than one package"
                    )));
                }
                seen[slot] = true;
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(HwError::InvalidNodeLayout(
                "every gpu slot must belong to a package".into(),
            ));
        }
        if self.airflow.num_slots() != self.gpus_per_node {
            return Err(HwError::InvalidNodeLayout(format!(
                "airflow covers {} slots but node has {} gpus",
                self.airflow.num_slots(),
                self.gpus_per_node
            )));
        }
        if self.fabric == FabricKind::Xgmi && self.package_bus.is_none() {
            return Err(HwError::InvalidNodeLayout(
                "xgmi fabric requires a package bus spec".into(),
            ));
        }
        Ok(())
    }

    /// The package index a local GPU slot belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the slot is not covered by any package (prevented by
    /// [`Self::validate`]).
    pub fn package_of(&self, slot: usize) -> usize {
        self.packages
            .iter()
            .position(|pkg| pkg.contains(&slot))
            .expect("validated layout covers every slot")
    }

    /// Whether two local slots share a physical package.
    pub fn same_package(&self, a: usize, b: usize) -> bool {
        self.package_of(a) == self.package_of(b)
    }

    /// An HGX-style node: 8 monolithic GPUs on NVSwitch.
    pub fn hgx() -> Self {
        NodeLayout {
            gpus_per_node: 8,
            fabric: FabricKind::NvSwitch,
            packages: (0..8).map(|s| vec![s]).collect(),
            fabric_port: LinkSpec::nvlink4(),
            package_bus: None,
            pcie: LinkSpec::pcie_gen5(),
            nic: LinkSpec::ib_100g(),
            airflow: AirflowLayout::hgx(),
        }
    }

    /// An MI250 node: 4 packages x 2 GCDs on xGMI.
    pub fn mi250() -> Self {
        NodeLayout {
            gpus_per_node: 8,
            fabric: FabricKind::Xgmi,
            packages: (0..4).map(|p| vec![2 * p, 2 * p + 1]).collect(),
            fabric_port: LinkSpec::xgmi_port(),
            package_bus: Some(LinkSpec::xgmi_package()),
            pcie: LinkSpec::pcie_gen4(),
            nic: LinkSpec::ib_100g(),
            airflow: AirflowLayout::mi250(),
        }
    }

    /// A single-GPU node (used for the paper's 1-GPU-per-node ablation of
    /// Fig. 8, which removes PCIe/NIC sharing).
    pub fn single_gpu_hgx() -> Self {
        NodeLayout {
            gpus_per_node: 1,
            fabric: FabricKind::NvSwitch,
            packages: vec![vec![0]],
            fabric_port: LinkSpec::nvlink4(),
            package_bus: None,
            pcie: LinkSpec::pcie_gen5(),
            nic: LinkSpec::ib_100g(),
            airflow: AirflowLayout::uniform(1, 26.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_layouts_validate() {
        NodeLayout::hgx().validate().unwrap();
        NodeLayout::mi250().validate().unwrap();
        NodeLayout::single_gpu_hgx().validate().unwrap();
    }

    #[test]
    fn mi250_packages_pair_gcds() {
        let n = NodeLayout::mi250();
        assert!(n.same_package(0, 1));
        assert!(n.same_package(6, 7));
        assert!(!n.same_package(1, 2));
        assert_eq!(n.package_of(5), 2);
    }

    #[test]
    fn hgx_every_gpu_its_own_package() {
        let n = NodeLayout::hgx();
        for s in 0..8 {
            assert_eq!(n.package_of(s), s);
        }
        assert!(!n.same_package(0, 1));
    }

    #[test]
    fn overlapping_packages_rejected() {
        let mut n = NodeLayout::hgx();
        n.packages = vec![
            vec![0, 1],
            vec![1, 2],
            vec![3],
            vec![4],
            vec![5],
            vec![6],
            vec![7],
        ];
        assert!(n.validate().is_err());
    }

    #[test]
    fn uncovered_slot_rejected() {
        let mut n = NodeLayout::hgx();
        n.packages.pop();
        assert!(n.validate().is_err());
    }

    #[test]
    fn airflow_dimension_mismatch_rejected() {
        let mut n = NodeLayout::hgx();
        n.airflow = AirflowLayout::uniform(4, 25.0);
        assert!(n.validate().is_err());
    }

    #[test]
    fn xgmi_requires_package_bus() {
        let mut n = NodeLayout::mi250();
        n.package_bus = None;
        assert!(n.validate().is_err());
    }

    #[test]
    fn zero_gpu_node_rejected() {
        let mut n = NodeLayout::hgx();
        n.gpus_per_node = 0;
        n.packages.clear();
        assert!(n.validate().is_err());
    }
}
