//! Criterion micro-benchmarks of the reproduction stack itself: trace
//! lowering throughput, collective lowering, and full simulator runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use charllm_hw::{presets, GpuId};
use charllm_models::{presets as models, TrainJob};
use charllm_net::{lower_collective, ChunkingPolicy, CollectiveKind};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::{SimConfig, Simulator};
use charllm_trace::{lower_train, DeviceHints};

fn bench_collective_lowering(c: &mut Criterion) {
    let cluster = presets::hgx_h200_cluster();
    let gpus: Vec<GpuId> = (0..32).map(GpuId).collect();
    c.bench_function("lower_allreduce_32", |b| {
        b.iter(|| {
            lower_collective(
                CollectiveKind::AllReduce,
                black_box(1 << 30),
                &gpus,
                &cluster,
                ChunkingPolicy::nccl_default(),
            )
            .unwrap()
        })
    });
    c.bench_function("lower_alltoall_8", |b| {
        b.iter(|| {
            lower_collective(
                CollectiveKind::AllToAll,
                black_box(1 << 26),
                &gpus[..8],
                &cluster,
                ChunkingPolicy::Unchunked,
            )
            .unwrap()
        })
    });
}

fn bench_trace_lowering(c: &mut Criterion) {
    let job = TrainJob::pretrain(models::gpt3_175b()).with_global_batch(32);
    let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
    let partition = StagePartition::even(96, 4).unwrap();
    let hints = DeviceHints::for_spec(presets::hgx_h200_cluster().gpu());
    c.bench_function("lower_gpt3_175b_tp8_pp4", |b| {
        b.iter(|| {
            lower_train(
                black_box(&job),
                &spec,
                PipelineSchedule::OneFOneB,
                &partition,
                &hints,
            )
            .unwrap()
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let cluster = presets::hgx_h200_cluster();
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8);
    let spec = ParallelismSpec::infer_dp(2, 2, 1, 32, false).unwrap();
    let partition = StagePartition::even(40, 2).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let lowered = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
    let placement = Placement::identity(&cluster, spec.world()).unwrap();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.bench_function("gpt3_13b_one_step_32gpu", |b| {
        b.iter(|| {
            Simulator::new(&cluster, &placement, &lowered.trace, SimConfig::fast())
                .unwrap()
                .run()
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_collective_lowering,
    bench_trace_lowering,
    bench_simulation
);
criterion_main!(benches);
