//! Limits of microbatch scaling (§5, Figs. 13–15): larger microbatches help
//! coarse-grained configurations (TP8-FSDP) but hurt pipeline-heavy ones
//! while raising peak power and temperature.
//!
//! ```sh
//! cargo run --release --example microbatch_tuning
//! ```

use std::sync::Arc;

use charllm::prelude::*;
use charllm::sweep::Sweep;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One shared Arc: every sweep below reuses the same topology, and each
    // sweep fans its microbatch points across all cores (`workers(0)`).
    let cluster = Arc::new(hgx_h200_cluster());
    let job = TrainJob::pretrain(gpt3_175b())
        .with_global_batch(32)
        .with_recompute(true);

    // One cache across every sweep in this run: the power-capped replay at
    // the bottom revisits the TP8-PP4 traces, so it lowers nothing.
    let cache = Arc::new(SimCache::new());

    for label in ["TP8-FSDP4", "TP8-PP4", "TP2-PP16"] {
        let spec = ParallelismSpec::parse(label, cluster.num_gpus())?;
        let reports = Sweep::new(Arc::clone(&cluster), job.clone(), vec![spec])
            .with_microbatches(MICROBATCH_SWEEP.to_vec())
            .with_cache(Arc::clone(&cache))
            .workers(0)
            .on_progress(|p| {
                if let SweepOutcome::Skipped { point, reason } = p.outcome {
                    println!("  [{}/{}] skipping {point}: {reason}", p.completed, p.total);
                }
            })
            .run()?;
        println!("== {label} ==");
        println!(
            "  {:<4} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "mb", "tok/s", "tok/J", "avg W", "peak W", "peak C"
        );
        for r in &reports {
            println!(
                "  {:<4} {:>10.0} {:>10.2} {:>9.0} {:>9.0} {:>9.1}",
                r.microbatch,
                r.tokens_per_s,
                r.tokens_per_joule,
                r.mean_power_w,
                r.peak_power_w,
                r.peak_temp_c
            );
        }
        if let (Some(first), Some(last)) = (reports.first(), reports.last()) {
            let speedup = last.tokens_per_s / first.tokens_per_s;
            println!(
                "  mb{} vs mb{}: {speedup:.2}x throughput\n",
                last.microbatch, first.microbatch
            );
        }
    }
    // Replay the pipeline-heavy sweep with node 0 power-capped (the §1
    // failure anecdote). Only simulator knobs change, so every point is
    // served from the shared cache — no re-lowering, no plan rebuilds.
    let capped = SimConfig {
        node_power_cap: Some((0, 400.0)),
        ..SimConfig::default()
    };
    let spec = ParallelismSpec::parse("TP8-PP4", cluster.num_gpus())?;
    let reports = Sweep::new(Arc::clone(&cluster), job.clone(), vec![spec])
        .with_microbatches(MICROBATCH_SWEEP.to_vec())
        .with_sim_config(capped)
        .with_cache(Arc::clone(&cache))
        .workers(0)
        .run()?;
    println!("== TP8-PP4, node 0 capped at 400 W ==");
    for r in &reports {
        println!(
            "  mb{:<3} {:>10.0} tok/s {:>9.0} avg W",
            r.microbatch, r.tokens_per_s, r.mean_power_w
        );
    }
    println!("sweep cache: {}", cache.stats());

    println!(
        "Microbatch size is not a universal knob: coarser communication helps\n\
         FSDP/TP-dominated setups, while pipeline-heavy configurations lose\n\
         schedule slack and gain peak power and thermal stress."
    );
    Ok(())
}
