/root/repo/target/debug/deps/fig19-2b05e457735e046d.d: crates/bench/benches/fig19.rs Cargo.toml

/root/repo/target/debug/deps/libfig19-2b05e457735e046d.rmeta: crates/bench/benches/fig19.rs Cargo.toml

crates/bench/benches/fig19.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
