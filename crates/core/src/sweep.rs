//! Configuration sweeps: run many experiments and collect reports.
//!
//! A [`Sweep`] enumerates the cartesian product of parallelism specs ×
//! job variants × microbatch sizes and simulates every point. Points are
//! independent, so [`Sweep::run`] fans them across an [`Executor`] worker
//! pool ([`Sweep::workers`] controls the width; `workers(1)` is exactly
//! the serial path) and returns results in enumeration order regardless
//! of which worker finished first.
//!
//! Infeasible points are expected when sweeping broadly; they surface as
//! structured [`SweepOutcome::Skipped`] values from
//! [`Sweep::run_outcomes`] (and through the [`Sweep::on_progress`]
//! callback) rather than as stderr noise.

use std::cmp::Ordering;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

use charllm_hw::Cluster;
use charllm_models::TrainJob;
use charllm_parallel::ParallelismSpec;
use charllm_sim::{FaultPlan, SimConfig};

use crate::cache::SimCache;
use crate::error::CoreError;
use crate::executor::Executor;
use crate::experiment::Experiment;
use crate::report::RunReport;

/// Progress callback: called once per completed point, from whichever
/// worker thread finished it.
type ProgressFn = dyn Fn(&SweepProgress<'_>) + Send + Sync;

/// One point of a sweep's cartesian grid, in enumeration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPoint {
    /// Position in the sweep's enumeration order (0-based).
    pub index: usize,
    /// The parallelism configuration at this point.
    pub spec: ParallelismSpec,
    /// The optimization label of the job variant (`Base`, `cc`, ...).
    pub optimization: String,
    /// The microbatch size at this point.
    pub microbatch: usize,
}

impl fmt::Display for SweepPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} mb{}",
            self.spec.label(),
            self.optimization,
            self.microbatch
        )
    }
}

/// The structured result of one sweep point.
#[derive(Debug)]
pub enum SweepOutcome {
    /// The point simulated successfully.
    Completed {
        /// Which point this is.
        point: SweepPoint,
        /// The full run report.
        report: Box<RunReport>,
    },
    /// The point failed and the sweep is in skip mode (the default):
    /// infeasible geometry is expected when sweeping broadly.
    Skipped {
        /// Which point this is.
        point: SweepPoint,
        /// Why the point was skipped (the rendered error).
        reason: String,
    },
    /// The point failed and the sweep is strict: [`Sweep::run`] turns the
    /// first `Failed` outcome (in point order) into its error.
    Failed {
        /// Which point this is.
        point: SweepPoint,
        /// The underlying error.
        error: CoreError,
    },
}

impl SweepOutcome {
    /// The sweep point this outcome belongs to.
    pub fn point(&self) -> &SweepPoint {
        match self {
            SweepOutcome::Completed { point, .. }
            | SweepOutcome::Skipped { point, .. }
            | SweepOutcome::Failed { point, .. } => point,
        }
    }

    /// The report, if the point completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            SweepOutcome::Completed { report, .. } => Some(report),
            _ => None,
        }
    }

    /// Whether the point was skipped.
    pub fn is_skipped(&self) -> bool {
        matches!(self, SweepOutcome::Skipped { .. })
    }
}

/// A progress notification: one point finished.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Points finished so far, including this one. Counts completion
    /// order, which under a parallel executor differs from point order.
    pub completed: usize,
    /// Total points in the sweep.
    pub total: usize,
    /// The finished point's outcome.
    pub outcome: &'a SweepOutcome,
}

/// A cartesian sweep over parallelism specs, optimization variants and
/// microbatch sizes for one model on one cluster.
#[derive(Clone)]
pub struct Sweep {
    cluster: Arc<Cluster>,
    base_job: TrainJob,
    specs: Vec<ParallelismSpec>,
    jobs_per_spec: Vec<TrainJob>,
    microbatches: Vec<usize>,
    sim: SimConfig,
    skip_failures: bool,
    workers: usize,
    progress: Option<Arc<ProgressFn>>,
    cache: Option<Arc<SimCache>>,
    use_cache: bool,
    faults: Option<FaultPlan>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("cluster", &self.cluster.name())
            .field("base_job", &self.base_job)
            .field("specs", &self.specs)
            .field("jobs_per_spec", &self.jobs_per_spec.len())
            .field("microbatches", &self.microbatches)
            .field("sim", &self.sim)
            .field("skip_failures", &self.skip_failures)
            .field("workers", &self.workers)
            .field("progress", &self.progress.is_some())
            .field("cache", &self.use_cache)
            .field("faults", &self.faults.is_some())
            .finish()
    }
}

impl Sweep {
    /// A sweep of `specs` for one job on a cluster.
    pub fn new(
        cluster: impl Into<Arc<Cluster>>,
        job: TrainJob,
        specs: Vec<ParallelismSpec>,
    ) -> Self {
        Sweep {
            cluster: cluster.into(),
            jobs_per_spec: vec![job.clone()],
            base_job: job,
            specs,
            microbatches: vec![1],
            sim: SimConfig::default(),
            skip_failures: true,
            workers: 0,
            progress: None,
            cache: None,
            use_cache: true,
            faults: None,
        }
    }

    /// Replace the job variants (e.g. the Base/cc/act/cc+act set).
    pub fn with_job_variants(mut self, jobs: Vec<TrainJob>) -> Self {
        self.jobs_per_spec = jobs;
        self
    }

    /// Microbatch sizes to sweep.
    pub fn with_microbatches(mut self, microbatches: Vec<usize>) -> Self {
        self.microbatches = microbatches;
        self
    }

    /// Simulator configuration for every run.
    pub fn with_sim_config(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Fail the whole sweep on the first error instead of skipping
    /// infeasible points.
    pub fn strict(mut self) -> Self {
        self.skip_failures = false;
        self
    }

    /// Worker threads for the sweep: `0` (the default) means one per
    /// available core, `1` runs every point serially on the calling
    /// thread, `n > 1` bounds the pool at `n`.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Share an externally owned [`SimCache`] instead of the per-sweep one,
    /// e.g. to carry memoized lowerings and collective plans across several
    /// sweeps or ablations over the same workloads. Read aggregate hit/miss
    /// counters from the cache afterwards via [`SimCache::stats`].
    pub fn with_cache(mut self, cache: Arc<SimCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Inject the same [`FaultPlan`] into every point of the sweep (e.g. an
    /// MTBF scenario evaluated across parallelism configurations). The plan
    /// participates in the memoization key, so repeated points with the
    /// same plan still hit a shared cache.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Disable cross-point memoization: every point lowers its trace and
    /// builds its collective plans from scratch. On by default — results
    /// are byte-identical either way, so this exists for benchmarking the
    /// cache itself and for memory-constrained giant sweeps.
    pub fn no_cache(mut self) -> Self {
        self.cache = None;
        self.use_cache = false;
        self
    }

    /// Observe each point as it finishes.
    ///
    /// The callback runs on whichever worker thread completed the point
    /// (hence `Send + Sync`), in completion order; `completed`/`total`
    /// make it directly usable as a progress meter.
    pub fn on_progress(
        mut self,
        callback: impl Fn(&SweepProgress<'_>) + Send + Sync + 'static,
    ) -> Self {
        self.progress = Some(Arc::new(callback));
        self
    }

    /// The cartesian grid in enumeration order, with the concrete job for
    /// each point.
    fn grid(&self) -> Vec<(SweepPoint, TrainJob)> {
        let mut points = Vec::new();
        for spec in &self.specs {
            for job in &self.jobs_per_spec {
                for &mb in &self.microbatches {
                    let job = job.clone().with_microbatch(mb);
                    let point = SweepPoint {
                        index: points.len(),
                        spec: *spec,
                        optimization: job.optim.label(),
                        microbatch: mb,
                    };
                    points.push((point, job));
                }
            }
        }
        points
    }

    /// The points this sweep will execute, in order.
    pub fn points(&self) -> Vec<SweepPoint> {
        self.grid().into_iter().map(|(point, _)| point).collect()
    }

    /// Execute every point and return one structured [`SweepOutcome`] per
    /// point, in enumeration order.
    ///
    /// This is the observable form of the sweep: completed points carry
    /// their report, failing points carry a skip reason (default mode) or
    /// the error itself (strict mode). Nothing is printed.
    pub fn run_outcomes(&self) -> Vec<SweepOutcome> {
        let grid = self.grid();
        let total = grid.len();
        let completed = AtomicUsize::new(0);
        // One cache for the whole pool: workers publish lowered traces and
        // plan sets as they build them, so points sharing a workload (or a
        // later sweep via `with_cache`) skip that work entirely.
        let cache = match (&self.cache, self.use_cache) {
            (Some(external), _) => Some(Arc::clone(external)),
            (None, true) => Some(Arc::new(SimCache::new())),
            (None, false) => None,
        };
        Executor::with_workers(self.workers).run(&grid, |_, (point, job)| {
            let mut builder = Experiment::builder()
                .cluster(Arc::clone(&self.cluster))
                .job(job.clone())
                .spec(point.spec)
                .sim_config(self.sim);
            if let Some(cache) = &cache {
                builder = builder.cache(Arc::clone(cache));
            }
            if let Some(plan) = &self.faults {
                builder = builder.faults(plan.clone());
            }
            let result = builder.run();
            let outcome = match result {
                Ok(report) => SweepOutcome::Completed {
                    point: point.clone(),
                    report: Box::new(report),
                },
                Err(e) if self.skip_failures => SweepOutcome::Skipped {
                    point: point.clone(),
                    reason: e.to_string(),
                },
                Err(error) => SweepOutcome::Failed {
                    point: point.clone(),
                    error,
                },
            };
            if let Some(callback) = &self.progress {
                let completed = completed.fetch_add(1, AtomicOrdering::Relaxed) + 1;
                callback(&SweepProgress {
                    completed,
                    total,
                    outcome: &outcome,
                });
            }
            outcome
        })
    }

    /// Execute every point of the sweep and collect the completed reports
    /// in enumeration order.
    ///
    /// # Errors
    ///
    /// In strict mode, the failure at the earliest point (in enumeration
    /// order, independent of worker scheduling) aborts the sweep;
    /// otherwise failing points are skipped (observe them via
    /// [`Sweep::run_outcomes`] or [`Sweep::on_progress`]).
    pub fn run(&self) -> Result<Vec<RunReport>, CoreError> {
        let mut reports = Vec::new();
        for outcome in self.run_outcomes() {
            match outcome {
                SweepOutcome::Completed { report, .. } => reports.push(*report),
                SweepOutcome::Skipped { .. } => {}
                SweepOutcome::Failed { error, .. } => return Err(error),
            }
        }
        Ok(reports)
    }

    /// The base job the sweep was constructed with.
    pub fn base_job(&self) -> &TrainJob {
        &self.base_job
    }
}

/// Total descending order on metric values: higher finite values first,
/// non-finite values (NaN, ±∞) last.
///
/// Replaces `partial_cmp(..).expect(..)` comparators, which panic the
/// moment a degenerate configuration produces a NaN metric.
pub fn rank_desc(a: f64, b: f64) -> Ordering {
    match (a.is_finite(), b.is_finite()) {
        (true, true) => b.total_cmp(&a),
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// The best report by a metric (higher is better). Reports with
/// non-finite metric values are ignored; returns `None` if no report has
/// a finite metric. Ties keep the earliest report.
pub fn best_by(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> Option<&RunReport> {
    reports
        .iter()
        .filter(|r| metric(r).is_finite())
        .min_by(|a, b| rank_desc(metric(a), metric(b)))
}

/// Normalize a metric across reports to the best value (the paper's
/// "efficiency normalized per model, best = 1"). Non-finite metric values
/// normalize to 0 and do not influence the best.
pub fn normalized<'a>(
    reports: &'a [RunReport],
    metric: impl Fn(&RunReport) -> f64 + 'a,
) -> impl Iterator<Item = (&'a RunReport, f64)> + 'a {
    let best = reports
        .iter()
        .map(&metric)
        .filter(|v| v.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    reports.iter().map(move |r| {
        let v = metric(r);
        (
            r,
            if best > 0.0 && v.is_finite() {
                v / best
            } else {
                0.0
            },
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::single_hgx_node;
    use charllm_models::presets as models;

    fn small_sweep(specs: Vec<ParallelismSpec>) -> Sweep {
        let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(4);
        Sweep::new(single_hgx_node(), job, specs).with_sim_config(SimConfig::fast())
    }

    fn mixed_specs() -> Vec<ParallelismSpec> {
        vec![
            // PP=16 does not divide into 8 GPUs with TP2: invalid world.
            ParallelismSpec::new(2, 16, 1, 1, false).unwrap(),
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
        ]
    }

    #[test]
    fn sweep_runs_multiple_specs() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        assert_eq!(reports.len(), 2);
        assert_ne!(reports[0].parallelism, reports[1].parallelism);
    }

    #[test]
    fn infeasible_points_skipped() {
        let reports = small_sweep(mixed_specs()).run().unwrap();
        assert_eq!(reports.len(), 1, "bad point skipped, good one kept");
    }

    #[test]
    fn skipped_points_surface_as_structured_outcomes() {
        let outcomes = small_sweep(mixed_specs()).run_outcomes();
        assert_eq!(outcomes.len(), 2, "one outcome per point, skipped included");
        let SweepOutcome::Skipped { point, reason } = &outcomes[0] else {
            panic!("infeasible point should be Skipped, got {:?}", outcomes[0]);
        };
        assert_eq!(point.index, 0);
        assert_eq!(point.spec.label(), "TP2-PP16");
        assert!(!reason.is_empty(), "skip carries the rendered error");
        assert!(outcomes[1].report().is_some());
        assert!(!outcomes[1].is_skipped());
    }

    #[test]
    fn strict_mode_propagates_errors() {
        let specs = vec![ParallelismSpec::new(2, 16, 1, 1, false).unwrap()];
        let err = small_sweep(specs).strict().run();
        assert!(err.is_err());
    }

    #[test]
    fn strict_failures_are_failed_outcomes() {
        let outcomes = small_sweep(mixed_specs()).strict().run_outcomes();
        assert!(matches!(&outcomes[0], SweepOutcome::Failed { .. }));
        assert!(outcomes[1].report().is_some());
    }

    #[test]
    fn cached_sweep_matches_uncached_byte_for_byte() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let cold = small_sweep(specs.clone()).no_cache().run().unwrap();
        let cached = small_sweep(specs).run().unwrap();
        assert_eq!(cold.len(), cached.len());
        for (a, b) in cold.iter().zip(&cached) {
            assert!(a.cache.is_none(), "no_cache leaves no counters");
            let stats = b.cache.expect("cached run records counters");
            assert_eq!(stats.lookups(), 2, "one lowered + one plan lookup");
            assert_eq!(
                serde_json::to_string(&a.sim).unwrap(),
                serde_json::to_string(&b.sim).unwrap(),
                "memoization must not change simulation results"
            );
        }
    }

    #[test]
    fn shared_cache_hits_across_sweeps() {
        use crate::cache::SimCache;
        let specs = vec![ParallelismSpec::parse("TP2-PP2", 8).unwrap()];
        let cache = Arc::new(SimCache::new());
        let first = small_sweep(specs.clone())
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        let stats = first[0].cache.unwrap();
        assert_eq!(stats.lowered_misses, 1, "cold cache builds the trace");
        assert_eq!(stats.plan_misses, 1);
        // Same workload again (an ablation re-run): everything is served.
        let second = small_sweep(specs)
            .with_cache(Arc::clone(&cache))
            .run()
            .unwrap();
        let stats = second[0].cache.unwrap();
        assert_eq!(stats.lowered_hits, 1, "warm cache serves the trace");
        assert_eq!(stats.plan_hits, 1, "warm cache serves the plan set");
        assert_eq!(
            serde_json::to_string(&first[0].sim).unwrap(),
            serde_json::to_string(&second[0].sim).unwrap(),
            "shared plans must not change simulation results"
        );
        let total = cache.stats();
        assert_eq!(total.lowered_hits, 1);
        assert_eq!(total.lowered_misses, 1);
    }

    #[test]
    fn parallel_sweep_is_deterministic() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP8", 8).unwrap(),
        ];
        let serial = small_sweep(specs.clone())
            .with_microbatches(vec![1, 2])
            .workers(1)
            .run()
            .unwrap();
        let parallel = small_sweep(specs)
            .with_microbatches(vec![1, 2])
            .workers(4)
            .run()
            .unwrap();
        assert_eq!(
            serial, parallel,
            "multi-worker run must match workers(1) exactly"
        );
    }

    #[test]
    fn progress_callback_sees_every_point() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<(usize, usize, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let outcomes = small_sweep(mixed_specs())
            .workers(2)
            .on_progress(move |p| {
                sink.lock()
                    .unwrap()
                    .push((p.completed, p.total, p.outcome.is_skipped()));
            })
            .run_outcomes();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), outcomes.len());
        assert!(seen.iter().all(|&(_, total, _)| total == 2));
        let mut counts: Vec<usize> = seen.iter().map(|&(c, _, _)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2], "completed counts each point once");
        assert_eq!(seen.iter().filter(|&&(_, _, skipped)| skipped).count(), 1);
    }

    #[test]
    fn points_enumerates_grid_in_order() {
        let sweep = small_sweep(mixed_specs()).with_microbatches(vec![1, 2]);
        let points = sweep.points();
        assert_eq!(points.len(), 4);
        assert!(points.iter().enumerate().all(|(i, p)| p.index == i));
        assert_eq!(points[0].spec.label(), "TP2-PP16");
        assert_eq!(points[0].microbatch, 1);
        assert_eq!(points[1].microbatch, 2);
        assert_eq!(points[2].spec.label(), "TP2-PP2");
    }

    #[test]
    fn normalization_maps_best_to_one() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        let values: Vec<f64> = normalized(&reports, |r| r.tokens_per_joule)
            .map(|(_, v)| v)
            .collect();
        assert!(values.iter().cloned().fold(0.0, f64::max) == 1.0);
        assert!(values.iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn rank_desc_is_total_and_puts_non_finite_last() {
        let mut values = [f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 2.0];
        values.sort_by(|a, b| rank_desc(*a, *b));
        assert_eq!(values[0], 3.0);
        assert_eq!(values[1], 2.0);
        assert_eq!(values[2], 1.0);
        assert!(values[3..].iter().all(|v| !v.is_finite()));
        // Total: sorting a NaN-bearing slice must not panic (it just did
        // not) and must be deterministic.
        let mut again = [f64::NAN, 1.0, f64::INFINITY, 3.0, f64::NEG_INFINITY, 2.0];
        again.sort_by(|a, b| rank_desc(*a, *b));
        assert_eq!(values[..3], again[..3]);
    }

    #[test]
    fn best_by_ignores_non_finite_metrics() {
        let specs = vec![ParallelismSpec::parse("TP2-PP2", 8).unwrap()];
        let reports = small_sweep(specs).run().unwrap();
        // A NaN metric must not panic and must not win.
        let best = best_by(&reports, |r| {
            if r.parallelism == "TP2-PP2" {
                f64::NAN
            } else {
                r.tokens_per_s
            }
        });
        assert!(best.is_none(), "all metrics NaN -> no best");
        let best = best_by(&reports, |r| r.tokens_per_s);
        assert!(best.is_some());
    }

    #[test]
    fn normalized_handles_nan_metrics_without_panicking() {
        let specs = vec![
            ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
            ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
        ];
        let reports = small_sweep(specs).run().unwrap();
        let values: Vec<f64> = normalized(&reports, |r| {
            if r.parallelism == "TP2-PP2" {
                f64::NAN
            } else {
                r.tokens_per_s
            }
        })
        .map(|(_, v)| v)
        .collect();
        assert_eq!(values.len(), 2);
        let nan_idx = reports
            .iter()
            .position(|r| r.parallelism == "TP2-PP2")
            .unwrap();
        assert_eq!(values[nan_idx], 0.0, "NaN metric normalizes to 0");
        assert_eq!(values[1 - nan_idx], 1.0, "finite best still maps to 1");
    }
}
