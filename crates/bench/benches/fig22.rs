//! Figure 22: projected per-kernel latency, strong scaling and per-GPU
//! throughput for DP scaling to thousands of GPUs on H200 and H100
//! clusters, at 100 Gbps and 800 Gbps inter-node bandwidth (§7.1).

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, try_run};
use charllm_hw::LinkSpec;
use charllm_net::projection::{project_dp_scaling, MeasuredStep};

fn main() {
    banner(
        "Figure 22",
        "DP-scaling projection to 8K GPUs, 100G vs 800G fabrics",
    );
    let job = bench_job(gpt3_175b()).with_recompute(true);
    let dps = [1usize, 4, 16, 64, 256];
    let mut json = serde_json::Map::new();
    for (cluster, label) in [
        (hgx_h200_cluster(), "TP2-PP16"),
        (hgx_h100_cluster(), "TP2-PP16"),
    ] {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        let Some(r) = try_run(&cluster, &job, spec) else {
            continue;
        };
        let mean = r.mean_kernel_time();
        let base = MeasuredStep {
            compute_s: mean.compute_total(),
            comm_s: mean.comm_total(),
            grad_bytes_per_rank: (job.arch.total_params() / cluster.num_gpus() as u64) * 2,
            tokens_per_step: job.tokens_per_step(),
            base_world: cluster.num_gpus(),
        };
        println!(
            "\n--- {} {} base: compute {:.2}s comm {:.2}s ---",
            cluster.name(),
            label,
            base.compute_s,
            base.comm_s
        );
        for (nic_name, nic) in [
            ("100G", LinkSpec::ib_100g()),
            ("800G", LinkSpec::ib_gbps(800.0)),
        ] {
            println!("  {nic_name}:");
            println!(
                "  {:>6} {:>8} {:>9} {:>12} {:>13} {:>9}",
                "dp", "gpus", "step s", "allreduce s", "tok/s/gpu", "scaling"
            );
            let projections = project_dp_scaling(&base, &dps, &nic, 1);
            for p in &projections {
                println!(
                    "  {:>6} {:>8} {:>9.3} {:>12.3} {:>13.1} {:>8.1}%",
                    p.dp,
                    p.num_gpus,
                    p.step_s,
                    p.allreduce_s,
                    p.per_gpu_throughput,
                    p.scaling_efficiency * 100.0
                );
            }
            let worst = projections.last().expect("non-empty dps");
            json.insert(
                format!("{}_{}", cluster.name(), nic_name),
                serde_json::json!({
                    "base_compute_s": base.compute_s,
                    "base_comm_s": base.comm_s,
                    "scaling_at_max_dp": worst.scaling_efficiency,
                    "per_gpu_tokens_at_max_dp": worst.per_gpu_throughput,
                }),
            );
        }
    }
    save_json("fig22", &serde_json::Value::Object(json));
    println!(
        "\nExpected shape: naive DP scaling is sublinear; at 100 Gbps the\n\
         AllReduce overhead collapses strong scaling by close to an order of\n\
         magnitude at thousands of GPUs (paper: up to 9.7x), while 800 Gbps\n\
         recovers several-fold (paper: up to 4.2x); H100 posts higher\n\
         absolute but lower per-GPU throughput than H200."
    );
}
