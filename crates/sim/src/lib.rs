//! The cluster simulator: executes an [`charllm_trace::ExecutionTrace`] on a
//! [`charllm_hw::Cluster`] with live power/thermal/frequency feedback.
//!
//! # Semantics
//!
//! Each rank executes its step stream in order. Compute kernels progress at
//! `peak_flops × mfu(kind) × f(t)/f_boost`, so a thermally throttled GPU
//! runs its kernels slower and arrives late at the next collective — the
//! paper's straggler mechanism. Collectives lower to concurrent flows
//! (via [`charllm_net`]) that fair-share every link along their route;
//! per-message overhead penalizes the fine-grained unchunked SendRecv and
//! All-to-All patterns exactly as §4.2 observes on real PCIe.
//!
//! Every control period the engine integrates each GPU's power into the RC
//! thermal model (with airflow preheating from upstream devices) and lets
//! the DVFS governor adjust the clock. Telemetry is sampled into a
//! [`charllm_telemetry::TelemetryStore`], and per-kernel-class busy time and
//! per-GPU traffic are accumulated for the paper's breakdown figures.
//!
//! Both engines accept a [`SimObserver`] (default: the free
//! [`NoopObserver`]) whose hooks expose every span, flow, collective
//! completion, and power tick — the raw material for
//! [`charllm_telemetry::phase`] attribution and Perfetto export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod accrual;
pub mod analytic;
pub mod arena;
pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fold;
pub mod observer;
pub mod reference;
pub mod result;

pub use arena::FlowArena;
pub use config::SimConfig;
pub use engine::{EngineStats, PlanSetSnapshot, SharedPlans, Simulator};
pub use error::SimError;
pub use fault::{FaultEvent, FaultPlan, RecoveryPolicy};
pub use fold::{
    detect as detect_fold, run_folded, simulate_train_folded, split_reason, FoldMap, FoldOptions,
    FoldReport,
};
pub use observer::{NoopObserver, SimObserver, TaskKind};
pub use reference::ReferenceSimulator;
pub use result::{KernelBreakdown, OccupancyStats, SimResult, TrafficMatrix};
