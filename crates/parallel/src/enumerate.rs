//! Enumeration of valid parallelism configurations for a model × cluster
//! pair, following the paper's methodology (§3.1): find the minimal total
//! model parallelism that fits in GPU memory, keep TP within a node, and
//! fill leftover capacity with DP.

use charllm_hw::Cluster;
use charllm_models::TrainJob;

use crate::memory::{fits, StagePartition};
use crate::spec::ParallelismSpec;

/// Options controlling configuration enumeration.
#[derive(Debug, Clone, Copy)]
pub struct EnumerateOptions {
    /// Include `TP*-FSDP` configurations (dense models only).
    pub include_fsdp: bool,
    /// Require the configuration to fit in GPU memory.
    pub check_memory: bool,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            include_fsdp: true,
            check_memory: true,
        }
    }
}

fn pow2_up_to(max: usize) -> impl Iterator<Item = usize> {
    (0..).map(|e| 1usize << e).take_while(move |&v| v <= max)
}

/// All valid parallelism specs for `job` on `cluster`, sorted by (ep, tp,
/// pp) for stable output.
///
/// Validity requires: TP within a node and dividing the attention heads; PP
/// dividing the layer count; EP dividing the expert count (MoE only); the
/// product dividing the cluster size; the global batch dividing into
/// `dp × microbatch`; and (optionally) the stage-0 rank fitting in memory.
pub fn valid_configs(
    job: &TrainJob,
    cluster: &Cluster,
    opts: EnumerateOptions,
) -> Vec<ParallelismSpec> {
    let world = cluster.num_gpus();
    let arch = &job.arch;
    let mut out = Vec::new();

    let eps: Vec<usize> = match &arch.moe {
        None => vec![1],
        Some(moe) => pow2_up_to(moe.num_experts)
            .filter(|e| moe.num_experts % e == 0)
            .collect(),
    };

    for &ep in &eps {
        for tp in pow2_up_to(cluster.gpus_per_node()) {
            if !arch.num_heads.is_multiple_of(tp) || !arch.num_kv_heads.is_multiple_of(tp) {
                continue;
            }
            for pp in pow2_up_to(world) {
                if !arch.num_layers.is_multiple_of(pp) {
                    continue;
                }
                let mp = tp * pp * ep;
                if mp > world || !world.is_multiple_of(mp) {
                    continue;
                }
                let spec = match ParallelismSpec::infer_dp(tp, pp, ep, world, false) {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if job.validate_for_dp(spec.dp).is_err() {
                    continue;
                }
                let partition = match StagePartition::even(arch.num_layers, pp) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                if opts.check_memory && !fits(job, &spec, &partition, cluster.gpu().memory_bytes) {
                    continue;
                }
                out.push(spec);
            }
        }
    }

    if opts.include_fsdp && !arch.is_moe() {
        // The paper evaluates TP8-FSDP (2D parallelism): TP across the node,
        // FSDP over the rest.
        let tp = cluster.gpus_per_node();
        if arch.num_heads.is_multiple_of(tp) && world > tp {
            if let Ok(spec) = ParallelismSpec::new(tp, 1, 1, world / tp, true) {
                let partition =
                    StagePartition::even(arch.num_layers, 1).expect("single stage always valid");
                let ok_batch = job.validate_for_dp(spec.dp).is_ok();
                let ok_mem =
                    !opts.check_memory || fits(job, &spec, &partition, cluster.gpu().memory_bytes);
                if ok_batch && ok_mem {
                    out.push(spec);
                }
            }
        }
    }

    out.sort_by_key(|s| (s.ep, s.tp, s.pp, s.fsdp));
    out
}

/// The minimal total model parallelism (`tp·pp·ep`) among valid configs —
/// the quantity the paper minimizes before exploring configurations.
pub fn minimal_model_parallelism(job: &TrainJob, cluster: &Cluster) -> Option<usize> {
    valid_configs(
        job,
        cluster,
        EnumerateOptions {
            include_fsdp: false,
            check_memory: true,
        },
    )
    .iter()
    .map(|s| s.model_parallel())
    .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;
    use charllm_models::presets as models;

    #[test]
    fn gpt3_175b_on_h200_has_model_parallel_configs() {
        let job = TrainJob::pretrain(models::gpt3_175b());
        let cluster = presets::hgx_h200_cluster();
        let configs = valid_configs(&job, &cluster, EnumerateOptions::default());
        assert!(!configs.is_empty());
        // Pure DP cannot fit a 175B model.
        assert!(configs.iter().all(|s| s.model_parallel() > 1));
        // The paper's TP8-PP4 must be among them.
        assert!(
            configs.iter().any(|s| s.label() == "TP8-PP4"),
            "configs: {configs:?}"
        );
    }

    #[test]
    fn deep_pp_unlocked_by_recompute() {
        // TP1-PP32 on 64xH100 with microbatch 1: feasible only with
        // activation recomputation at stage 0's stash depth.
        let cluster = presets::hgx_h100_cluster();
        let base = TrainJob::pretrain(models::gpt3_175b());
        let with_act = base.clone().with_recompute(true);
        let has = |job: &TrainJob, label: &str| {
            valid_configs(job, &cluster, EnumerateOptions::default())
                .iter()
                .any(|s| s.label() == label)
        };
        assert!(has(&with_act, "TP1-PP32"));
    }

    #[test]
    fn moe_configs_include_expert_parallelism() {
        let job = TrainJob::pretrain(models::mixtral_8x7b()).with_recompute(true);
        let cluster = presets::hgx_h200_cluster();
        let configs = valid_configs(&job, &cluster, EnumerateOptions::default());
        assert!(configs.iter().any(|s| s.ep == 8), "configs: {configs:?}");
        // MoE models never get FSDP in the paper.
        assert!(configs.iter().all(|s| !s.fsdp));
    }

    #[test]
    fn fsdp_offered_for_dense_models() {
        let job = TrainJob::pretrain(models::llama3_70b());
        let cluster = presets::hgx_h200_cluster();
        let configs = valid_configs(&job, &cluster, EnumerateOptions::default());
        assert!(configs.iter().any(|s| s.fsdp), "configs: {configs:?}");
    }

    #[test]
    fn tp_restricted_to_node() {
        let job = TrainJob::pretrain(models::gpt3_175b());
        let cluster = presets::hgx_h100_cluster();
        let configs = valid_configs(&job, &cluster, EnumerateOptions::default());
        assert!(configs.iter().all(|s| s.tp <= cluster.gpus_per_node()));
    }

    #[test]
    fn all_configs_fill_the_cluster() {
        let job = TrainJob::pretrain(models::llama3_70b());
        let cluster = presets::hgx_h200_cluster();
        for s in valid_configs(&job, &cluster, EnumerateOptions::default()) {
            assert_eq!(s.world(), 32, "{s}");
        }
    }

    #[test]
    fn minimal_model_parallelism_larger_for_bigger_models() {
        let cluster = presets::hgx_h200_cluster();
        let small =
            minimal_model_parallelism(&TrainJob::pretrain(models::gpt3_13b()), &cluster).unwrap();
        let big =
            minimal_model_parallelism(&TrainJob::pretrain(models::gpt3_175b()), &cluster).unwrap();
        assert!(
            big > small,
            "175B ({big}) should need more MP than 13B ({small})"
        );
    }

    #[test]
    fn memory_check_can_be_disabled() {
        let job = TrainJob::pretrain(models::gpt3_175b());
        let cluster = presets::hgx_h200_cluster();
        let unchecked = valid_configs(
            &job,
            &cluster,
            EnumerateOptions {
                include_fsdp: false,
                check_memory: false,
            },
        );
        let checked = valid_configs(
            &job,
            &cluster,
            EnumerateOptions {
                include_fsdp: false,
                check_memory: true,
            },
        );
        assert!(unchecked.len() > checked.len());
    }
}
