//! Integration tests asserting the paper's qualitative findings emerge from
//! the simulation at small scale.

use charllm::prelude::*;
use charllm_hw::presets::hgx_h200_with_nodes;
use charllm_trace::KernelClass;

fn run(cluster: &charllm_hw::Cluster, job: &TrainJob, label: &str) -> charllm::RunReport {
    Experiment::builder()
        .cluster(cluster.clone())
        .job(job.clone())
        .parallelism(label)
        .unwrap()
        .sim_config(SimConfig::fast())
        .run()
        .unwrap_or_else(|e| panic!("{label}: {e}"))
}

#[test]
fn tp_heavy_configs_are_communication_bound() {
    // §4.2: TP-heavy setups show far more communication time than PP-heavy.
    let cluster = single_gpu_per_node_cluster(4);
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let tp = run(&cluster, &job, "TP4-PP1");
    let pp = run(&cluster, &job, "TP1-PP4");
    let comm = |r: &charllm::RunReport| r.mean_kernel_time().comm_total();
    assert!(
        comm(&tp) > 5.0 * comm(&pp),
        "TP comm {:.2}s vs PP comm {:.2}s",
        comm(&tp),
        comm(&pp)
    );
}

#[test]
fn recompute_trades_time_for_memory() {
    use charllm_parallel::{rank_memory, ParallelismSpec, StagePartition};
    let cluster = single_hgx_node();
    let base = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let with = base.clone().with_recompute(true);
    let r_base = run(&cluster, &base, "TP2-PP4");
    let r_with = run(&cluster, &with, "TP2-PP4");
    assert!(
        r_with.step_time_s > r_base.step_time_s,
        "recompute must cost time"
    );

    let spec = ParallelismSpec::parse("TP2-PP4", 8).unwrap();
    let part = StagePartition::even(40, 4).unwrap();
    let m_base = rank_memory(&base, &spec, &part);
    let m_with = rank_memory(&with, &spec, &part);
    assert!(
        m_with.activations < m_base.activations / 2,
        "recompute must save memory"
    );
}

#[test]
fn node_local_expert_parallelism_avoids_pcie() {
    // §4.2: when TP crowds EP out of the node, all-to-all crosses the NIC.
    let cluster = hgx_h200_with_nodes(2);
    let job = TrainJob::pretrain(mixtral_8x7b())
        .with_global_batch(8)
        .with_recompute(true);
    let local = run(&cluster, &job, "EP8-TP1-PP2"); // EP inside one node
    let spanning = run(&cluster, &job, "EP8-TP2-PP1"); // EP spans both nodes
    let pcie = |r: &charllm::RunReport| -> f64 { (0..16).map(|g| r.sim.traffic.pcie(g)).sum() };
    assert!(
        pcie(&spanning) > 10.0 * pcie(&local).max(1.0),
        "spanning EP pcie {:.2e} vs local {:.2e}",
        pcie(&spanning),
        pcie(&local)
    );
    assert!(local.tokens_per_s > spanning.tokens_per_s);
}

#[test]
fn microbatch_scaling_helps_fsdp_and_hurts_deep_pp() {
    // §5: mb1 -> mb4 speeds up TP8-FSDP but slows pipeline-heavy configs.
    let cluster = hgx_h200_with_nodes(2);
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(16);
    let fsdp_mb1 = run(&cluster, &job.clone().with_microbatch(1), "TP8-FSDP2");
    let fsdp_mb4 = run(&cluster, &job.clone().with_microbatch(4), "TP8-FSDP2");
    assert!(
        fsdp_mb4.tokens_per_s > 1.5 * fsdp_mb1.tokens_per_s,
        "fsdp mb4 {} vs mb1 {}",
        fsdp_mb4.tokens_per_s,
        fsdp_mb1.tokens_per_s
    );
    let pp_job = job.with_recompute(true);
    let pp_mb1 = run(&cluster, &pp_job.clone().with_microbatch(1), "TP2-PP8");
    let pp_mb4 = run(&cluster, &pp_job.with_microbatch(4), "TP2-PP8");
    assert!(
        pp_mb4.tokens_per_s < pp_mb1.tokens_per_s,
        "deep PP should lose throughput at mb4: {} vs {}",
        pp_mb4.tokens_per_s,
        pp_mb1.tokens_per_s
    );
}

#[test]
fn chunked_p2p_recovers_pipeline_bandwidth() {
    // The §4.2 recommendation: chunking cross-node SendRecv helps TP+PP.
    let cluster = hgx_h200_with_nodes(2);
    let base = TrainJob::pretrain(gpt3_13b())
        .with_global_batch(8)
        .with_recompute(true);
    let mut chunked = base.clone();
    chunked.optim.chunked_p2p = true;
    let mono = run(&cluster, &base, "TP8-PP2");
    let chk = run(&cluster, &chunked, "TP8-PP2");
    // At this scale most SendRecv time is pipeline stall, so the wire-time
    // saving is small — but chunking must never hurt, and the flow-level
    // store-and-forward penalty is asserted directly in charllm-net.
    let sendrecv = |r: &charllm::RunReport| r.mean_kernel_time().get(KernelClass::SendRecv);
    assert!(
        sendrecv(&chk) <= sendrecv(&mono) * 1.01,
        "chunked sendrecv {:.3}s vs unchunked {:.3}s",
        sendrecv(&chk),
        sendrecv(&mono)
    );
    assert!(chk.step_time_s <= mono.step_time_s * 1.01);
}

#[test]
fn cc_overlap_raises_power_and_temperature() {
    // §4.3: overlap increases utilization and thermal stress.
    let cluster = single_hgx_node();
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(16);
    let base = run(&cluster, &job, "TP4-PP2");
    let cc = run(&cluster, &job.clone().with_cc_overlap(true), "TP4-PP2");
    assert!(cc.mean_power_w >= base.mean_power_w * 0.98);
    assert!(cc.peak_temp_c >= base.peak_temp_c - 0.5);
}

#[test]
fn lora_is_dramatically_more_efficient() {
    // §4.3: LoRA lifts training efficiency by an order of magnitude when
    // gradient synchronization crosses nodes (DP group spans the fabric).
    let cluster = hgx_h200_with_nodes(2);
    let arch = gpt3_13b();
    let full = TrainJob::pretrain(arch.clone()).with_global_batch(8);
    let lora = TrainJob::lora_finetune(arch).with_global_batch(8);
    let r_full = run(&cluster, &full, "TP8-PP1");
    let r_lora = run(&cluster, &lora, "TP8-PP1");
    assert!(
        r_lora.tokens_per_joule > 3.0 * r_full.tokens_per_joule,
        "lora {:.3} vs full {:.3} tok/J",
        r_lora.tokens_per_joule,
        r_full.tokens_per_joule
    );
}

#[test]
fn deeper_pipelines_draw_more_power_than_tp_heavy() {
    // §4.2/Fig 4: PP-heavy configs are compute-dense and hotter; TP-heavy
    // draw less power (communication-dominated).
    let cluster = hgx_h200_with_nodes(2);
    // Enough microbatches (32) that the deep pipeline actually fills.
    let job = TrainJob::pretrain(gpt3_13b())
        .with_global_batch(64)
        .with_recompute(true);
    let pp = run(&cluster, &job, "TP1-PP8");
    let tp = run(&cluster, &job, "TP8-PP2");
    assert!(
        pp.mean_power_w > tp.mean_power_w,
        "PP-heavy {:.0}W vs TP-heavy {:.0}W",
        pp.mean_power_w,
        tp.mean_power_w
    );
}
