//! Training-job configuration: the knobs the paper sweeps.

use serde::{Deserialize, Serialize};

use crate::arch::TransformerArch;
use crate::error::ModelError;
use crate::lora::LoraConfig;
use crate::precision::Precision;

/// Software optimization techniques under study (§3.1, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Optimizations {
    /// Full activation recomputation ("act").
    pub activation_recompute: bool,
    /// Compute–communication overlap ("cc").
    pub cc_overlap: bool,
    /// Distributed optimizer (ZeRO-1) sharding optimizer state across DP
    /// ranks. The paper enables this for all dense models and disables it
    /// for MoE (NeMo/Megatron limitation).
    pub distributed_optimizer: bool,
    /// LoRA finetuning instead of full pretraining.
    pub lora: Option<LoraConfig>,
    /// Chunk pipeline SendRecv transfers NCCL-style instead of issuing one
    /// monolithic message. The paper observes frameworks do *not* do this
    /// (§4.2) and recommends it; enabling it is our ablation of that
    /// recommendation.
    pub chunked_p2p: bool,
}

impl Optimizations {
    /// The paper's label for the configuration: `Base`, `cc`, `act`, or
    /// `cc+act` (LoRA runs are labelled `lora`).
    pub fn label(&self) -> String {
        if self.lora.is_some() {
            return "lora".to_string();
        }
        match (self.cc_overlap, self.activation_recompute) {
            (false, false) => "Base".to_string(),
            (true, false) => "cc".to_string(),
            (false, true) => "act".to_string(),
            (true, true) => "cc+act".to_string(),
        }
    }
}

/// One training run configuration: model, batch geometry, precision and
/// optimization set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainJob {
    /// The model architecture.
    pub arch: TransformerArch,
    /// Training sequence length.
    pub seq_len: usize,
    /// Global batch size in sequences (the paper fixes 128).
    pub global_batch: usize,
    /// Microbatch size in sequences.
    pub microbatch: usize,
    /// Training precision.
    pub precision: Precision,
    /// Optimization techniques enabled.
    pub optim: Optimizations,
}

impl TrainJob {
    /// The paper's standard pretraining setup for a model: global batch 128,
    /// the model's default sequence length, BF16, microbatch 1, ZeRO-1 for
    /// dense models (disabled for MoE, matching the paper's framework
    /// limitation).
    pub fn pretrain(arch: TransformerArch) -> Self {
        let distributed_optimizer = !arch.is_moe();
        TrainJob {
            seq_len: arch.default_seq_len,
            global_batch: 128,
            microbatch: 1,
            precision: Precision::Bf16,
            optim: Optimizations {
                distributed_optimizer,
                ..Optimizations::default()
            },
            arch,
        }
    }

    /// LoRA finetuning variant (§4.3: PubMedQA-style short-sequence task).
    pub fn lora_finetune(arch: TransformerArch) -> Self {
        let mut job = TrainJob::pretrain(arch);
        job.seq_len = 1024;
        job.optim.lora = Some(LoraConfig::default());
        // Frozen base weights need no optimizer sharding.
        job.optim.distributed_optimizer = false;
        job
    }

    /// Builder-style: set the microbatch size.
    pub fn with_microbatch(mut self, microbatch: usize) -> Self {
        self.microbatch = microbatch;
        self
    }

    /// Builder-style: enable/disable activation recomputation.
    pub fn with_recompute(mut self, on: bool) -> Self {
        self.optim.activation_recompute = on;
        self
    }

    /// Builder-style: enable/disable compute–communication overlap.
    pub fn with_cc_overlap(mut self, on: bool) -> Self {
        self.optim.cc_overlap = on;
        self
    }

    /// Builder-style: set the sequence length.
    pub fn with_seq_len(mut self, seq_len: usize) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Builder-style: set the global batch size.
    pub fn with_global_batch(mut self, global_batch: usize) -> Self {
        self.global_batch = global_batch;
        self
    }

    /// Validate batch geometry against a data-parallel width.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidJob`] when the global batch does not
    /// divide evenly into `dp × microbatch` chunks.
    pub fn validate_for_dp(&self, dp: usize) -> Result<(), ModelError> {
        self.arch.validate()?;
        if self.microbatch == 0 || self.global_batch == 0 {
            return Err(ModelError::InvalidJob(
                "batch sizes must be non-zero".into(),
            ));
        }
        if dp == 0 {
            return Err(ModelError::InvalidJob("dp width must be non-zero".into()));
        }
        if !self.global_batch.is_multiple_of(dp * self.microbatch) {
            return Err(ModelError::InvalidJob(format!(
                "global batch {} not divisible by dp {} x microbatch {}",
                self.global_batch, dp, self.microbatch
            )));
        }
        Ok(())
    }

    /// Microbatches each pipeline (data-parallel replica) executes per step.
    pub fn num_microbatches(&self, dp: usize) -> usize {
        self.global_batch / (dp * self.microbatch)
    }

    /// Tokens consumed per training step across the whole cluster.
    pub fn tokens_per_step(&self) -> u64 {
        (self.global_batch * self.seq_len) as u64
    }

    /// Tokens per microbatch (one pipeline-stage unit of work).
    pub fn tokens_per_microbatch(&self) -> u64 {
        (self.microbatch * self.seq_len) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn pretrain_defaults_match_paper() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        assert_eq!(job.global_batch, 128);
        assert_eq!(job.precision, Precision::Bf16);
        assert!(job.optim.distributed_optimizer, "dense models use ZeRO-1");
        assert_eq!(job.optim.label(), "Base");
    }

    #[test]
    fn moe_disables_distributed_optimizer() {
        let job = TrainJob::pretrain(presets::mixtral_8x7b());
        assert!(!job.optim.distributed_optimizer);
    }

    #[test]
    fn labels_match_paper_terminology() {
        let base = TrainJob::pretrain(presets::gpt3_175b());
        assert_eq!(base.optim.label(), "Base");
        assert_eq!(base.clone().with_cc_overlap(true).optim.label(), "cc");
        assert_eq!(base.clone().with_recompute(true).optim.label(), "act");
        assert_eq!(
            base.with_cc_overlap(true)
                .with_recompute(true)
                .optim
                .label(),
            "cc+act"
        );
        let lora = TrainJob::lora_finetune(presets::llama3_70b());
        assert_eq!(lora.optim.label(), "lora");
    }

    #[test]
    fn microbatch_counts() {
        let job = TrainJob::pretrain(presets::gpt3_175b()).with_microbatch(1);
        assert_eq!(job.num_microbatches(2), 64);
        let job4 = job.with_microbatch(4);
        assert_eq!(job4.num_microbatches(2), 16);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let job = TrainJob::pretrain(presets::gpt3_175b()).with_microbatch(3);
        assert!(job.validate_for_dp(2).is_err(), "128 not divisible by 6");
        assert!(job.validate_for_dp(0).is_err());
        let zero = TrainJob::pretrain(presets::gpt3_175b()).with_microbatch(0);
        assert!(zero.validate_for_dp(1).is_err());
    }

    #[test]
    fn valid_geometry_accepted() {
        let job = TrainJob::pretrain(presets::gpt3_175b()).with_microbatch(4);
        job.validate_for_dp(2).unwrap();
        job.validate_for_dp(4).unwrap();
    }

    #[test]
    fn tokens_per_step() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        assert_eq!(job.tokens_per_step(), 128 * 2048);
    }
}
