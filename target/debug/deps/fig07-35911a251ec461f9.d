/root/repo/target/debug/deps/fig07-35911a251ec461f9.d: crates/bench/benches/fig07.rs

/root/repo/target/debug/deps/fig07-35911a251ec461f9: crates/bench/benches/fig07.rs

crates/bench/benches/fig07.rs:
