/root/repo/target/debug/examples/microbatch_tuning-e254da73f98d6f33.d: examples/microbatch_tuning.rs Cargo.toml

/root/repo/target/debug/examples/libmicrobatch_tuning-e254da73f98d6f33.rmeta: examples/microbatch_tuning.rs Cargo.toml

examples/microbatch_tuning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
