/root/repo/target/release/deps/charllm_parallel-ffde8c65338aade6.d: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

/root/repo/target/release/deps/libcharllm_parallel-ffde8c65338aade6.rlib: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

/root/repo/target/release/deps/libcharllm_parallel-ffde8c65338aade6.rmeta: crates/parallel/src/lib.rs crates/parallel/src/enumerate.rs crates/parallel/src/error.rs crates/parallel/src/mapping.rs crates/parallel/src/memory.rs crates/parallel/src/placement.rs crates/parallel/src/schedule.rs crates/parallel/src/spec.rs crates/parallel/src/thermal_aware.rs

crates/parallel/src/lib.rs:
crates/parallel/src/enumerate.rs:
crates/parallel/src/error.rs:
crates/parallel/src/mapping.rs:
crates/parallel/src/memory.rs:
crates/parallel/src/placement.rs:
crates/parallel/src/schedule.rs:
crates/parallel/src/spec.rs:
crates/parallel/src/thermal_aware.rs:
