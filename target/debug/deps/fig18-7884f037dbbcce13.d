/root/repo/target/debug/deps/fig18-7884f037dbbcce13.d: crates/bench/benches/fig18.rs Cargo.toml

/root/repo/target/debug/deps/libfig18-7884f037dbbcce13.rmeta: crates/bench/benches/fig18.rs Cargo.toml

crates/bench/benches/fig18.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
