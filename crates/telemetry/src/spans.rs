//! Per-rank span streams: the simulator's execution timeline.
//!
//! The Rust stand-in for a Chakra/Kineto trace: every compute kernel and
//! every blocking collective wait becomes a [`Span`] on its rank's track,
//! every network flow becomes a [`FlowSpan`] between two GPUs, and every
//! thermal-control tick records a [`PowerTick`] so energy can be attributed
//! back onto the timeline. The [`SpanRecorder`] is filled through the
//! simulator's observer hooks (`charllm-sim`'s `SimObserver`) and consumed
//! by [`crate::phase`] (wall-time/energy attribution) and
//! [`crate::chrome_trace`] (Perfetto export).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use charllm_trace::{ComputeKind, ExecutionTrace, KernelClass, Step};

/// What a span on a rank's track represents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A compute kernel.
    Compute {
        /// Kernel class.
        kind: ComputeKind,
    },
    /// A blocking wait on a collective (closed when the collective
    /// completes; a rank that waits on an already-complete collective
    /// produces no span).
    Collective {
        /// Collective instance id within the trace.
        coll: u32,
        /// Reporting bucket of the collective.
        class: KernelClass,
    },
}

impl SpanKind {
    /// Human-readable label (used for trace-event names and top-k tables).
    pub fn label(&self) -> String {
        match self {
            SpanKind::Compute { kind } => format!("{kind:?}"),
            SpanKind::Collective { coll, class } => format!("{class}[c{coll}]"),
        }
    }

    /// Whether this span is a collective wait.
    pub fn is_collective(&self) -> bool {
        matches!(self, SpanKind::Collective { .. })
    }
}

/// One closed interval of rank activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Rank the span belongs to.
    pub rank: u32,
    /// GPU the rank is placed on.
    pub gpu: u32,
    /// Training iteration the span belongs to.
    pub iteration: u32,
    /// Start time, seconds of simulated time.
    pub t0_s: f64,
    /// End time, seconds of simulated time.
    pub t1_s: f64,
    /// What the rank was doing.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration in seconds.
    pub fn dur_s(&self) -> f64 {
        self.t1_s - self.t0_s
    }
}

/// One network flow's lifetime (launch to retirement).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpan {
    /// Collective instance the flow belongs to.
    pub coll: u32,
    /// Iteration of the launching rank.
    pub iteration: u32,
    /// Source GPU index.
    pub src_gpu: u32,
    /// Destination GPU index.
    pub dst_gpu: u32,
    /// Launch time, seconds.
    pub t0_s: f64,
    /// Retirement time, seconds.
    pub t1_s: f64,
}

/// One injected fault's active window (onset to recovery).
///
/// Opened by the simulator's `fault_begin` observer hook and closed by
/// `fault_end`; a fault still active when the run finishes keeps
/// `t1_s == t0_s` until closed. Exported to Perfetto under the `fault`
/// category so outages are visible alongside the rank tracks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpan {
    /// Fault event index within the plan (stable across runs).
    pub fault: u32,
    /// Kind label, e.g. `gpu-fail-stop` or `link-degrade`.
    pub label: String,
    /// Target entity index (GPU, link, or rank — determined by the label);
    /// `u32::MAX` marks a cluster-wide event.
    pub target: u32,
    /// Onset time, seconds.
    pub t0_s: f64,
    /// Recovery time, seconds.
    pub t1_s: f64,
}

/// A collective instance completing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollComplete {
    /// Collective instance id.
    pub coll: u32,
    /// Iteration the instance belongs to.
    pub iteration: u32,
    /// Completion time, seconds.
    pub t_s: f64,
}

/// One thermal-control-period power reading for one GPU.
///
/// `power_w × period_s` is exactly the energy the simulator accrues for the
/// window `[t_s - period_s, t_s]`, so summing `measuring` ticks reproduces
/// the engine's measured energy bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerTick {
    /// GPU index.
    pub gpu: u32,
    /// Control-boundary time, seconds (end of the window).
    pub t_s: f64,
    /// Board power over the window, watts.
    pub power_w: f64,
    /// Window length, seconds.
    pub period_s: f64,
    /// Whether the window counts toward measured energy (post-warmup).
    pub measuring: bool,
}

/// Sentinel for "no slot" in the flow id table.
const NIL: u32 = u32::MAX;

/// One in-flight flow in the launch-ordered slab.
#[derive(Debug, Clone, Copy)]
struct FlowSlot {
    span: FlowSpan,
    open: bool,
}

/// Collects span streams, flow lifetimes, collective completions and power
/// ticks from a simulation run.
///
/// Ranks and GPUs are discovered lazily from the hook arguments, so the
/// recorder needs no up-front topology knowledge; [`SpanRecorder::for_trace`]
/// preallocates the per-rank span streams when the trace is known up front.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    spans: Vec<Vec<Span>>,
    open: Vec<Option<Span>>,
    gpu_of_rank: Vec<Option<u32>>,
    flows: Vec<FlowSpan>,
    /// Launch-ordered slab of in-flight flows; retired entries stay in
    /// place (marked closed) so open-flow order is preserved. The slab is
    /// truncated (capacity kept) whenever the last open flow retires, so it
    /// stays bounded by the peak number of flows per quiescent period and
    /// is reused across iterations without reallocating.
    slots: Vec<FlowSlot>,
    /// Engine flow id → slab slot (`NIL` when the id has no open flow).
    /// Ids are the dense, recycled indices the simulator passes to the
    /// observer hooks, so matching a retirement is one array read instead
    /// of re-hashing the `(coll, iteration, src, dst)` identity.
    flow_slot: Vec<u32>,
    open_flow_count: usize,
    completions: Vec<CollComplete>,
    power: Vec<PowerTick>,
    fault_spans: Vec<FaultSpan>,
    /// Open fault index: fault id → slot in `fault_spans`.
    open_faults: HashMap<u32, usize>,
}

impl SpanRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SpanRecorder::default()
    }

    /// A recorder with per-rank span streams preallocated for `iterations`
    /// runs of `trace`: each rank closes at most one span per `Compute` or
    /// `CollWait` step per iteration, so every stream is sized exactly once
    /// up front instead of growing through doubling on the hot path.
    pub fn for_trace(trace: &ExecutionTrace, iterations: usize) -> Self {
        let world = trace.world();
        let mut rec = SpanRecorder {
            spans: Vec::with_capacity(world),
            open: Vec::new(),
            gpu_of_rank: vec![None; world],
            ..SpanRecorder::default()
        };
        rec.open.resize_with(world, || None);
        for rank in 0..world {
            let per_iter = trace
                .steps(rank)
                .iter()
                .filter(|s| matches!(s, Step::Compute { .. } | Step::CollWait { .. }))
                .count();
            rec.spans.push(Vec::with_capacity(per_iter * iterations));
        }
        rec.completions
            .reserve(trace.num_collectives() * iterations);
        rec
    }

    fn ensure_rank(&mut self, rank: usize) {
        if rank >= self.spans.len() {
            self.spans.resize_with(rank + 1, Vec::new);
            self.open.resize_with(rank + 1, || None);
            self.gpu_of_rank.resize(rank + 1, None);
        }
    }

    /// Open a span on `rank`'s track. Panics (debug) if one is already open:
    /// the engines never nest rank activity.
    pub fn begin_task(&mut self, rank: usize, gpu: u32, iteration: u32, kind: SpanKind, t_s: f64) {
        self.ensure_rank(rank);
        debug_assert!(self.open[rank].is_none(), "rank {rank} has an open span");
        self.gpu_of_rank[rank] = Some(gpu);
        self.open[rank] = Some(Span {
            rank: rank as u32,
            gpu,
            iteration,
            t0_s: t_s,
            t1_s: t_s,
            kind,
        });
    }

    /// Close the open span on `rank`'s track at `t_s`.
    pub fn end_task(&mut self, rank: usize, t_s: f64) {
        self.ensure_rank(rank);
        if let Some(mut span) = self.open[rank].take() {
            span.t1_s = t_s;
            self.spans[rank].push(span);
        } else {
            debug_assert!(false, "rank {rank} closed a span it never opened");
        }
    }

    /// Record a flow launch. `flow` is the engine's dense flow id; it must
    /// not collide with another *open* flow (ids are recycled only after
    /// retirement, which both engines guarantee).
    pub fn flow_launch(
        &mut self,
        flow: u32,
        coll: u32,
        iteration: u32,
        src_gpu: u32,
        dst_gpu: u32,
        t_s: f64,
    ) {
        let slot = self.slots.len() as u32;
        self.slots.push(FlowSlot {
            span: FlowSpan {
                coll,
                iteration,
                src_gpu,
                dst_gpu,
                t0_s: t_s,
                t1_s: t_s,
            },
            open: true,
        });
        let fi = flow as usize;
        if fi >= self.flow_slot.len() {
            self.flow_slot.resize(fi + 1, NIL);
        }
        debug_assert_eq!(self.flow_slot[fi], NIL, "flow id {flow} already open");
        self.flow_slot[fi] = slot;
        self.open_flow_count += 1;
    }

    /// Record a flow retirement by engine flow id — one array read, no
    /// identity hashing.
    pub fn flow_retire(&mut self, flow: u32, t_s: f64) {
        let fi = flow as usize;
        let slot = self.flow_slot.get(fi).copied().unwrap_or(NIL);
        if slot != NIL {
            self.flow_slot[fi] = NIL;
            let fs = &mut self.slots[slot as usize];
            fs.open = false;
            fs.span.t1_s = t_s;
            self.flows.push(fs.span);
            self.open_flow_count -= 1;
            if self.open_flow_count == 0 {
                // Quiescent: every id points at NIL again, so only the slab
                // needs resetting (capacity kept for the next burst).
                self.slots.clear();
            }
        } else {
            debug_assert!(false, "retired flow was never launched");
        }
    }

    /// Record a collective instance completing.
    pub fn collective_complete(&mut self, coll: u32, iteration: u32, t_s: f64) {
        self.completions.push(CollComplete {
            coll,
            iteration,
            t_s,
        });
    }

    /// Record the onset of an injected fault.
    pub fn fault_begin(&mut self, fault: u32, label: &str, target: u32, t_s: f64) {
        let slot = self.fault_spans.len();
        self.fault_spans.push(FaultSpan {
            fault,
            label: label.to_string(),
            target,
            t0_s: t_s,
            t1_s: t_s,
        });
        self.open_faults.insert(fault, slot);
    }

    /// Record the recovery of a previously begun fault.
    pub fn fault_end(&mut self, fault: u32, t_s: f64) {
        if let Some(slot) = self.open_faults.remove(&fault) {
            self.fault_spans[slot].t1_s = t_s;
        } else {
            debug_assert!(false, "fault {fault} ended but never began");
        }
    }

    /// Record one thermal-control-period power reading.
    pub fn power_tick(&mut self, gpu: u32, t_s: f64, power_w: f64, period_s: f64, measuring: bool) {
        self.power.push(PowerTick {
            gpu,
            t_s,
            power_w,
            period_s,
            measuring,
        });
    }

    /// Number of rank tracks seen so far.
    pub fn world(&self) -> usize {
        self.spans.len()
    }

    /// Closed spans of one rank, in emission (time) order.
    pub fn spans(&self, rank: usize) -> &[Span] {
        &self.spans[rank]
    }

    /// Number of closed spans across all ranks.
    pub fn num_spans(&self) -> usize {
        self.spans.iter().map(Vec::len).sum()
    }

    /// Spans still open (normally zero after a completed run).
    pub fn num_open_spans(&self) -> usize {
        self.open.iter().filter(|s| s.is_some()).count()
    }

    /// GPU a rank was observed on, if it ever ran anything.
    pub fn gpu_of_rank(&self, rank: usize) -> Option<u32> {
        self.gpu_of_rank.get(rank).copied().flatten()
    }

    /// Retired flows in retirement order.
    pub fn flows(&self) -> &[FlowSpan] {
        &self.flows
    }

    /// Flows still in flight (launch recorded, no retirement yet), in
    /// launch order.
    pub fn open_flows(&self) -> Vec<FlowSpan> {
        self.slots
            .iter()
            .filter(|s| s.open)
            .map(|s| s.span)
            .collect()
    }

    /// Collective completions in completion order.
    pub fn completions(&self) -> &[CollComplete] {
        &self.completions
    }

    /// Power readings in recording order.
    pub fn power_ticks(&self) -> &[PowerTick] {
        &self.power
    }

    /// Fault windows in onset order (still-open windows have
    /// `t1_s == t0_s`).
    pub fn fault_spans(&self) -> &[FaultSpan] {
        &self.fault_spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_open_and_close_per_rank() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            1,
            5,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(1, 2.5);
        assert_eq!(r.world(), 2);
        assert_eq!(r.spans(0).len(), 0);
        assert_eq!(r.spans(1).len(), 1);
        let s = r.spans(1)[0];
        assert_eq!(s.gpu, 5);
        assert!((s.dur_s() - 2.5).abs() < 1e-12);
        assert_eq!(r.gpu_of_rank(1), Some(5));
        assert_eq!(r.gpu_of_rank(0), None);
        assert_eq!(r.num_open_spans(), 0);
    }

    #[test]
    fn flows_match_by_engine_id() {
        let mut r = SpanRecorder::new();
        // Two flows with identical (coll, iter, src, dst) identity but
        // distinct engine ids — ids disambiguate where hashing used to.
        r.flow_launch(0, 3, 0, 0, 1, 0.0);
        r.flow_launch(1, 3, 0, 0, 1, 1.0);
        r.flow_retire(0, 2.0);
        assert_eq!(r.flows().len(), 1);
        assert_eq!(r.open_flows().len(), 1);
        // The retired flow is the one launched at t=0 under id 0.
        assert_eq!(r.flows()[0].t0_s, 0.0);
        assert_eq!(r.open_flows()[0].t0_s, 1.0);
        // Retiring the rest goes quiescent; the id is then recyclable.
        r.flow_retire(1, 3.0);
        assert_eq!(r.open_flows().len(), 0);
        r.flow_launch(1, 9, 1, 4, 5, 4.0);
        r.flow_retire(1, 5.0);
        assert_eq!(r.flows().len(), 3);
        assert_eq!(r.flows()[2].coll, 9);
    }

    #[test]
    fn fault_windows_open_and_close() {
        let mut r = SpanRecorder::new();
        r.fault_begin(0, "link-degrade", 7, 1.0);
        r.fault_begin(1, "gpu-fail-stop", 3, 2.0);
        r.fault_end(0, 4.0);
        let spans = r.fault_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "link-degrade");
        assert_eq!(spans[0].target, 7);
        assert!((spans[0].t1_s - 4.0).abs() < 1e-12);
        // Fault 1 is still open.
        assert_eq!(spans[1].t0_s, spans[1].t1_s);
        r.fault_end(1, 5.0);
        assert!((r.fault_spans()[1].t1_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn labels_distinguish_kinds() {
        let compute = SpanKind::Compute {
            kind: ComputeKind::Attention,
        };
        let coll = SpanKind::Collective {
            coll: 7,
            class: KernelClass::AllReduce,
        };
        assert_eq!(compute.label(), "Attention");
        assert_eq!(coll.label(), "AllReduce[c7]");
        assert!(coll.is_collective());
        assert!(!compute.is_collective());
    }
}
