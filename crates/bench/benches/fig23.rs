//! Figure 23: GPU power, temperature and clock during distributed
//! *inference* across parallelism configurations and microbatch sizes
//! (§7.2) — less communication-bound than training, cooler, but with bursty
//! peaks.

use charllm::prelude::*;
use charllm_bench::{banner, save_json, sim_config};
use charllm_trace::InferenceConfig;

fn main() {
    banner(
        "Figure 23",
        "inference microbatch sweep: throughput/power/temp, H200",
    );
    let cluster = hgx_h200_cluster();
    let job = TrainJob::pretrain(gpt3_175b());
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<4} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "config", "b", "gen tok/s", "avg W", "peak W", "avg C", "peak C"
    );
    for label in ["TP8-PP4", "TP4-PP8", "TP2-PP16"] {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        for batch in [1usize, 4, 16] {
            let cfg = InferenceConfig {
                batch,
                prompt_len: 512,
                decode_tokens: 16,
            };
            let result = Experiment::builder()
                .cluster(cluster.clone())
                .job(job.clone())
                .spec(spec)
                .inference(cfg)
                .sim_config(sim_config())
                .run();
            match result {
                Ok(r) => {
                    println!(
                        "{:<12} {:<4} {:>12.1} {:>8.0} {:>8.0} {:>8.1} {:>8.1}",
                        label,
                        batch,
                        r.tokens_per_s,
                        r.mean_power_w,
                        r.peak_power_w,
                        r.mean_temp_c,
                        r.peak_temp_c
                    );
                    rows.push(serde_json::json!({
                        "parallelism": label,
                        "batch": batch,
                        "gen_tokens_per_s": r.tokens_per_s,
                        "mean_power_w": r.mean_power_w,
                        "peak_power_w": r.peak_power_w,
                        "mean_temp_c": r.mean_temp_c,
                        "peak_temp_c": r.peak_temp_c,
                    }));
                }
                Err(e) => eprintln!("  [skip] {label} b{batch}: {e}"),
            }
        }
    }
    save_json("fig23", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: larger inference batches raise throughput without\n\
         proportionally raising average power/temperature (fewer sync steps,\n\
         lower communication); inference runs cooler than training overall\n\
         while peak power stays high during bursty attention/GEMM phases."
    );
}
