//! Table 2: the direction each parallelism/optimization technique moves
//! performance (throughput), memory and communication — *measured* from the
//! simulator and the memory model rather than asserted.

use charllm::insights::{table2_row, Table2Row};
use charllm::prelude::*;
use charllm_bench::{banner, gbs, save_json, sim_config};
use charllm_hw::presets::hgx_h200_with_nodes;

fn main() {
    banner(
        "Table 2",
        "measured direction of Perf / Memory / Comm per technique",
    );
    let cluster = hgx_h200_cluster();
    let half = hgx_h200_with_nodes(2);
    let world = cluster.num_gpus();
    let mut rows: Vec<Table2Row> = Vec::new();

    let dense = TrainJob::pretrain(gpt3_30b()).with_global_batch(gbs());
    let moe = TrainJob::pretrain(mixtral_8x7b())
        .with_global_batch(gbs())
        .with_recompute(true);
    let pp4 = ParallelismSpec::parse("TP1-PP4", world).expect("valid");

    type Case<'a> = (
        &'a str,
        (&'a TrainJob, ParallelismSpec, &'a charllm_hw::Cluster),
        (&'a TrainJob, ParallelismSpec, &'a charllm_hw::Cluster),
    );
    let tp8pp4 = ParallelismSpec::parse("TP8-PP4", world).unwrap();
    let tp1pp16 = ParallelismSpec::parse("TP1-PP16", world).unwrap();
    let ep2 = ParallelismSpec::parse("EP2-TP1-PP4", world).unwrap();
    let ep8 = ParallelismSpec::parse("EP8-TP1-PP4", world).unwrap();
    // DP: same model-parallel shape, grow the cluster so DP doubles.
    let dp_small = ParallelismSpec::parse("TP2-PP4", half.num_gpus()).unwrap();
    let dp_large = ParallelismSpec::parse("TP2-PP4", world).unwrap();
    // FSDP vs replicated data parallelism at the same TP width.
    let tp8dp4 = ParallelismSpec::parse("TP8-PP1", world).unwrap();
    let tp8fsdp4 = ParallelismSpec::parse("TP8-FSDP4", world).unwrap();

    let cases: Vec<Case> = vec![
        ("TP", (&dense, pp4, &cluster), (&dense, tp8pp4, &cluster)),
        ("PP", (&dense, pp4, &cluster), (&dense, tp1pp16, &cluster)),
        ("EP", (&moe, ep2, &cluster), (&moe, ep8, &cluster)),
        (
            "DP",
            (&dense, dp_small, &half),
            (&dense, dp_large, &cluster),
        ),
        (
            "FSDP",
            (&dense, tp8dp4, &cluster),
            (&dense, tp8fsdp4, &cluster),
        ),
    ];
    for (name, base, variant) in cases {
        match table2_row(name, base, variant, sim_config()) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("  [skip] {name}: {e}"),
        }
    }

    // Optimization techniques on a fixed strategy.
    let spec = ParallelismSpec::parse("TP2-PP4", world).expect("valid");
    let act = dense.clone().with_recompute(true);
    let cc = dense.clone().with_cc_overlap(true);
    for (name, variant) in [("act", &act), ("cc", &cc)] {
        match table2_row(
            name,
            (&dense, spec, &cluster),
            (variant, spec, &cluster),
            sim_config(),
        ) {
            Ok(row) => rows.push(row),
            Err(e) => eprintln!("  [skip] {name}: {e}"),
        }
    }

    println!(
        "\n{:<8} {:>6} {:>8} {:>6}   paper:  TP vv/v/^^  PP -/v/^  EP v/v/^  DP ^/-/^  \
         FSDP v/v/^^  act v/v/-  cc ^/-/v",
        "tech", "Perf", "Memory", "Comm"
    );
    for row in &rows {
        println!(
            "{:<8} {:>6} {:>8} {:>6}   (throughput {:+.0}%, memory {:+.0}%, comm/rank {:+.0}%)",
            row.technique,
            row.perf.arrow(),
            row.memory.arrow(),
            row.comm.arrow(),
            row.perf_change * 100.0,
            row.memory_change * 100.0,
            row.comm_change * 100.0,
        );
    }
    save_json(
        "table2",
        &serde_json::Value::Array(
            rows.iter()
                .map(|r| serde_json::to_value(r).expect("serializable"))
                .collect(),
        ),
    );
}
