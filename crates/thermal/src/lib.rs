//! Power, thermal and frequency (DVFS) models for CharLLM-PPT.
//!
//! This crate is the substitute for the paper's NVML/AMD-SMI + Zeus
//! telemetry stack *and* for the physical phenomena it observes:
//!
//! - [`power`]: activity- and frequency-dependent board power;
//! - [`rc`]: a first-order RC thermal model per GPU, driven by the
//!   position-dependent inlet temperatures of
//!   [`charllm_hw::AirflowLayout`] (front-to-back preheating, §6);
//! - [`governor`]: a DVFS governor that boosts when busy and throttles on
//!   thermal or power-cap violations — the mechanism behind the paper's
//!   clock-throttling heatmaps (Figs. 17b/18b) and straggler formation;
//! - [`variability`]: deterministic per-GPU silicon/cooling variability;
//! - [`gpu_state`]: the combined per-GPU state stepped by the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod governor;
pub mod gpu_state;
pub mod power;
pub mod rc;
pub mod variability;

pub use governor::{DvfsGovernor, GovernorConfig};
pub use gpu_state::{GpuThermal, ThermalSample};
pub use power::PowerModel;
pub use rc::ThermalSpec;
pub use variability::GpuVariability;
