//! # CharLLM-PPT — power, performance and thermal characterization of
//! distributed LLM training (Rust reproduction)
//!
//! This crate is the facade over the full simulation stack reproducing
//! *"Characterizing the Efficiency of Distributed Training: A Power,
//! Performance, and Thermal Perspective"* (MICRO 2025). It wires together:
//!
//! - [`charllm_hw`] — the three evaluated clusters (32×H200, 64×H100,
//!   32×MI250-GCD) with airflow geometry;
//! - [`charllm_models`] — the Table 1 workloads (GPT-3, Llama-3, Mixtral);
//! - [`charllm_parallel`] — TP/PP/DP/EP/FSDP with Megatron rank mapping;
//! - [`charllm_trace`] — kernel-level lowering (1F1B, recomputation,
//!   overlap, MoE all-to-all, ZeRO-1, FSDP, LoRA, inference);
//! - [`charllm_sim`] — the work-progress engine with thermal/DVFS feedback;
//! - [`charllm_telemetry`] — Zeus-style sampling and reporting.
//!
//! # Quickstart
//!
//! ```
//! use charllm::prelude::*;
//!
//! // GPT3-13B on a single HGX node with TP2-PP2 (tiny batch for the test).
//! let report = Experiment::builder()
//!     .cluster(single_hgx_node())
//!     .job(TrainJob::pretrain(gpt3_13b()).with_global_batch(8))
//!     .parallelism("TP2-PP2")
//!     .expect("valid parallelism label")
//!     .sim_config(SimConfig::fast())
//!     .run()
//!     .expect("simulation succeeds");
//! assert!(report.tokens_per_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod executor;
pub mod experiment;
pub mod insights;
pub mod presets;
pub mod report;
pub mod search;
pub mod server;
pub mod stream;
pub mod sweep;

pub use cache::{CacheHit, CacheStats, SimCache};
pub use error::CoreError;
pub use executor::Executor;
pub use experiment::{Experiment, ExperimentBuilder};
pub use report::{phase_table, top_spans_table, RunReport};
pub use stream::{ProgressEvent, ProgressStream};

/// Convenient imports for experiment-driving code.
pub mod prelude {
    pub use crate::cache::{CacheHit, CacheStats, SimCache};
    pub use crate::executor::Executor;
    pub use crate::experiment::{Experiment, ExperimentBuilder};
    pub use crate::presets::*;
    pub use crate::report::RunReport;
    pub use crate::server::{ServerConfig, SimServer};
    pub use crate::stream::{ProgressEvent, ProgressStream};
    pub use crate::sweep::{Sweep, SweepOutcome, SweepProgress};
    pub use charllm_hw::presets::{
        hgx_h100_cluster, hgx_h200_cluster, mi250_cluster, single_gpu_per_node_cluster,
    };
    pub use charllm_models::presets::{
        gpt3_13b, gpt3_175b, gpt3_30b, llama3_30b, llama3_70b, mixtral_4x7b, mixtral_8x22b,
        mixtral_8x7b,
    };
    pub use charllm_models::{Optimizations, TrainJob};
    pub use charllm_parallel::{ParallelismSpec, PipelineSchedule};
    pub use charllm_sim::{FaultEvent, FaultPlan, RecoveryPolicy, SimConfig};
    pub use charllm_telemetry::{MetricsHub, MetricsShard, MetricsSnapshot};
}
