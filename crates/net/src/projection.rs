//! Datacenter-scale projection (§7.1).
//!
//! Reimplements the paper's Astra-Sim-based methodology: take per-kernel
//! latencies measured at DP=1 on the real (here: simulated) cluster, divide
//! compute and non-DP communication time by the DP degree, and add an
//! analytically modeled DP gradient-AllReduce term. Inter-node bandwidth
//! scaling divides the modeled AllReduce by the bandwidth multiplier.

use serde::{Deserialize, Serialize};

use charllm_hw::LinkSpec;

/// A measured (or simulated) training step at the base DP degree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredStep {
    /// Time spent in compute kernels, seconds.
    pub compute_s: f64,
    /// Time spent in non-DP communication (TP/PP/EP), seconds.
    pub comm_s: f64,
    /// Gradient bytes each rank contributes to the DP AllReduce.
    pub grad_bytes_per_rank: u64,
    /// Tokens processed per step.
    pub tokens_per_step: u64,
    /// World size (GPUs) of the measured configuration (DP=1).
    pub base_world: usize,
}

/// One projected operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpProjection {
    /// Data-parallel degree.
    pub dp: usize,
    /// Total GPUs (`base_world × dp`).
    pub num_gpus: usize,
    /// Projected compute time per step, seconds.
    pub compute_s: f64,
    /// Projected non-DP communication time per step, seconds.
    pub comm_s: f64,
    /// Modeled DP AllReduce time per step, seconds.
    pub allreduce_s: f64,
    /// Projected step time, seconds.
    pub step_s: f64,
    /// Tokens/s/GPU at this scale.
    pub per_gpu_throughput: f64,
    /// Strong-scaling efficiency vs. ideal linear scaling (1.0 = ideal).
    pub scaling_efficiency: f64,
}

/// Ring AllReduce time for `bytes` per rank over `dp` ranks whose rings
/// bottleneck on a per-node NIC shared by `rings_per_node` concurrent rings.
pub fn ring_allreduce_time_s(bytes: u64, dp: usize, nic: &LinkSpec, rings_per_node: usize) -> f64 {
    if dp <= 1 || bytes == 0 {
        return 0.0;
    }
    let eff_bw = nic.bw_gbps * 1e9 / rings_per_node.max(1) as f64;
    let volume = 2.0 * (dp as f64 - 1.0) / dp as f64 * bytes as f64;
    let phases = 2 * (dp - 1);
    volume / eff_bw + phases as f64 * (nic.latency_us + nic.per_message_us) * 1e-6
}

/// Project step time and throughput across DP degrees (§7.1 methodology).
///
/// `rings_per_node` is the number of DP rings contending for one NIC (equal
/// to the GPUs per node when every GPU joins its own DP ring).
pub fn project_dp_scaling(
    base: &MeasuredStep,
    dps: &[usize],
    nic: &LinkSpec,
    rings_per_node: usize,
) -> Vec<DpProjection> {
    let base_step = base.compute_s + base.comm_s;
    dps.iter()
        .map(|&dp| {
            let dp = dp.max(1);
            let compute_s = base.compute_s / dp as f64;
            let comm_s = base.comm_s / dp as f64;
            let allreduce_s =
                ring_allreduce_time_s(base.grad_bytes_per_rank, dp, nic, rings_per_node);
            let step_s = compute_s + comm_s + allreduce_s;
            let num_gpus = base.base_world * dp;
            let per_gpu_throughput = base.tokens_per_step as f64 / step_s / num_gpus as f64;
            let ideal = base_step / dp as f64;
            DpProjection {
                dp,
                num_gpus,
                compute_s,
                comm_s,
                allreduce_s,
                step_s,
                per_gpu_throughput,
                scaling_efficiency: ideal / step_s,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MeasuredStep {
        MeasuredStep {
            compute_s: 20.0,
            comm_s: 10.0,
            grad_bytes_per_rank: 11 * (1u64 << 30), // ~GPT3-175B / 32 ranks
            tokens_per_step: 128 * 2048,
            base_world: 32,
        }
    }

    #[test]
    fn scaling_is_sublinear_at_100g() {
        let projections = project_dp_scaling(&base(), &[1, 2, 8, 32, 256], &LinkSpec::ib_100g(), 8);
        for p in &projections {
            assert!(
                p.scaling_efficiency <= 1.0 + 1e-9,
                "dp={} eff={}",
                p.dp,
                p.scaling_efficiency
            );
        }
        // Efficiency decays monotonically with DP.
        for w in projections.windows(2) {
            assert!(w[1].scaling_efficiency <= w[0].scaling_efficiency + 1e-12);
        }
    }

    #[test]
    fn large_dp_at_100g_loses_close_to_an_order_of_magnitude() {
        // Paper: "strong scaling dropping by up to 9.7x compared to the
        // ideal case" at 100 Gbps and 8K GPUs. With a hierarchical
        // AllReduce (one inter-node ring per node) the loss lands in the
        // same order of magnitude.
        let p = project_dp_scaling(&base(), &[256], &LinkSpec::ib_100g(), 1)[0];
        let loss = 1.0 / p.scaling_efficiency;
        assert!((4.0..30.0).contains(&loss), "loss = {loss:.1}x");
    }

    #[test]
    fn higher_bandwidth_restores_scaling() {
        // Paper: 800 Gbps improves strong scaling by up to 4.2x vs 100 Gbps.
        let at100 = project_dp_scaling(&base(), &[256], &LinkSpec::ib_100g(), 1)[0];
        let at800 = project_dp_scaling(&base(), &[256], &LinkSpec::ib_gbps(800.0), 1)[0];
        let gain = at800.scaling_efficiency / at100.scaling_efficiency;
        assert!((2.0..10.0).contains(&gain), "gain = {gain:.1}x");
    }

    #[test]
    fn per_gpu_throughput_declines_with_scale() {
        let ps = project_dp_scaling(&base(), &[1, 8, 64], &LinkSpec::ib_100g(), 8);
        assert!(ps[1].per_gpu_throughput < ps[0].per_gpu_throughput);
        assert!(ps[2].per_gpu_throughput < ps[1].per_gpu_throughput);
    }

    #[test]
    fn dp1_has_no_allreduce() {
        let p = project_dp_scaling(&base(), &[1], &LinkSpec::ib_100g(), 8)[0];
        assert_eq!(p.allreduce_s, 0.0);
        assert!((p.scaling_efficiency - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_time_saturates_with_dp() {
        let nic = LinkSpec::ib_100g();
        let t16 = ring_allreduce_time_s(1 << 30, 16, &nic, 8);
        let t1024 = ring_allreduce_time_s(1 << 30, 1024, &nic, 8);
        // Volume term saturates at 2x bytes; latency term keeps growing.
        assert!(t1024 > t16);
        assert!(t1024 < 3.0 * t16);
    }

    #[test]
    fn contending_rings_slow_allreduce() {
        let nic = LinkSpec::ib_100g();
        let solo = ring_allreduce_time_s(1 << 30, 64, &nic, 1);
        let shared = ring_allreduce_time_s(1 << 30, 64, &nic, 8);
        assert!(shared > 5.0 * solo);
    }

    #[test]
    fn gpu_counts_multiply_world() {
        let ps = project_dp_scaling(&base(), &[8], &LinkSpec::ib_100g(), 8);
        assert_eq!(ps[0].num_gpus, 256);
    }
}
