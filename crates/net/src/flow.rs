//! Point-to-point flows: the unit of network work the simulator schedules.

use serde::{Deserialize, Serialize};

use charllm_hw::{Cluster, GpuId, HwError, LinkId};

/// One directed transfer between two GPUs.
///
/// A flow occupies every link on its route simultaneously; the simulator
/// fair-shares each link among the flows crossing it. Per-message overhead
/// and serial startup latency are folded into an *effective work* quantity
/// in byte-equivalents (computed against the route's bottleneck bandwidth),
/// which is how many small messages end up costing far more wall-clock than
/// their payload alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source GPU.
    pub src: GpuId,
    /// Destination GPU.
    pub dst: GpuId,
    /// Payload bytes.
    pub bytes: u64,
    /// Number of wire messages used.
    pub num_messages: u64,
    /// Serial startup latency in seconds (e.g. ring-phase dependencies).
    pub startup_s: f64,
}

impl Flow {
    /// A single-message flow with no startup latency.
    pub fn new(src: GpuId, dst: GpuId, bytes: u64, num_messages: u64) -> Self {
        Flow {
            src,
            dst,
            bytes,
            num_messages,
            startup_s: 0.0,
        }
    }

    /// The links the flow traverses.
    ///
    /// # Errors
    ///
    /// Propagates [`HwError::GpuOutOfRange`] for GPUs outside the cluster.
    pub fn route(&self, cluster: &Cluster) -> Result<Vec<LinkId>, HwError> {
        cluster.route(self.src, self.dst)
    }

    /// Write the flow's route into a reusable buffer (cleared first),
    /// avoiding a fresh `Vec` per lookup — the simulator resolves every
    /// flow of a collective plan through one scratch buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`HwError::GpuOutOfRange`] for GPUs outside the cluster.
    pub fn route_into(&self, cluster: &Cluster, out: &mut Vec<LinkId>) -> Result<(), HwError> {
        cluster.route_into(self.src, self.dst, out)
    }

    /// Total per-message + startup overhead in seconds on this route.
    pub fn overhead_s(&self, cluster: &Cluster, route: &[LinkId]) -> f64 {
        let per_msg_us: f64 = route
            .iter()
            .map(|id| cluster.link(*id).per_message_us)
            .sum();
        let latency_us = cluster.route_latency_us(route);
        self.startup_s + (latency_us + self.num_messages as f64 * per_msg_us) * 1e-6
    }

    /// Effective work in byte-equivalents: payload (with a store-and-forward
    /// penalty for unchunked multi-stage routes) plus overhead converted at
    /// the route's bottleneck bandwidth. On-device flows (empty route) cost
    /// nothing.
    ///
    /// Inter-node transfers are staged GPU → host → wire → host → GPU; a
    /// transfer split into `k` messages pipelines those stages, costing
    /// `(k + stages − 1)/k` of the ideal serialization time. A monolithic
    /// unchunked message (`k = 1`) pays every stage serially — the §4.2
    /// bandwidth-underutilization mechanism. Intra-node NVSwitch/xGMI paths
    /// are cut-through and take no such penalty.
    pub fn work_bytes(&self, cluster: &Cluster, route: &[LinkId]) -> f64 {
        if route.is_empty() {
            return 0.0;
        }
        let crosses_node = route
            .iter()
            .any(|id| cluster.link(*id).class == charllm_hw::LinkClass::Nic);
        let stages = if crosses_node { 3.0 } else { 1.0 };
        let k = self.num_messages.max(1) as f64;
        let pipelining = (k + stages - 1.0) / k;
        let bw = cluster.route_bottleneck_gbps(route) * 1e9;
        self.bytes as f64 * pipelining + self.overhead_s(cluster, route) * bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::presets;

    #[test]
    fn on_device_flow_is_free() {
        let c = presets::hgx_h200_cluster();
        let f = Flow::new(GpuId(0), GpuId(0), 1 << 30, 1);
        let route = f.route(&c).unwrap();
        assert!(route.is_empty());
        assert_eq!(f.work_bytes(&c, &route), 0.0);
    }

    #[test]
    fn many_small_messages_cost_more_than_one_large() {
        let c = presets::hgx_h200_cluster();
        let bytes = 64 * 1024 * 1024;
        let one = Flow::new(GpuId(0), GpuId(8), bytes, 1);
        let many = Flow::new(GpuId(0), GpuId(8), bytes, 4096);
        let route = one.route(&c).unwrap();
        assert!(many.work_bytes(&c, &route) > 1.5 * one.work_bytes(&c, &route));
    }

    #[test]
    fn intra_node_overhead_smaller_than_inter_node() {
        let c = presets::hgx_h200_cluster();
        let intra = Flow::new(GpuId(0), GpuId(1), 1 << 20, 8);
        let inter = Flow::new(GpuId(0), GpuId(8), 1 << 20, 8);
        let r_intra = intra.route(&c).unwrap();
        let r_inter = inter.route(&c).unwrap();
        assert!(intra.overhead_s(&c, &r_intra) < inter.overhead_s(&c, &r_inter));
    }

    #[test]
    fn route_into_reuses_buffer() {
        let c = presets::hgx_h200_cluster();
        let inter = Flow::new(GpuId(0), GpuId(8), 1 << 20, 1);
        let intra = Flow::new(GpuId(0), GpuId(1), 1 << 20, 1);
        let mut buf = Vec::new();
        inter.route_into(&c, &mut buf).unwrap();
        assert_eq!(buf, inter.route(&c).unwrap());
        intra.route_into(&c, &mut buf).unwrap();
        assert_eq!(buf, intra.route(&c).unwrap());
    }

    #[test]
    fn startup_adds_work() {
        let c = presets::hgx_h200_cluster();
        let mut f = Flow::new(GpuId(0), GpuId(1), 1 << 20, 1);
        let route = f.route(&c).unwrap();
        let base = f.work_bytes(&c, &route);
        f.startup_s = 1e-3;
        assert!(f.work_bytes(&c, &route) > base);
    }
}

#[cfg(test)]
mod chunking_tests {
    use super::*;
    use charllm_hw::presets;

    #[test]
    fn unchunked_inter_node_pays_store_and_forward() {
        let c = presets::hgx_h200_cluster();
        let bytes = 256 * 1024 * 1024;
        let mono = Flow::new(GpuId(0), GpuId(8), bytes, 1);
        let chunked = Flow::new(GpuId(0), GpuId(8), bytes, 64);
        let route = mono.route(&c).unwrap();
        let ratio = mono.work_bytes(&c, &route) / chunked.work_bytes(&c, &route);
        assert!(
            ratio > 2.0,
            "unchunked should pay ~3x staging: ratio {ratio}"
        );
    }

    #[test]
    fn intra_node_unchunked_is_cut_through() {
        let c = presets::hgx_h200_cluster();
        let bytes = 256 * 1024 * 1024;
        let mono = Flow::new(GpuId(0), GpuId(1), bytes, 1);
        let route = mono.route(&c).unwrap();
        let work = mono.work_bytes(&c, &route);
        assert!(
            work < 1.05 * bytes as f64,
            "no staging penalty inside a node: {work}"
        );
    }
}
