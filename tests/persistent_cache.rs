//! The disk tier end-to-end: a fresh `SimCache` (standing in for a fresh
//! process) pointed at a populated cache directory must serve lowered
//! traces and plan sets from disk, and the reloaded artifacts must drive
//! simulations whose results are byte-identical to the cold run — the
//! persistent tier is transparent or it is broken.

use std::path::PathBuf;
use std::sync::Arc;

use charllm::prelude::*;

/// A unique scratch directory per test run.
fn scratch_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!("charllm_it_{tag}_{}_{nanos}", std::process::id()))
}

fn experiment(cache: Arc<SimCache>) -> RunReport {
    Experiment::builder()
        .cluster(single_hgx_node())
        .job(TrainJob::pretrain(gpt3_13b()).with_global_batch(8))
        .parallelism("TP2-PP2")
        .unwrap()
        .sim_config(SimConfig::fast())
        .cache(cache)
        .run()
        .unwrap()
}

#[test]
fn experiment_roundtrips_byte_identically_through_the_disk_tier() {
    let dir = scratch_dir("roundtrip");

    // Cold run: everything misses, and Experiment::run persists both the
    // lowered trace and the (now-built) plan set.
    let cold_cache = Arc::new(SimCache::new().with_disk_tier(&dir).unwrap());
    let cold = experiment(Arc::clone(&cold_cache));
    let stats = cold.cache.expect("cached experiment reports stats");
    assert_eq!(stats.lowered_misses, 1);
    assert_eq!(stats.lowered_disk_hits, 0);
    assert_eq!(
        stats.lowered_disk_misses, 1,
        "a miss with a disk tier attached is a disk miss"
    );
    assert!(
        stats.bytes_written > 0,
        "the run's artifacts were persisted"
    );

    // "New process": a fresh cache over the same directory. Both families
    // must come back from disk and the simulation must not notice.
    let warm_cache = Arc::new(SimCache::new().with_disk_tier(&dir).unwrap());
    let warm = experiment(Arc::clone(&warm_cache));
    let stats = warm.cache.expect("cached experiment reports stats");
    assert_eq!(stats.lowered_disk_hits, 1, "lowering served from disk");
    assert_eq!(stats.plan_disk_hits, 1, "plan set served from disk");
    assert_eq!(stats.lowered_misses, 0);
    assert_eq!(stats.plan_misses, 0);
    assert_eq!(
        serde_json::to_string(&cold.sim).unwrap(),
        serde_json::to_string(&warm.sim).unwrap(),
        "disk-served artifacts must be observationally identical"
    );
    assert_eq!(
        warm_cache.sync_disk().unwrap(),
        0,
        "nothing dirty after a fully disk-served run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_rerun_in_a_fresh_cache_is_served_from_disk() {
    let dir = scratch_dir("sweep");
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let specs = vec![
        ParallelismSpec::parse("TP2-PP2", 8).unwrap(),
        ParallelismSpec::parse("TP4-PP2", 8).unwrap(),
    ];
    let sweep = |cache: Arc<SimCache>| {
        Sweep::new(single_hgx_node(), job.clone(), specs.clone())
            .with_microbatches(vec![1, 2])
            .with_sim_config(SimConfig::fast())
            .workers(2)
            .with_cache(cache)
            .run_outcomes()
    };

    let pass1 = sweep(Arc::new(SimCache::new().with_disk_tier(&dir).unwrap()));
    let pass2 = sweep(Arc::new(SimCache::new().with_disk_tier(&dir).unwrap()));
    assert_eq!(pass1.len(), 4);
    assert_eq!(pass2.len(), 4);

    let total = |outcomes: &[SweepOutcome]| {
        outcomes
            .iter()
            .filter_map(|o| o.report().and_then(|r| r.cache))
            .fold(CacheStats::default(), |acc, s| acc.add(&s))
    };
    let warm = total(&pass2);
    assert!(
        warm.disk_hits() > 0,
        "second pass must hit the disk tier: {warm}"
    );
    assert_eq!(warm.lowered_misses, 0, "nothing re-lowered: {warm}");
    assert_eq!(warm.plan_misses, 0, "no plan set rebuilt: {warm}");

    for (a, b) in pass1.iter().zip(&pass2) {
        assert_eq!(a.point(), b.point());
        let (a, b) = (a.report().unwrap(), b.report().unwrap());
        assert_eq!(
            serde_json::to_string(&a.sim).unwrap(),
            serde_json::to_string(&b.sim).unwrap(),
            "point {} must be byte-identical when served from disk",
            a.parallelism
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}
