/root/repo/target/debug/deps/charllm_sim-a58e52d0c4851973.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_sim-a58e52d0c4851973.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
