/root/repo/target/debug/deps/charllm_telemetry-5bfe97244983ef52.d: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libcharllm_telemetry-5bfe97244983ef52.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/libcharllm_telemetry-5bfe97244983ef52.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/aggregate.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/heatmap.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/timeseries.rs:
