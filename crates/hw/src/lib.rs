//! Hardware models for the CharLLM-PPT reproduction.
//!
//! This crate describes the *physical* substrate the paper measures on:
//! GPU devices (NVIDIA H100/H200, AMD MI250 with its chiplet GCDs), the
//! interconnect fabric (NVLink/NVSwitch, xGMI, PCIe, InfiniBand NICs), node
//! airflow geometry (front-to-back cooling with rear-GPU preheating), and
//! whole-cluster topologies.
//!
//! The three evaluated clusters of the paper (Table 3) are available as
//! presets:
//!
//! ```
//! use charllm_hw::presets;
//!
//! let h200 = presets::hgx_h200_cluster();   // 4 nodes x 8 H200 (scale-up)
//! let h100 = presets::hgx_h100_cluster();   // 8 nodes x 8 H100 (scale-out)
//! let mi250 = presets::mi250_cluster();     // 4 nodes x 4 MI250 (8 GCDs)
//! assert_eq!(h200.num_gpus(), 32);
//! assert_eq!(h100.num_gpus(), 64);
//! assert_eq!(mi250.num_gpus(), 32);
//! ```
//!
//! Topology is exposed through [`Cluster::route`], which returns the ordered
//! list of shared [`LinkId`]s a transfer between two GPUs traverses. The
//! simulator crate turns those links into contended, fair-shared resources.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airflow;
pub mod cluster;
pub mod error;
pub mod gpu;
pub mod link;
pub mod node;
pub mod presets;

pub use airflow::AirflowLayout;
pub use cluster::{Cluster, GpuId, NodeId, RailFabric};
pub use error::HwError;
pub use gpu::{GpuModel, GpuSpec, Vendor};
pub use link::{LinkClass, LinkId, LinkSpec};
pub use node::{FabricKind, NodeLayout};
