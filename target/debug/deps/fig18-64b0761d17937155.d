/root/repo/target/debug/deps/fig18-64b0761d17937155.d: crates/bench/benches/fig18.rs

/root/repo/target/debug/deps/fig18-64b0761d17937155: crates/bench/benches/fig18.rs

crates/bench/benches/fig18.rs:
