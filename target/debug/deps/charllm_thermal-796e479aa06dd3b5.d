/root/repo/target/debug/deps/charllm_thermal-796e479aa06dd3b5.d: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

/root/repo/target/debug/deps/charllm_thermal-796e479aa06dd3b5: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs

crates/thermal/src/lib.rs:
crates/thermal/src/governor.rs:
crates/thermal/src/gpu_state.rs:
crates/thermal/src/power.rs:
crates/thermal/src/rc.rs:
crates/thermal/src/variability.rs:
