//! Shared harness for the per-figure benchmark binaries.
//!
//! Every table and figure of the paper's evaluation has a bench target
//! (`cargo bench -p charllm-bench --bench fig13`) that regenerates the
//! corresponding rows/series from simulation. `cargo bench --workspace`
//! runs them all and writes machine-readable results under
//! `target/charllm-results/`.
//!
//! Scale: figures default to a global batch of 64 (half the paper's 128) so
//! the full suite completes in minutes; set `CHARLLM_GBS=128` to reproduce
//! at paper scale. Comparative shapes are unchanged.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use charllm::prelude::*;
use charllm::report::RunReport;
use charllm::CoreError;
use charllm_models::TransformerArch;
use charllm_parallel::{fits, ParallelismSpec, StagePartition};

/// The simulator configuration used by the figure benches: two iterations,
/// first discarded (the paper discards warm-up iterations).
pub fn sim_config() -> SimConfig {
    SimConfig {
        iterations: 2,
        warmup_iterations: 1,
        // Pathological-but-feasible configs (GPT3-175B TP8-FSDP) legitimately
        // exceed an hour of simulated time per step; let them finish.
        max_sim_time_s: 200_000.0,
        ..SimConfig::default()
    }
}

/// Global batch size for figure benches (`CHARLLM_GBS`, default 64).
pub fn gbs() -> usize {
    std::env::var("CHARLLM_GBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The standard pretraining job at bench scale.
pub fn bench_job(arch: TransformerArch) -> TrainJob {
    TrainJob::pretrain(arch).with_global_batch(gbs())
}

/// Whether a configuration fits in the cluster's GPU memory (the paper only
/// evaluates feasible points).
pub fn feasible(job: &TrainJob, spec: &ParallelismSpec, cluster: &charllm_hw::Cluster) -> bool {
    StagePartition::even(job.arch.num_layers, spec.pp)
        .map(|p| fits(job, spec, &p, cluster.gpu().memory_bytes))
        .unwrap_or(false)
}

/// Run one experiment, logging and skipping failures (infeasible sweeps are
/// expected when reproducing broad figure grids).
pub fn try_run(
    cluster: &charllm_hw::Cluster,
    job: &TrainJob,
    spec: ParallelismSpec,
) -> Option<RunReport> {
    let result: Result<RunReport, CoreError> = Experiment::builder()
        .cluster(cluster.clone())
        .job(job.clone())
        .spec(spec)
        .sim_config(sim_config())
        .run();
    match result {
        Ok(r) => Some(r),
        Err(e) => {
            println!("  [skip] {} {}: {e}", job.arch.name, spec.label());
            None
        }
    }
}

/// Run a grid of (job, spec) points through the core [`Executor`] — one
/// worker per core, cluster shared via [`Arc`] — and return the completed
/// reports in point order. Failing points print a `[skip]` line (after
/// the parallel phase, so output never interleaves) and drop out, like
/// [`try_run`].
pub fn run_points(
    cluster: &charllm_hw::Cluster,
    points: &[(TrainJob, ParallelismSpec)],
) -> Vec<RunReport> {
    let cluster = Arc::new(cluster.clone());
    let results = Executor::auto().run(points, |_, (job, spec)| {
        Experiment::builder()
            .cluster(Arc::clone(&cluster))
            .job(job.clone())
            .spec(*spec)
            .sim_config(sim_config())
            .run()
    });
    results
        .into_iter()
        .zip(points)
        .filter_map(|(result, (job, spec))| match result {
            Ok(r) => Some(r),
            Err(e) => {
                println!("  [skip] {} {}: {e}", job.arch.name, spec.label());
                None
            }
        })
        .collect()
}

/// Print a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!("\n================================================================");
    println!("{figure}: {caption}");
    println!(
        "(global batch {}, simulated; shapes comparable to the paper)",
        gbs()
    );
    println!("================================================================");
}

/// Where machine-readable bench results are written: the *workspace*
/// `target/charllm-results`, regardless of the bench binary's working
/// directory.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        })
        .join("charllm-results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Persist a JSON value for a figure.
pub fn save_json(name: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(
        &path,
        serde_json::to_string_pretty(value).expect("serializable"),
    )
    .expect("write results file");
    println!("[saved {}]", path.display());
}

/// Compact per-report JSON for result files.
pub fn report_json(r: &RunReport) -> serde_json::Value {
    serde_json::json!({
        "cluster": r.cluster,
        "model": r.model,
        "parallelism": r.parallelism,
        "optimization": r.optimization,
        "microbatch": r.microbatch,
        "step_time_s": r.step_time_s,
        "tokens_per_s": r.tokens_per_s,
        "tokens_per_joule": r.tokens_per_joule,
        "mean_power_w": r.mean_power_w,
        "peak_power_w": r.peak_power_w,
        "mean_temp_c": r.mean_temp_c,
        "peak_temp_c": r.peak_temp_c,
        "mean_freq_mhz": r.mean_freq_mhz,
        "front_temp_c": r.front_temp_c,
        "rear_temp_c": r.rear_temp_c,
        "mean_throttle": r.mean_throttle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_models::presets as models;

    #[test]
    fn bench_scale_configurable() {
        assert!(gbs() >= 1);
        let job = bench_job(models::gpt3_13b());
        assert_eq!(job.global_batch, gbs());
    }

    #[test]
    fn feasibility_screens_oversized_configs() {
        let cluster = hgx_h200_cluster();
        let job = TrainJob::pretrain(models::gpt3_175b());
        let dp = ParallelismSpec::data_parallel(32);
        assert!(!feasible(&job, &dp, &cluster));
        let tp8pp4 = ParallelismSpec::parse("TP8-PP4", 32).unwrap();
        assert!(feasible(&job, &tp8pp4, &cluster));
    }
}
