/root/repo/target/debug/deps/ablation_cooling-041ebe7d23b14df2.d: crates/bench/benches/ablation_cooling.rs Cargo.toml

/root/repo/target/debug/deps/libablation_cooling-041ebe7d23b14df2.rmeta: crates/bench/benches/ablation_cooling.rs Cargo.toml

crates/bench/benches/ablation_cooling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
