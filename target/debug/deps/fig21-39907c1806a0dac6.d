/root/repo/target/debug/deps/fig21-39907c1806a0dac6.d: crates/bench/benches/fig21.rs Cargo.toml

/root/repo/target/debug/deps/libfig21-39907c1806a0dac6.rmeta: crates/bench/benches/fig21.rs Cargo.toml

crates/bench/benches/fig21.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
