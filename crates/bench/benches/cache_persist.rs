//! Persistent-cache benchmark: the disk tier vs a cold start on the
//! fig-03-style 32-point Mixtral power-cap ablation (the `sweep_hotpath`
//! workload). A populated cache directory stands in for a previous
//! process's run; each "disk-warm" pass uses a *fresh* `SimCache` over
//! that directory, so the first point pays one disk load per family and
//! every later point rides the rehydrated in-memory tier — the
//! sim-as-a-service restart scenario. Asserts the disk-warm pass is at
//! least 1.3x faster than cold, byte-identical, and actually hit the disk.
//! Emits `BENCH_cache_persist.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use charllm::prelude::*;
use charllm::report::RunReport;
use charllm_hw::Cluster;
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::ParallelismSpec;
use charllm_sim::SimConfig;

use charllm_bench::save_json;

const POINTS: usize = 32;
const MIN_SPEEDUP: f64 = 1.3;

fn job() -> TrainJob {
    TrainJob::pretrain(models::mixtral_8x7b()).with_global_batch(8)
}

fn spec(cluster: &Cluster) -> ParallelismSpec {
    ParallelismSpec::infer_dp(1, 4, 8, cluster.num_gpus(), false).unwrap()
}

fn sim_config(cap_w: f64) -> SimConfig {
    let mut cfg = SimConfig::fast();
    cfg.node_power_cap = Some((0, cap_w));
    cfg.control_period_s = 0.02;
    cfg.sample_period_s = 0.2;
    cfg
}

fn caps() -> Vec<f64> {
    (0..POINTS).map(|i| 340.0 + 10.0 * i as f64).collect()
}

fn run_points(cluster: &Arc<Cluster>, cache: Option<&Arc<SimCache>>) -> (Vec<RunReport>, f64) {
    let t = Instant::now();
    let reports = caps()
        .iter()
        .map(|cap| {
            let mut builder = Experiment::builder()
                .cluster(Arc::clone(cluster))
                .job(job())
                .spec(spec(cluster))
                .sim_config(sim_config(*cap));
            if let Some(cache) = cache {
                builder = builder.cache(Arc::clone(cache));
            }
            builder.run().unwrap()
        })
        .collect();
    (reports, t.elapsed().as_secs_f64())
}

fn scratch_dir() -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .subsec_nanos();
    std::env::temp_dir().join(format!(
        "charllm_bench_persist_{}_{nanos}",
        std::process::id()
    ))
}

fn main() {
    let cluster = Arc::new(hgx_h200_cluster());
    let dir = scratch_dir();
    println!(
        "workload: mixtral_8x7b PP4-EP8 on {} GPUs, {POINTS}-point power-cap ablation",
        cluster.num_gpus()
    );

    // Populate the cache directory once — the "previous process".
    let seed_cache = Arc::new(SimCache::new().with_disk_tier(&dir).unwrap());
    let (_, populate_wall_s) = run_points(&cluster, Some(&seed_cache));
    let seeded = seed_cache.stats();
    assert!(seeded.bytes_written > 0, "populate pass persisted nothing");
    drop(seed_cache);

    // Interleaved min-of-5: cold (uncached) vs disk-warm (fresh cache over
    // the populated directory — every repetition restarts from disk).
    let mut cold_wall_s = f64::INFINITY;
    let mut warm_wall_s = f64::INFINITY;
    let mut cold_reports = None;
    let mut warm_reports = None;
    let mut warm_stats = None;
    for _ in 0..5 {
        let (reports, wall) = run_points(&cluster, None);
        cold_wall_s = cold_wall_s.min(wall);
        cold_reports = Some(reports);
        let cache = Arc::new(SimCache::new().with_disk_tier(&dir).unwrap());
        let (reports, wall) = run_points(&cluster, Some(&cache));
        warm_wall_s = warm_wall_s.min(wall);
        warm_reports = Some(reports);
        warm_stats = Some(cache.stats());
    }
    let cold_reports = cold_reports.unwrap();
    let warm_reports = warm_reports.unwrap();
    let warm_stats = warm_stats.unwrap();

    // The restart really was served from disk, and nothing re-lowered.
    assert!(
        warm_stats.disk_hits() > 0,
        "disk-warm pass never touched the disk tier: {warm_stats}"
    );
    assert_eq!(warm_stats.lowered_misses, 0, "{warm_stats}");
    assert_eq!(warm_stats.plan_misses, 0, "{warm_stats}");

    // Persistence must be invisible in the results.
    for (cold, warm) in cold_reports.iter().zip(&warm_reports) {
        assert_eq!(
            serde_json::to_string(&cold.sim).unwrap(),
            serde_json::to_string(&warm.sim).unwrap(),
            "disk-served point diverged from cold point"
        );
    }

    let speedup = cold_wall_s / warm_wall_s;
    println!(
        "cold {cold_wall_s:.3}s | disk-warm {warm_wall_s:.3}s | speedup {speedup:.2}x | \
         populate {populate_wall_s:.3}s"
    );
    println!("disk-warm cache: {warm_stats}");
    assert!(
        speedup >= MIN_SPEEDUP,
        "disk-warm restart {speedup:.2}x below the {MIN_SPEEDUP}x bar"
    );

    let record = serde_json::json!({
        "workload": "mixtral_8x7b_pp4_ep8_32gpu_power_cap_ablation",
        "points": POINTS,
        "cold_wall_s": cold_wall_s,
        "disk_warm_wall_s": warm_wall_s,
        "disk_warm_over_cold": speedup,
        "populate_wall_s": populate_wall_s,
        "populate_bytes_written": seeded.bytes_written,
        "disk_warm_cache_stats": warm_stats,
    });
    save_json("BENCH_cache_persist", &record);

    let _ = std::fs::remove_dir_all(&dir);
}
