/root/repo/target/debug/deps/charllm_telemetry-a9afa62f11772485.d: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/debug/deps/charllm_telemetry-a9afa62f11772485: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/aggregate.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/heatmap.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/timeseries.rs:
