//! Incremental trace construction with collective-instance deduplication.

use std::collections::HashMap;

use charllm_net::{ChunkingPolicy, CollectiveKind};

use crate::task::{CollectiveId, CollectiveInstance, ComputeKind, Step};
use crate::trace::{ExecutionTrace, TraceMeta};

/// A structural key identifying one logical collective so that every
/// participating rank's lowering resolves to the same instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollKey {
    /// Which lowering site emitted it (e.g. `"tp-ar-fwd"`).
    pub site: &'static str,
    /// Microbatch index (or 0).
    pub mb: u32,
    /// Layer index (or 0).
    pub layer: u32,
    /// Virtual pipeline stage / auxiliary discriminator.
    pub aux: u32,
    /// Lowest rank of the group (disambiguates parallel groups).
    pub group_lead: u32,
}

/// Builds an [`ExecutionTrace`] rank by rank.
#[derive(Debug)]
pub struct TraceBuilder {
    steps: Vec<Vec<Step>>,
    collectives: Vec<CollectiveInstance>,
    index: HashMap<CollKey, CollectiveId>,
}

impl TraceBuilder {
    /// A builder for `world` ranks.
    pub fn new(world: usize) -> Self {
        TraceBuilder {
            steps: vec![Vec::new(); world],
            collectives: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Number of ranks.
    pub fn world(&self) -> usize {
        self.steps.len()
    }

    /// Append a compute kernel to a rank's stream.
    pub fn compute(&mut self, rank: usize, kind: ComputeKind, flops: f64) {
        debug_assert!(
            flops.is_finite() && flops >= 0.0,
            "flops must be non-negative"
        );
        if flops > 0.0 {
            self.steps[rank].push(Step::Compute { kind, flops });
        }
    }

    /// Resolve (or create) the collective instance for a key.
    ///
    /// The first caller fixes the instance's parameters; later callers with
    /// the same key must agree (checked with `debug_assert`).
    pub fn collective(
        &mut self,
        key: CollKey,
        kind: CollectiveKind,
        bytes_per_rank: u64,
        group: Vec<usize>,
        chunking: ChunkingPolicy,
        eager_p2p: bool,
    ) -> CollectiveId {
        if let Some(&id) = self.index.get(&key) {
            let existing = &self.collectives[id.index()];
            debug_assert_eq!(
                existing.kind, kind,
                "collective key reused with a different kind"
            );
            debug_assert_eq!(existing.bytes_per_rank, bytes_per_rank);
            debug_assert_eq!(existing.group, group);
            return id;
        }
        let id = CollectiveId(self.collectives.len() as u32);
        self.collectives.push(CollectiveInstance {
            kind,
            bytes_per_rank,
            group,
            chunking,
            eager_p2p,
        });
        self.index.insert(key, id);
        id
    }

    /// Append a `CollStart` (arrival / eager send).
    pub fn start(&mut self, rank: usize, coll: CollectiveId) {
        self.steps[rank].push(Step::CollStart { coll });
    }

    /// Append a `CollWait`.
    pub fn wait(&mut self, rank: usize, coll: CollectiveId) {
        self.steps[rank].push(Step::CollWait { coll });
    }

    /// Append a blocking collective (start immediately followed by wait).
    pub fn blocking(&mut self, rank: usize, coll: CollectiveId) {
        self.start(rank, coll);
        self.wait(rank, coll);
    }

    /// Mutable access to the collective table (symmetry folding rewrites
    /// group membership after lowering).
    pub(crate) fn collectives_mut(&mut self) -> &mut [CollectiveInstance] {
        &mut self.collectives
    }

    /// Finish the trace.
    pub fn build(self, meta: TraceMeta) -> ExecutionTrace {
        ExecutionTrace::new(self.steps, self.collectives, meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(site: &'static str, mb: u32) -> CollKey {
        CollKey {
            site,
            mb,
            layer: 0,
            aux: 0,
            group_lead: 0,
        }
    }

    #[test]
    fn collective_dedup_by_key() {
        let mut b = TraceBuilder::new(2);
        let id1 = b.collective(
            key("tp-ar", 0),
            CollectiveKind::AllReduce,
            1024,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        let id2 = b.collective(
            key("tp-ar", 0),
            CollectiveKind::AllReduce,
            1024,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        assert_eq!(id1, id2);
        let id3 = b.collective(
            key("tp-ar", 1),
            CollectiveKind::AllReduce,
            1024,
            vec![0, 1],
            ChunkingPolicy::nccl_default(),
            false,
        );
        assert_ne!(id1, id3);
    }

    #[test]
    fn zero_flop_compute_skipped() {
        let mut b = TraceBuilder::new(1);
        b.compute(0, ComputeKind::Gemm, 0.0);
        b.compute(0, ComputeKind::Gemm, 10.0);
        let t = b.build(TraceMeta::default());
        assert_eq!(t.steps(0).len(), 1);
    }

    #[test]
    fn blocking_emits_start_then_wait() {
        let mut b = TraceBuilder::new(1);
        let id = b.collective(
            key("x", 0),
            CollectiveKind::AllReduce,
            8,
            vec![0],
            ChunkingPolicy::Unchunked,
            false,
        );
        b.blocking(0, id);
        let t = b.build(TraceMeta::default());
        assert!(matches!(t.steps(0)[0], Step::CollStart { .. }));
        assert!(matches!(t.steps(0)[1], Step::CollWait { .. }));
    }
}
