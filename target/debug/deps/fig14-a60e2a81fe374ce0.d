/root/repo/target/debug/deps/fig14-a60e2a81fe374ce0.d: crates/bench/benches/fig14.rs

/root/repo/target/debug/deps/fig14-a60e2a81fe374ce0: crates/bench/benches/fig14.rs

crates/bench/benches/fig14.rs:
