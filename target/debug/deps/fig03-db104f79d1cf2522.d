/root/repo/target/debug/deps/fig03-db104f79d1cf2522.d: crates/bench/benches/fig03.rs Cargo.toml

/root/repo/target/debug/deps/libfig03-db104f79d1cf2522.rmeta: crates/bench/benches/fig03.rs Cargo.toml

crates/bench/benches/fig03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
