//! Ablation: 1F1B vs. interleaved pipeline scheduling — the paper's §1
//! notes interleaving "can improve utilization in PP workloads, but its
//! effectiveness depends on network depth and synchronization barriers".

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, sim_config};

fn main() {
    banner(
        "Ablation",
        "1F1B vs interleaved (virtual pipeline chunks) scheduling",
    );
    let cluster = hgx_h200_cluster();
    let job = bench_job(gpt3_175b()).with_recompute(true);
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<14} {:>11} {:>10} {:>12}",
        "config", "schedule", "tok/s", "step s", "ideal bubble"
    );
    for label in ["TP4-PP8", "TP2-PP16"] {
        let Ok(spec) = ParallelismSpec::parse(label, cluster.num_gpus()) else {
            continue;
        };
        let num_mb = job.num_microbatches(spec.dp);
        let schedules: Vec<(String, PipelineSchedule)> = vec![
            ("1F1B".to_string(), PipelineSchedule::OneFOneB),
            (
                "interleaved-2".to_string(),
                PipelineSchedule::Interleaved(2),
            ),
            (
                "interleaved-3".to_string(),
                PipelineSchedule::Interleaved(3),
            ),
        ];
        for (name, schedule) in schedules {
            let result = Experiment::builder()
                .cluster(cluster.clone())
                .job(job.clone())
                .spec(spec)
                .schedule(schedule)
                .sim_config(sim_config())
                .run();
            match result {
                Ok(r) => {
                    let bubble = schedule.ideal_bubble_fraction(spec.pp, num_mb);
                    println!(
                        "{:<12} {:<14} {:>11.0} {:>10.2} {:>11.1}%",
                        label,
                        name,
                        r.tokens_per_s,
                        r.step_time_s,
                        bubble * 100.0
                    );
                    rows.push(serde_json::json!({
                        "parallelism": label,
                        "schedule": name,
                        "tokens_per_s": r.tokens_per_s,
                        "step_s": r.step_time_s,
                        "ideal_bubble": bubble,
                    }));
                }
                Err(e) => eprintln!("  [skip] {label} {name}: {e}"),
            }
        }
    }
    save_json("ablation_schedule", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: interleaving shrinks the pipeline bubble (more so\n\
         at deep PP with few microbatches) at the price of proportionally\n\
         more cross-stage SendRecv traffic — its benefit fades when the\n\
         network, not the bubble, is the bottleneck."
    );
}
