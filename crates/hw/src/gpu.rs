//! GPU device specifications.
//!
//! Specs follow Table 3 of the paper plus public datasheet values for the
//! quantities the paper's telemetry depends on (clock ranges, thermal
//! envelopes, HBM bandwidth). For the chiplet-based MI250, a "GPU" in this
//! crate is one *GCD* (Graphics Compute Die) — the paper's "8 logical GPUs
//! per node".

use serde::{Deserialize, Serialize};

/// GPU silicon vendor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA (monolithic Hopper dies in this study).
    Nvidia,
    /// AMD (chiplet-based CDNA2 in this study).
    Amd,
}

/// The GPU models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA H100 SXM (80 GB HBM3, 1.0 PFLOPS FP16/BF16, 700 W).
    H100,
    /// NVIDIA H200 SXM (141 GB HBM3e, 1.0 PFLOPS FP16/BF16, 700 W).
    H200,
    /// One GCD of an AMD MI250 (64 GB HBM2e, 0.18 PFLOPS FP16, 250 W).
    Mi250Gcd,
}

impl GpuModel {
    /// The full device specification for this model.
    ///
    /// ```
    /// use charllm_hw::GpuModel;
    /// let h200 = GpuModel::H200.spec();
    /// assert_eq!(h200.memory_bytes, 141 * (1u64 << 30));
    /// ```
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::H100 => GpuSpec {
                name: "NVIDIA H100".to_string(),
                model: self,
                vendor: Vendor::Nvidia,
                memory_bytes: 80 * (1u64 << 30),
                peak_fp16_flops: 1.0e15,
                hbm_bw_gbps: 3350.0,
                tdp_w: 700.0,
                idle_w: 90.0,
                boost_clock_mhz: 1980.0,
                base_clock_mhz: 1590.0,
                min_clock_mhz: 345.0,
                throttle_temp_c: 83.0,
                slowdown_temp_c: 87.0,
                max_temp_c: 92.0,
            },
            GpuModel::H200 => GpuSpec {
                name: "NVIDIA H200".to_string(),
                model: self,
                vendor: Vendor::Nvidia,
                memory_bytes: 141 * (1u64 << 30),
                peak_fp16_flops: 1.0e15,
                hbm_bw_gbps: 4800.0,
                tdp_w: 700.0,
                idle_w: 95.0,
                boost_clock_mhz: 1980.0,
                base_clock_mhz: 1590.0,
                min_clock_mhz: 345.0,
                throttle_temp_c: 83.0,
                slowdown_temp_c: 87.0,
                max_temp_c: 92.0,
            },
            GpuModel::Mi250Gcd => GpuSpec {
                name: "AMD MI250 GCD".to_string(),
                model: self,
                vendor: Vendor::Amd,
                memory_bytes: 64 * (1u64 << 30),
                peak_fp16_flops: 0.18e15,
                hbm_bw_gbps: 1638.0,
                tdp_w: 250.0,
                idle_w: 45.0,
                boost_clock_mhz: 1700.0,
                base_clock_mhz: 1400.0,
                min_clock_mhz: 500.0,
                throttle_temp_c: 85.0,
                slowdown_temp_c: 90.0,
                max_temp_c: 95.0,
            },
        }
    }
}

impl std::fmt::Display for GpuModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuModel::H100 => write!(f, "H100"),
            GpuModel::H200 => write!(f, "H200"),
            GpuModel::Mi250Gcd => write!(f, "MI250-GCD"),
        }
    }
}

/// Full specification of one GPU device (one GCD for chiplet parts).
///
/// All power values are board-level watts attributable to this device; for
/// the MI250 the 500 W package TDP is split evenly between its two GCDs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Human-readable device name.
    pub name: String,
    /// Which model this spec describes.
    pub model: GpuModel,
    /// Silicon vendor.
    pub vendor: Vendor,
    /// HBM capacity in bytes.
    pub memory_bytes: u64,
    /// Peak dense FP16/BF16 throughput in FLOP/s at boost clock.
    pub peak_fp16_flops: f64,
    /// HBM bandwidth in GB/s.
    pub hbm_bw_gbps: f64,
    /// Thermal design power (sustained power cap) in watts.
    pub tdp_w: f64,
    /// Idle power draw in watts.
    pub idle_w: f64,
    /// Maximum boost clock in MHz (frequency at which peak FLOP/s holds).
    pub boost_clock_mhz: f64,
    /// Guaranteed base clock in MHz.
    pub base_clock_mhz: f64,
    /// Minimum clock the DVFS governor will throttle down to, in MHz.
    pub min_clock_mhz: f64,
    /// Core temperature at which thermal throttling begins (°C).
    pub throttle_temp_c: f64,
    /// Temperature of aggressive hardware slowdown (°C).
    pub slowdown_temp_c: f64,
    /// Shutdown/maximum junction temperature (°C).
    pub max_temp_c: f64,
}

impl GpuSpec {
    /// Peak FLOP/s at an arbitrary core clock (linear in frequency).
    ///
    /// ```
    /// use charllm_hw::GpuModel;
    /// let s = GpuModel::H100.spec();
    /// let half = s.flops_at_clock(s.boost_clock_mhz / 2.0);
    /// assert!((half - s.peak_fp16_flops / 2.0).abs() < 1.0);
    /// ```
    pub fn flops_at_clock(&self, clock_mhz: f64) -> f64 {
        self.peak_fp16_flops * (clock_mhz / self.boost_clock_mhz)
    }

    /// Memory capacity in GiB, for display.
    pub fn memory_gib(&self) -> f64 {
        self.memory_bytes as f64 / (1u64 << 30) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_memory_capacities() {
        assert_eq!(GpuModel::H200.spec().memory_gib(), 141.0);
        assert_eq!(GpuModel::H100.spec().memory_gib(), 80.0);
        assert_eq!(GpuModel::Mi250Gcd.spec().memory_gib(), 64.0);
    }

    #[test]
    fn table3_peak_flops() {
        assert_eq!(GpuModel::H200.spec().peak_fp16_flops, 1.0e15);
        assert_eq!(GpuModel::H100.spec().peak_fp16_flops, 1.0e15);
        // Paper lists 0.36 PFLOPS x2 per MI250 package => 0.18 per GCD.
        assert_eq!(GpuModel::Mi250Gcd.spec().peak_fp16_flops, 0.18e15);
    }

    #[test]
    fn table3_tdp() {
        assert_eq!(GpuModel::H200.spec().tdp_w, 700.0);
        assert_eq!(GpuModel::H100.spec().tdp_w, 700.0);
        // 500 W package split across two GCDs.
        assert_eq!(GpuModel::Mi250Gcd.spec().tdp_w, 250.0);
    }

    #[test]
    fn h200_has_more_memory_than_h100_by_1_76x() {
        // The paper repeatedly cites H200's 1.76x larger memory.
        let ratio =
            GpuModel::H200.spec().memory_bytes as f64 / GpuModel::H100.spec().memory_bytes as f64;
        assert!((ratio - 1.7625).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn flops_scale_linearly_with_clock() {
        let s = GpuModel::Mi250Gcd.spec();
        assert!(s.flops_at_clock(s.boost_clock_mhz) - s.peak_fp16_flops < 1.0);
        assert!(s.flops_at_clock(0.0) == 0.0);
    }

    #[test]
    fn clock_ordering_is_sane() {
        for m in [GpuModel::H100, GpuModel::H200, GpuModel::Mi250Gcd] {
            let s = m.spec();
            assert!(s.min_clock_mhz < s.base_clock_mhz);
            assert!(s.base_clock_mhz < s.boost_clock_mhz);
            assert!(s.throttle_temp_c < s.slowdown_temp_c);
            assert!(s.slowdown_temp_c < s.max_temp_c);
            assert!(s.idle_w < s.tdp_w);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuModel::H200.to_string(), "H200");
        assert_eq!(GpuModel::Mi250Gcd.to_string(), "MI250-GCD");
    }
}
