//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the JSON text layer (parse + print + `json!`) on top of the
//! vendored [`serde`] value tree. Only the API surface this workspace uses
//! is implemented: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`json!`], [`Value`], [`Map`] and [`Number`].

mod parse;
mod print;

pub use serde::{Error, Map, Number, Value};

pub mod value {
    //! Value helpers (mirrors `serde_json::value`).
    pub use serde::{Map, Number, Value};
}

/// Serialize any [`serde::Serialize`] type to a [`Value`] tree.
///
/// # Errors
///
/// Never fails for the value-tree backend; the `Result` mirrors the real
/// serde_json signature.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_value())
}

/// Serialize to compact JSON text.
///
/// # Errors
///
/// Never fails for the value-tree backend.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.serialize_value()))
}

/// Serialize to human-readable, indented JSON text.
///
/// # Errors
///
/// Never fails for the value-tree backend.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.serialize_value()))
}

/// Parse JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse::parse(text)?;
    T::deserialize_value(&value)
}

/// Interpret an already-parsed [`Value`] as any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_value(&value)
}

/// Build a [`Value`] from JSON-like syntax.
///
/// Supports `null`, literals, arbitrary serializable expressions, and nested
/// `[...]` / `{"key": value}` composites, like the real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_internal!(@array [] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_internal!(@object {} $($tt)*) };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value is serializable")
    };
}

/// Implementation detail of [`json!`]: TT munchers for arrays and objects.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // Arrays: accumulate element expressions, re-dispatching each through
    // json! so nested composites keep their JSON syntax.
    (@array [$($elems:expr),*]) => {
        $crate::Value::Array(vec![$($elems),*])
    };
    (@array [$($elems:expr),*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!(null)] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!([$($inner)*])] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!({$($inner)*})] $($($rest)*)?)
    };
    (@array [$($elems:expr),*] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json!($next)] $($($rest)*)?)
    };
    // Objects: string-literal keys, values re-dispatched through json!.
    (@object {$($key:literal => $val:expr),*}) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::Map::new();
        $(obj.insert($key.to_string(), $val);)*
        $crate::Value::Object(obj)
    }};
    (@object {$($done:literal => $dv:expr),*} $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object {$($done => $dv,)* $key => $crate::json!(null)} $($($rest)*)?
        )
    };
    (@object {$($done:literal => $dv:expr),*} $key:literal : [$($inner:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object {$($done => $dv,)* $key => $crate::json!([$($inner)*])} $($($rest)*)?
        )
    };
    (@object {$($done:literal => $dv:expr),*} $key:literal : {$($inner:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object {$($done => $dv,)* $key => $crate::json!({$($inner)*})} $($($rest)*)?
        )
    };
    (@object {$($done:literal => $dv:expr),*} $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_internal!(
            @object {$($done => $dv,)* $key => $crate::json!($val)} $($($rest)*)?
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({
            "name": "x",
            "n": 3,
            "nested": { "flag": true, "list": [1, 2.5, null] },
        });
        let obj = v.as_object().unwrap();
        assert_eq!(obj.get("name").unwrap().as_str(), Some("x"));
        let nested = obj.get("nested").unwrap().as_object().unwrap();
        assert_eq!(nested.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(nested.get("list").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn text_roundtrip_preserves_numbers() {
        let v = json!({ "i": 42, "f": 1.5, "neg": -7, "big": 9_007_199_254_740_993u64 });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!([{ "a": [1, 2] }, "s", false]);
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = json!({ "s": "line\nquote\"backslash\\tab\tunicode\u{1F600}" });
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{unquoted: 1}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
