//! Figure 17: thermal distribution and normalized clock-throttling heatmaps
//! across GPUs of the H200 cluster.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, save_json, try_run};
use charllm_telemetry::Heatmap;

fn main() {
    banner(
        "Figure 17",
        "H200 per-GPU temperature and normalized throttling heatmaps",
    );
    let cluster = hgx_h200_cluster();
    let arch = gpt3_175b();
    let job = bench_job(arch.clone()).with_recompute(true);
    let cols: Vec<String> = (0..cluster.num_gpus()).map(|g| format!("g{g}")).collect();
    let mut temp_rows = Vec::new();
    let mut throttle_rows = Vec::new();
    let mut labels = Vec::new();
    for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
        if !feasible(&job, &spec, &cluster) {
            continue;
        }
        if let Some(r) = try_run(&cluster, &job, spec) {
            temp_rows.push(
                (0..cluster.num_gpus())
                    .map(|g| r.sim.telemetry.temp(g).mean())
                    .collect::<Vec<_>>(),
            );
            throttle_rows.push(r.sim.throttle_ratio.clone());
            labels.push(r.parallelism.clone());
        }
    }
    let temp = Heatmap::new(labels.clone(), cols.clone(), temp_rows);
    let throttle = Heatmap::new(labels, cols, throttle_rows).normalized_rows();
    println!("\n(a) average GPU temperature, deg C:");
    print!("{}", temp.to_ascii());
    println!("(b) normalized throttle residency (row min=0, max=1):");
    print!("{}", throttle.to_ascii());

    // The headline differential: rear vs front groups.
    let airflow = &cluster.node_layout().airflow;
    let mut worst_gap: f64 = 0.0;
    for row in 0..temp.rows.len() {
        let (mut front, mut rear, mut nf, mut nr) = (0.0, 0.0, 0, 0);
        for g in 0..cluster.num_gpus() {
            let slot = cluster.slot_of(charllm_hw::GpuId(g as u32));
            if airflow.is_rear(slot) {
                rear += temp.get(row, g);
                nr += 1;
            } else {
                front += temp.get(row, g);
                nf += 1;
            }
        }
        let gap = (rear / nr as f64 - front / nf as f64) / (front / nf as f64);
        worst_gap = worst_gap.max(gap);
    }
    println!(
        "\nworst rear-vs-front temperature differential: {:.1}%",
        worst_gap * 100.0
    );
    save_json(
        "fig17",
        &serde_json::json!({
            "temperature_csv": temp.to_csv(),
            "throttle_normalized_csv": throttle.to_csv(),
            "worst_rear_front_gap": worst_gap,
        }),
    );
    println!(
        "\nExpected shape: exhaust-row GPUs (odd device IDs) run consistently\n\
         hotter — up to ~27% in the paper — and absorb most of the\n\
         throttling, with the imbalance worst in compute-dense deep-PP rows."
    );
}
