/root/repo/target/debug/deps/proptest_pipeline-c1fcd44a5f075bf1.d: tests/proptest_pipeline.rs

/root/repo/target/debug/deps/proptest_pipeline-c1fcd44a5f075bf1: tests/proptest_pipeline.rs

tests/proptest_pipeline.rs:
