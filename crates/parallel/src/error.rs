//! Error types for parallelism configuration.

use std::fmt;

/// Errors raised while building parallelism configurations or placements.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParallelError {
    /// The product of parallel widths does not match the world size.
    WorldSizeMismatch {
        /// `tp × ep × dp × pp`.
        product: usize,
        /// Requested world size.
        world: usize,
    },
    /// A parallel width was zero.
    ZeroWidth(&'static str),
    /// A width does not divide the quantity it shards.
    NotDivisible {
        /// What is being sharded (layers, experts, heads...).
        what: &'static str,
        /// The quantity being divided.
        value: usize,
        /// The parallel width.
        by: usize,
    },
    /// A placement did not cover every rank or referenced a GPU twice.
    InvalidPlacement(String),
    /// A stage partition did not sum to the layer count.
    InvalidPartition(String),
    /// The configuration label could not be parsed.
    ParseError(String),
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::WorldSizeMismatch { product, world } => {
                write!(
                    f,
                    "parallel widths multiply to {product} but world size is {world}"
                )
            }
            ParallelError::ZeroWidth(dim) => write!(f, "{dim} width must be non-zero"),
            ParallelError::NotDivisible { what, value, by } => {
                write!(f, "{what} ({value}) not divisible by width {by}")
            }
            ParallelError::InvalidPlacement(msg) => write!(f, "invalid placement: {msg}"),
            ParallelError::InvalidPartition(msg) => write!(f, "invalid stage partition: {msg}"),
            ParallelError::ParseError(msg) => write!(f, "could not parse config label: {msg}"),
        }
    }
}

impl std::error::Error for ParallelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParallelError::NotDivisible {
            what: "layers",
            value: 96,
            by: 5,
        };
        assert!(e.to_string().contains("96"));
        assert!(e.to_string().contains("5"));
    }
}
