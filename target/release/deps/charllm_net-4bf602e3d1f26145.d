/root/repo/target/release/deps/charllm_net-4bf602e3d1f26145.d: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/release/deps/libcharllm_net-4bf602e3d1f26145.rlib: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/release/deps/libcharllm_net-4bf602e3d1f26145.rmeta: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

crates/net/src/lib.rs:
crates/net/src/chunking.rs:
crates/net/src/collectives.rs:
crates/net/src/flow.rs:
crates/net/src/hierarchical.rs:
crates/net/src/projection.rs:
