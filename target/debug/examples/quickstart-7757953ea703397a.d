/root/repo/target/debug/examples/quickstart-7757953ea703397a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7757953ea703397a: examples/quickstart.rs

examples/quickstart.rs:
