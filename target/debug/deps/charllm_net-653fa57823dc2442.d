/root/repo/target/debug/deps/charllm_net-653fa57823dc2442.d: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/debug/deps/libcharllm_net-653fa57823dc2442.rlib: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

/root/repo/target/debug/deps/libcharllm_net-653fa57823dc2442.rmeta: crates/net/src/lib.rs crates/net/src/chunking.rs crates/net/src/collectives.rs crates/net/src/flow.rs crates/net/src/hierarchical.rs crates/net/src/projection.rs

crates/net/src/lib.rs:
crates/net/src/chunking.rs:
crates/net/src/collectives.rs:
crates/net/src/flow.rs:
crates/net/src/hierarchical.rs:
crates/net/src/projection.rs:
