//! Chrome `traceEvents` export of a recorded run, loadable in Perfetto.
//!
//! Layout follows the Trace Event Format: one *process* per node, one
//! *thread* per rank (so Perfetto renders a track per rank grouped by
//! node), `"X"` complete events for spans, `"s"`/`"f"` flow arrows for the
//! network flows of each collective, and `"C"` counter tracks for per-GPU
//! board power. Timestamps are microseconds of simulated time.

use serde_json::{json, Value};

use crate::spans::SpanRecorder;

const US_PER_S: f64 = 1e6;

/// Export a recorder's streams as a Chrome `traceEvents` JSON value.
///
/// `node_of_gpu[g]` maps a GPU index to its node (process). Ranks whose GPU
/// falls outside the map land on a catch-all process `0`. Serialize the
/// returned value with `serde_json::to_string` and load the file at
/// <https://ui.perfetto.dev>.
pub fn export(rec: &SpanRecorder, node_of_gpu: &[usize]) -> Value {
    let node_of = |gpu: u32| -> usize { node_of_gpu.get(gpu as usize).copied().unwrap_or(0) };
    let mut events: Vec<Value> = Vec::new();

    // Process (node) and thread (rank) naming metadata.
    let mut nodes: Vec<usize> = (0..rec.world())
        .filter_map(|r| rec.gpu_of_rank(r))
        .map(node_of)
        .collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in nodes {
        events.push(json!({
            "ph": "M", "name": "process_name", "pid": node, "tid": 0,
            "args": { "name": format!("node{node}") },
        }));
    }
    // gpu -> rank, for pointing flow arrows at rank tracks.
    let mut rank_of_gpu: Vec<Option<(usize, u32)>> = vec![None; node_of_gpu.len().max(1)];
    for rank in 0..rec.world() {
        let Some(gpu) = rec.gpu_of_rank(rank) else {
            continue;
        };
        let node = node_of(gpu);
        if let Some(slot) = rank_of_gpu.get_mut(gpu as usize) {
            slot.get_or_insert((node, rank as u32));
        }
        events.push(json!({
            "ph": "M", "name": "thread_name", "pid": node, "tid": rank,
            "args": { "name": format!("rank{rank} (gpu{gpu})") },
        }));
        events.push(json!({
            "ph": "M", "name": "thread_sort_index", "pid": node, "tid": rank,
            "args": { "sort_index": rank },
        }));
    }

    // Spans: "X" complete events on the rank's track.
    for rank in 0..rec.world() {
        let Some(gpu) = rec.gpu_of_rank(rank) else {
            continue;
        };
        let node = node_of(gpu);
        for span in rec.spans(rank) {
            let cat = if span.kind.is_collective() {
                "collective"
            } else {
                "compute"
            };
            events.push(json!({
                "ph": "X", "name": span.kind.label(), "cat": cat,
                "pid": node, "tid": rank,
                "ts": span.t0_s * US_PER_S, "dur": span.dur_s() * US_PER_S,
                "args": { "iteration": span.iteration },
            }));
        }
    }

    // Flow arrows: "s" on the source rank's track at launch, "f" on the
    // destination rank's track at retirement. Ids are unique per flow.
    let lookup =
        |gpu: u32| -> Option<(usize, u32)> { rank_of_gpu.get(gpu as usize).copied().flatten() };
    for (id, flow) in rec.flows().iter().enumerate() {
        let (Some((src_node, src_rank)), Some((dst_node, dst_rank))) =
            (lookup(flow.src_gpu), lookup(flow.dst_gpu))
        else {
            continue;
        };
        let name = format!("c{}.i{}", flow.coll, flow.iteration);
        events.push(json!({
            "ph": "s", "name": name.clone(), "cat": "flow", "id": id,
            "pid": src_node, "tid": src_rank, "ts": flow.t0_s * US_PER_S,
        }));
        events.push(json!({
            "ph": "f", "name": name, "cat": "flow", "id": id, "bp": "e",
            "pid": dst_node, "tid": dst_rank, "ts": flow.t1_s * US_PER_S,
        }));
    }

    // Injected faults: "X" events on a dedicated "faults" pseudo-thread of
    // the target GPU's node (cluster-wide faults land on node 0), so
    // outages render as shaded windows above the rank tracks.
    const FAULT_TID: u32 = 1_000_000;
    let mut fault_nodes: Vec<usize> = Vec::new();
    for fs in rec.fault_spans() {
        let node = if fs.target == u32::MAX {
            0
        } else {
            node_of(fs.target)
        };
        if !fault_nodes.contains(&node) {
            fault_nodes.push(node);
            events.push(json!({
                "ph": "M", "name": "thread_name", "pid": node, "tid": FAULT_TID,
                "args": { "name": "faults" },
            }));
        }
        let dur = (fs.t1_s - fs.t0_s).max(0.0);
        events.push(json!({
            "ph": "X", "name": format!("{} #{}", fs.label, fs.fault), "cat": "fault",
            "pid": node, "tid": FAULT_TID,
            "ts": fs.t0_s * US_PER_S, "dur": dur * US_PER_S,
            "args": { "target": fs.target },
        }));
    }

    // Per-GPU board power as counter tracks on the GPU's node.
    for tick in rec.power_ticks() {
        events.push(json!({
            "ph": "C", "name": format!("power gpu{}", tick.gpu),
            "pid": node_of(tick.gpu), "tid": 0, "ts": tick.t_s * US_PER_S,
            "args": { "watts": tick.power_w },
        }));
    }

    json!({ "traceEvents": events, "displayTimeUnit": "ms" })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::SpanKind;
    use charllm_trace::ComputeKind;

    #[test]
    fn export_names_processes_and_threads() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            0,
            0,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(0, 1.0);
        r.begin_task(
            1,
            1,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.5,
        );
        r.end_task(1, 2.0);
        let v = export(&r, &[0, 1]);
        let events = v
            .as_object()
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap();
        let count = |ph: &str, name: &str| {
            events
                .iter()
                .filter(|e| {
                    let o = e.as_object().unwrap();
                    o.get("ph").unwrap().as_str() == Some(ph)
                        && o.get("name").unwrap().as_str() == Some(name)
                })
                .count()
        };
        assert_eq!(count("M", "process_name"), 2);
        assert_eq!(count("M", "thread_name"), 2);
        assert_eq!(count("X", "Gemm"), 2);
    }

    #[test]
    fn fault_windows_export_under_fault_category() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            0,
            0,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(0, 1.0);
        r.fault_begin(0, "link-degrade", 1, 0.2);
        r.fault_end(0, 0.8);
        let v = export(&r, &[0, 0]);
        let events = v
            .as_object()
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap();
        let faults: Vec<_> = events
            .iter()
            .filter(|e| e.as_object().unwrap().get("cat").and_then(Value::as_str) == Some("fault"))
            .collect();
        assert_eq!(faults.len(), 1);
        let f = faults[0].as_object().unwrap();
        assert_eq!(f.get("name").unwrap().as_str(), Some("link-degrade #0"));
        assert_eq!(f.get("ph").unwrap().as_str(), Some("X"));
    }

    #[test]
    fn flow_arrows_pair_source_and_finish() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            0,
            0,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(0, 1.0);
        r.begin_task(
            1,
            1,
            0,
            SpanKind::Compute {
                kind: ComputeKind::Gemm,
            },
            0.0,
        );
        r.end_task(1, 1.0);
        r.flow_launch(0, 9, 0, 0, 1, 0.25);
        r.flow_retire(0, 0.75);
        let v = export(&r, &[0, 0]);
        let events = v
            .as_object()
            .unwrap()
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.as_object().unwrap().get("ph").unwrap().as_str())
            .filter(|p| *p == "s" || *p == "f")
            .collect();
        assert_eq!(phases, vec!["s", "f"]);
    }
}
