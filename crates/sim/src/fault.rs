//! Deterministic fault & resilience scenarios.
//!
//! A [`FaultPlan`] is a seedless, fully explicit schedule of injected
//! events — GPU fail-stop, link degradation with a recovery time, straggler
//! ranks, thermal runaway — plus a [`RecoveryPolicy`] that prices what the
//! training system does when a rank dies. The engine threads the plan
//! through its event loop (see `engine.rs`); an empty plan
//! ([`FaultPlan::none`]) is guaranteed byte-identical to a fault-free run,
//! which the golden suite pins.
//!
//! Determinism is a feature, not a limitation: MTBF studies are expressed
//! as explicit schedules (see [`FaultPlan::periodic_fail_stops`]) so that
//! sweeps are reproducible and cacheable — the serialized plan participates
//! in the `SimCache` key.

use serde::{Deserialize, Serialize};

/// One injected fault event. All times are in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A GPU fail-stops at `at_s`; the run stalls per the recovery policy.
    GpuFailStop {
        /// Failing GPU (cluster index).
        gpu: u32,
        /// Failure time, seconds.
        at_s: f64,
    },
    /// A link runs at `factor` × bandwidth from `at_s` for `duration_s`
    /// (a flap is a short duration; a brownout a long one).
    LinkDegrade {
        /// Degraded link (cluster link-table index).
        link: u32,
        /// Onset time, seconds.
        at_s: f64,
        /// Time until the link recovers, seconds.
        duration_s: f64,
        /// Bandwidth multiplier in `(0, 1]` while degraded.
        factor: f64,
    },
    /// A rank computes `slowdown`× slower from `at_s` for `duration_s`.
    Straggler {
        /// Straggling rank.
        rank: u32,
        /// Onset time, seconds.
        at_s: f64,
        /// Time until the rank recovers, seconds.
        duration_s: f64,
        /// Compute slowdown factor, `>= 1`.
        slowdown: f64,
    },
    /// A GPU's effective inlet temperature rises by `inlet_delta_c` from
    /// `at_s` for `duration_s` (e.g. a failed fan or blocked airflow),
    /// forcing sustained thermal throttling through the DVFS governor.
    ThermalRunaway {
        /// Affected GPU (cluster index).
        gpu: u32,
        /// Onset time, seconds.
        at_s: f64,
        /// Time until cooling is restored, seconds.
        duration_s: f64,
        /// Added inlet temperature, °C.
        inlet_delta_c: f64,
    },
}

impl FaultEvent {
    /// Onset time of the event, seconds.
    pub fn at_s(&self) -> f64 {
        match *self {
            FaultEvent::GpuFailStop { at_s, .. }
            | FaultEvent::LinkDegrade { at_s, .. }
            | FaultEvent::Straggler { at_s, .. }
            | FaultEvent::ThermalRunaway { at_s, .. } => at_s,
        }
    }

    /// Short label for spans/traces.
    pub fn label(&self) -> &'static str {
        match self {
            FaultEvent::GpuFailStop { .. } => "gpu-fail-stop",
            FaultEvent::LinkDegrade { .. } => "link-degrade",
            FaultEvent::Straggler { .. } => "straggler",
            FaultEvent::ThermalRunaway { .. } => "thermal-runaway",
        }
    }
}

/// What the training system does when a rank fail-stops, priced as a cost
/// model (the simulator does not re-execute lost iterations; it charges
/// their time and energy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Restart from the last periodic checkpoint: the outage is the restart
    /// latency plus re-computing the work lost since the last checkpoint.
    CheckpointRestart {
        /// Seconds between checkpoints (from t = 0).
        checkpoint_interval_s: f64,
        /// Detection + scheduling + reload latency, seconds.
        restart_latency_s: f64,
    },
    /// Swap in a hot spare: the outage is just the swap latency (weights
    /// are recovered from peers, no work is lost).
    SpareSwap {
        /// Drain + swap + rejoin latency, seconds.
        swap_latency_s: f64,
    },
    /// Shrink the DP group and keep going at reduced throughput; optionally
    /// regrow after repair.
    ElasticShrink {
        /// Collective re-formation latency per shrink/regrow, seconds.
        reconfig_latency_s: f64,
        /// Seconds after the failure at which the repaired rank rejoins
        /// (0.0 = never regrow).
        regrow_after_s: f64,
    },
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::CheckpointRestart {
            checkpoint_interval_s: 600.0,
            restart_latency_s: 120.0,
        }
    }
}

/// A deterministic schedule of fault events plus the recovery policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Injected events (any order; the engine sorts by onset time).
    pub events: Vec<FaultEvent>,
    /// How fail-stops are recovered.
    pub recovery: RecoveryPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: a run with it is byte-identical to a fault-free run.
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Set the recovery policy (chainable).
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Add a GPU fail-stop (chainable).
    pub fn gpu_fail_stop(mut self, gpu: u32, at_s: f64) -> Self {
        self.events.push(FaultEvent::GpuFailStop { gpu, at_s });
        self
    }

    /// Add a link degradation window (chainable).
    pub fn link_degrade(mut self, link: u32, at_s: f64, duration_s: f64, factor: f64) -> Self {
        self.events.push(FaultEvent::LinkDegrade {
            link,
            at_s,
            duration_s,
            factor,
        });
        self
    }

    /// Add a straggler window (chainable).
    pub fn straggler(mut self, rank: u32, at_s: f64, duration_s: f64, slowdown: f64) -> Self {
        self.events.push(FaultEvent::Straggler {
            rank,
            at_s,
            duration_s,
            slowdown,
        });
        self
    }

    /// Add a thermal-runaway window (chainable).
    pub fn thermal_runaway(
        mut self,
        gpu: u32,
        at_s: f64,
        duration_s: f64,
        inlet_delta_c: f64,
    ) -> Self {
        self.events.push(FaultEvent::ThermalRunaway {
            gpu,
            at_s,
            duration_s,
            inlet_delta_c,
        });
        self
    }

    /// A deterministic stand-in for an exponential failure process: with a
    /// per-GPU mean time between failures of `mtbf_s` over `num_gpus`
    /// devices, the aggregate failure interarrival is `mtbf_s / num_gpus`.
    /// Failure `k` lands at `(k + 1) × mtbf_s / num_gpus`, on a GPU chosen
    /// by Knuth multiplicative hashing of `k` — seedless, so identical
    /// arguments always produce an identical (cacheable) plan.
    pub fn periodic_fail_stops(mtbf_s: f64, num_gpus: u32, horizon_s: f64) -> Self {
        assert!(mtbf_s > 0.0, "MTBF must be positive, got {mtbf_s}");
        assert!(num_gpus > 0, "need at least one GPU");
        let mut plan = FaultPlan::none();
        let interarrival = mtbf_s / num_gpus as f64;
        let mut k: u64 = 0;
        loop {
            let at_s = (k + 1) as f64 * interarrival;
            if at_s > horizon_s {
                break;
            }
            let gpu = ((k.wrapping_mul(2_654_435_761)) % num_gpus as u64) as u32;
            plan = plan.gpu_fail_stop(gpu, at_s);
            k += 1;
        }
        plan
    }

    /// Check every event against the cluster/trace dimensions. Returns a
    /// human-readable description of the first problem found.
    pub fn validate(&self, num_gpus: u32, num_links: u32, world: u32) -> Result<(), String> {
        fn finite_nonneg(name: &str, v: f64) -> Result<(), String> {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
            Ok(())
        }
        for (i, ev) in self.events.iter().enumerate() {
            finite_nonneg(&format!("event {i}: at_s"), ev.at_s())?;
            match *ev {
                FaultEvent::GpuFailStop { gpu, .. } => {
                    if gpu >= num_gpus {
                        return Err(format!(
                            "event {i}: gpu {gpu} out of range (cluster has {num_gpus})"
                        ));
                    }
                }
                FaultEvent::LinkDegrade {
                    link,
                    duration_s,
                    factor,
                    ..
                } => {
                    if link >= num_links {
                        return Err(format!(
                            "event {i}: link {link} out of range (cluster has {num_links})"
                        ));
                    }
                    finite_nonneg(&format!("event {i}: duration_s"), duration_s)?;
                    if !(factor > 0.0 && factor <= 1.0) {
                        return Err(format!(
                            "event {i}: degradation factor must be in (0, 1], got {factor}"
                        ));
                    }
                }
                FaultEvent::Straggler {
                    rank,
                    duration_s,
                    slowdown,
                    ..
                } => {
                    if rank >= world {
                        return Err(format!(
                            "event {i}: rank {rank} out of range (world is {world})"
                        ));
                    }
                    finite_nonneg(&format!("event {i}: duration_s"), duration_s)?;
                    if !(slowdown >= 1.0 && slowdown.is_finite()) {
                        return Err(format!(
                            "event {i}: slowdown must be finite and >= 1, got {slowdown}"
                        ));
                    }
                }
                FaultEvent::ThermalRunaway {
                    gpu,
                    duration_s,
                    inlet_delta_c,
                    ..
                } => {
                    if gpu >= num_gpus {
                        return Err(format!(
                            "event {i}: gpu {gpu} out of range (cluster has {num_gpus})"
                        ));
                    }
                    finite_nonneg(&format!("event {i}: duration_s"), duration_s)?;
                    if !inlet_delta_c.is_finite() || inlet_delta_c <= 0.0 {
                        return Err(format!(
                            "event {i}: inlet_delta_c must be finite and > 0, got {inlet_delta_c}"
                        ));
                    }
                }
            }
        }
        match self.recovery {
            RecoveryPolicy::CheckpointRestart {
                checkpoint_interval_s,
                restart_latency_s,
            } => {
                if !(checkpoint_interval_s > 0.0 && checkpoint_interval_s.is_finite()) {
                    return Err(format!(
                        "checkpoint_interval_s must be finite and > 0, got {checkpoint_interval_s}"
                    ));
                }
                finite_nonneg("restart_latency_s", restart_latency_s)?;
            }
            RecoveryPolicy::SpareSwap { swap_latency_s } => {
                finite_nonneg("swap_latency_s", swap_latency_s)?;
            }
            RecoveryPolicy::ElasticShrink {
                reconfig_latency_s,
                regrow_after_s,
            } => {
                finite_nonneg("reconfig_latency_s", reconfig_latency_s)?;
                finite_nonneg("regrow_after_s", regrow_after_s)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_empty_and_valid() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan, FaultPlan::default());
        assert!(plan.validate(8, 24, 8).is_ok());
    }

    #[test]
    fn builders_accumulate_events() {
        let plan = FaultPlan::none()
            .gpu_fail_stop(3, 10.0)
            .link_degrade(7, 2.0, 1.0, 0.5)
            .straggler(1, 0.5, 4.0, 2.0)
            .thermal_runaway(0, 1.0, 8.0, 15.0)
            .with_recovery(RecoveryPolicy::SpareSwap {
                swap_latency_s: 30.0,
            });
        assert_eq!(plan.events.len(), 4);
        assert!(plan.validate(8, 24, 8).is_ok());
        assert_eq!(plan.events[0].label(), "gpu-fail-stop");
        assert_eq!(plan.events[0].at_s(), 10.0);
    }

    #[test]
    fn periodic_fail_stops_are_deterministic_and_bounded() {
        let a = FaultPlan::periodic_fail_stops(80.0, 8, 50.0);
        let b = FaultPlan::periodic_fail_stops(80.0, 8, 50.0);
        assert_eq!(a, b, "same arguments must yield the same plan");
        // Interarrival 10 s over a 50 s horizon: failures at 10..=50.
        assert_eq!(a.events.len(), 5);
        for (k, ev) in a.events.iter().enumerate() {
            assert!((ev.at_s() - 10.0 * (k + 1) as f64).abs() < 1e-12);
            match ev {
                FaultEvent::GpuFailStop { gpu, .. } => assert!(*gpu < 8),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(a.validate(8, 24, 8).is_ok());
    }

    #[test]
    fn periodic_fail_stops_spread_across_gpus() {
        let plan = FaultPlan::periodic_fail_stops(8.0, 8, 8.0);
        let gpus: std::collections::HashSet<u32> = plan
            .events
            .iter()
            .map(|ev| match ev {
                FaultEvent::GpuFailStop { gpu, .. } => *gpu,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert!(gpus.len() > 1, "failures should not all hit one GPU");
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let gpu = FaultPlan::none().gpu_fail_stop(8, 1.0);
        assert!(gpu.validate(8, 24, 8).unwrap_err().contains("gpu 8"));
        let link = FaultPlan::none().link_degrade(24, 1.0, 1.0, 0.5);
        assert!(link.validate(8, 24, 8).unwrap_err().contains("link 24"));
        let rank = FaultPlan::none().straggler(9, 1.0, 1.0, 2.0);
        assert!(rank.validate(8, 24, 8).unwrap_err().contains("rank 9"));
    }

    #[test]
    fn validate_rejects_bad_magnitudes() {
        let f = FaultPlan::none().link_degrade(0, 1.0, 1.0, 0.0);
        assert!(f.validate(8, 24, 8).unwrap_err().contains("factor"));
        let s = FaultPlan::none().straggler(0, 1.0, 1.0, 0.5);
        assert!(s.validate(8, 24, 8).unwrap_err().contains("slowdown"));
        let t = FaultPlan::none().thermal_runaway(0, 1.0, 1.0, -5.0);
        assert!(t.validate(8, 24, 8).unwrap_err().contains("inlet_delta_c"));
        let at = FaultPlan::none().gpu_fail_stop(0, f64::NAN);
        assert!(at.validate(8, 24, 8).unwrap_err().contains("at_s"));
        let ckpt = FaultPlan::none().gpu_fail_stop(0, 1.0).with_recovery(
            RecoveryPolicy::CheckpointRestart {
                checkpoint_interval_s: 0.0,
                restart_latency_s: 10.0,
            },
        );
        assert!(ckpt
            .validate(8, 24, 8)
            .unwrap_err()
            .contains("checkpoint_interval_s"));
    }

    #[test]
    fn plans_serialize_canonically_for_cache_keys() {
        let plan = FaultPlan::periodic_fail_stops(80.0, 8, 30.0);
        let a = serde_json::to_string(&plan).unwrap();
        let b = serde_json::to_string(&plan.clone()).unwrap();
        assert_eq!(a, b);
        let back: FaultPlan = serde_json::from_str(&a).unwrap();
        assert_eq!(back, plan);
    }
}
