//! Figure 7: breakdown of latency by kernel, with and without activation
//! recomputation, per parallelism configuration (H200 cluster).

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, feasible, save_json, try_run};
use charllm_trace::KernelClass;

fn main() {
    banner(
        "Figure 7",
        "kernel latency breakdown without (left) / with (right) recompute",
    );
    let cluster = hgx_h200_cluster();
    let mut rows = Vec::new();
    for arch in [gpt3_175b(), mixtral_8x22b()] {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10}",
            "config", "act", "GEMM", "Attn", "Recomp", "comm", "total", "step s"
        );
        let base = bench_job(arch.clone());
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for (tag, job) in [
                ("off", base.clone()),
                ("on", base.clone().with_recompute(true)),
            ] {
                if !feasible(&job, &spec, &cluster) {
                    eprintln!("  [infeasible] {} act={tag}", spec.label());
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    let k = r.mean_kernel_time();
                    println!(
                        "{:<14} {:<5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>10.2}",
                        r.parallelism,
                        tag,
                        k.get(KernelClass::Gemm),
                        k.get(KernelClass::Attention),
                        k.get(KernelClass::Recompute),
                        k.comm_total(),
                        k.busy_total(),
                        r.step_time_s,
                    );
                    rows.push(serde_json::json!({
                        "model": r.model,
                        "parallelism": r.parallelism,
                        "recompute": tag == "on",
                        "gemm_s": k.get(KernelClass::Gemm),
                        "attention_s": k.get(KernelClass::Attention),
                        "recompute_s": k.get(KernelClass::Recompute),
                        "comm_s": k.comm_total(),
                        "total_s": k.busy_total(),
                        "step_s": r.step_time_s,
                    }));
                }
            }
        }
    }
    save_json("fig07", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: recomputation shifts the distribution toward\n\
         compute (extra forward) and raises total kernel time; dense models\n\
         stay >50% compute while Mixtral is dominated by communication, whose\n\
         SendRecv share drops sharply at narrow TP (EP localizes in-node)."
    );
}
