/root/repo/target/debug/deps/charllm_sim-ad3b2f25fadca5e4.d: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libcharllm_sim-ad3b2f25fadca5e4.rlib: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

/root/repo/target/debug/deps/libcharllm_sim-ad3b2f25fadca5e4.rmeta: crates/sim/src/lib.rs crates/sim/src/analytic.rs crates/sim/src/config.rs crates/sim/src/engine.rs crates/sim/src/error.rs crates/sim/src/result.rs

crates/sim/src/lib.rs:
crates/sim/src/analytic.rs:
crates/sim/src/config.rs:
crates/sim/src/engine.rs:
crates/sim/src/error.rs:
crates/sim/src/result.rs:
