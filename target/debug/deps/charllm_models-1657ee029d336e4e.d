/root/repo/target/debug/deps/charllm_models-1657ee029d336e4e.d: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

/root/repo/target/debug/deps/libcharllm_models-1657ee029d336e4e.rlib: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

/root/repo/target/debug/deps/libcharllm_models-1657ee029d336e4e.rmeta: crates/models/src/lib.rs crates/models/src/arch.rs crates/models/src/error.rs crates/models/src/flops.rs crates/models/src/job.rs crates/models/src/lora.rs crates/models/src/memory.rs crates/models/src/precision.rs crates/models/src/presets.rs

crates/models/src/lib.rs:
crates/models/src/arch.rs:
crates/models/src/error.rs:
crates/models/src/flops.rs:
crates/models/src/job.rs:
crates/models/src/lora.rs:
crates/models/src/memory.rs:
crates/models/src/precision.rs:
crates/models/src/presets.rs:
