//! Golden equivalence suite for symmetry folding.
//!
//! A folded run — representative dp == 0 replica simulated, results
//! expanded — must be **metric-identical** to the unfolded engine on the
//! same cluster/placement/workload: step time, throughput, per-rank kernel
//! breakdowns, and per-GPU traffic/throttle/telemetry all equal to
//! relative 1e-12 (a couple of ulp); cluster energy — an integral over
//! every control tick — to 1e-10. Bit equality is deliberately
//! not demanded: the unfolded engine's own replicas differ among
//! themselves at the ulp level, because the flow list compacts with
//! `swap_remove` and two concurrent flows touching one GPU accumulate into
//! its f64 windows in history-dependent order — see
//! [`assert_series_close`]. Folding reproduces replica 0 to that same
//! noise floor (and is frequently bit-equal, e.g. the switchless 64-GPU
//! case). Covered here across switchless HGX clusters, the rail-fabric
//! SuperPod (exercising the switch-link load multiplier and injected
//! cross-replica rings), MoE expert parallelism, permuted-but-congruent
//! placements, and the fallback/rejection paths.

use proptest::prelude::*;

use charllm_hw::{presets, Cluster, GpuId};
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, RankGrid, StagePartition};
use charllm_sim::fold::{self, FoldOptions};
use charllm_sim::{SimConfig, SimError, SimResult, Simulator};
use charllm_trace::{lower_train, lower_train_folded, DeviceHints};

fn fold_cfg() -> SimConfig {
    let mut cfg = SimConfig::fast();
    cfg.uniform_variability = true;
    cfg
}

fn spec(tp: usize, pp: usize, ep: usize, world: usize) -> ParallelismSpec {
    ParallelismSpec::infer_dp(tp, pp, ep, world, false).unwrap()
}

fn run_unfolded(
    cluster: &Cluster,
    placement: &Placement,
    job: &TrainJob,
    spec: &ParallelismSpec,
    cfg: SimConfig,
) -> SimResult {
    let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let lowered = lower_train(job, spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
    Simulator::new(cluster, placement, &lowered.trace, cfg)
        .unwrap()
        .run()
        .unwrap()
}

fn run_folded(
    cluster: &Cluster,
    placement: &Placement,
    job: &TrainJob,
    spec: &ParallelismSpec,
    cfg: SimConfig,
    opts: &FoldOptions,
) -> SimResult {
    let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let folded =
        lower_train_folded(job, spec, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();
    assert!(folded.multiplicity > 1, "workload must actually fold");
    let (result, _) = fold::run_folded(cluster, placement, &folded, spec, cfg, None, opts).unwrap();
    result
}

/// Assert two telemetry series sample the same instants and agree to a
/// relative 1e-9. Bit equality is deliberately not required: the engine's
/// flow list compacts with `swap_remove`, so two concurrent flows touching
/// one GPU can accumulate into its sampling window in either order — a
/// one-ulp difference that already separates the *replicas of an unfolded
/// run* from each other. Folding reproduces replica 0 to the same ulp.
fn assert_series_close(
    a: &charllm_telemetry::TimeSeries,
    b: &charllm_telemetry::TimeSeries,
    what: &str,
) {
    assert_eq!(a.times(), b.times(), "{what} sample times");
    for (i, (x, y)) in a.values().iter().zip(b.values()).enumerate() {
        let rel = (x - y).abs() / y.abs().max(1.0);
        assert!(rel < 1e-9, "{what}[{i}]: {x} vs {y} (rel {rel})");
    }
}

/// Assert two scalars agree to relative 1e-12 — the folding noise floor
/// (see [`assert_series_close`]: ulp-level accumulation-order differences
/// feed thermals → frequency → kernel rates, so timing metrics can drift a
/// couple of ulp from the unfolded run, never more).
fn assert_close(x: f64, y: f64, what: &str) {
    let rel = (x - y).abs() / y.abs().max(1e-300);
    assert!(rel < 1e-12, "{what}: {x} vs {y} (rel {rel})");
}

/// Assert a folded run reproduces the unfolded one metric-for-metric.
fn assert_metric_identical(folded: &SimResult, unfolded: &SimResult) {
    use charllm_hw::LinkClass;
    use charllm_trace::KernelClass;

    assert_close(folded.step_time_s, unfolded.step_time_s, "step time");
    assert_close(folded.tokens_per_s, unfolded.tokens_per_s, "tokens/s");
    assert_eq!(
        folded.iteration_times_s.len(),
        unfolded.iteration_times_s.len(),
        "iteration count"
    );
    for (i, (x, y)) in folded
        .iteration_times_s
        .iter()
        .zip(&unfolded.iteration_times_s)
        .enumerate()
    {
        assert_close(*x, *y, &format!("iteration time [{i}]"));
    }
    assert_close(folded.sim_time_s, unfolded.sim_time_s, "sim time");
    assert_eq!(
        folded.kernel_time.len(),
        unfolded.kernel_time.len(),
        "kernel rank count"
    );
    for (r, (f, u)) in folded
        .kernel_time
        .iter()
        .zip(&unfolded.kernel_time)
        .enumerate()
    {
        for class in KernelClass::all() {
            assert_close(
                f.get(class),
                u.get(class),
                &format!("kernel time rank {r} {class:?}"),
            );
        }
    }
    assert_eq!(
        folded.traffic.num_gpus(),
        unfolded.traffic.num_gpus(),
        "traffic coverage"
    );
    for g in 0..unfolded.traffic.num_gpus() {
        for class in [
            LinkClass::NvLink,
            LinkClass::XgmiPackage,
            LinkClass::XgmiPort,
            LinkClass::Pcie,
            LinkClass::Nic,
        ] {
            assert_close(
                folded.traffic.get(g, class),
                unfolded.traffic.get(g, class),
                &format!("traffic gpu {g} {class:?}"),
            );
        }
    }
    for (g, (x, y)) in folded
        .throttle_ratio
        .iter()
        .zip(&unfolded.throttle_ratio)
        .enumerate()
    {
        assert_close(*x, *y, &format!("throttle gpu {g}"));
    }
    for (g, (x, y)) in folded
        .thermal_throttle_ratio
        .iter()
        .zip(&unfolded.thermal_throttle_ratio)
        .enumerate()
    {
        assert_close(*x, *y, &format!("thermal throttle gpu {g}"));
    }
    for (g, (f, u)) in folded.occupancy.iter().zip(&unfolded.occupancy).enumerate() {
        assert_close(f.occupancy, u.occupancy, &format!("occupancy gpu {g}"));
        assert_close(f.warps, u.warps, &format!("warps gpu {g}"));
        assert_close(
            f.threadblocks,
            u.threadblocks,
            &format!("threadblocks gpu {g}"),
        );
    }
    assert_eq!(
        folded.telemetry.num_gpus(),
        unfolded.telemetry.num_gpus(),
        "telemetry coverage"
    );
    for g in 0..unfolded.telemetry.num_gpus() {
        assert_series_close(
            folded.telemetry.power(g),
            unfolded.telemetry.power(g),
            "power",
        );
        assert_series_close(folded.telemetry.temp(g), unfolded.telemetry.temp(g), "temp");
        assert_series_close(folded.telemetry.freq(g), unfolded.telemetry.freq(g), "freq");
        assert_series_close(folded.telemetry.util(g), unfolded.telemetry.util(g), "util");
        assert_series_close(folded.telemetry.pcie(g), unfolded.telemetry.pcie(g), "pcie");
    }
    // Energy integrates power over every control tick, so the per-tick ulp
    // noise accumulates linearly with simulated time — the loosest of the
    // tolerances, still ten significant digits.
    let rel =
        (folded.energy_per_step_j - unfolded.energy_per_step_j).abs() / unfolded.energy_per_step_j;
    assert!(rel < 1e-10, "energy relative error {rel}");
    let rel =
        (folded.tokens_per_joule - unfolded.tokens_per_joule).abs() / unfolded.tokens_per_joule;
    assert!(rel < 1e-10, "tokens/J relative error {rel}");
}

fn golden(cluster: Cluster, job: TrainJob, spec: ParallelismSpec) {
    let placement = Placement::identity(&cluster, spec.world()).unwrap();
    let cfg = fold_cfg();
    let folded = run_folded(
        &cluster,
        &placement,
        &job,
        &spec,
        cfg,
        &FoldOptions::default(),
    );
    let unfolded = run_unfolded(&cluster, &placement, &job, &spec, cfg);
    assert_metric_identical(&folded, &unfolded);
}

#[test]
fn gpt3_64gpu_switchless_folds_exactly() {
    golden(
        presets::hgx_h100_with_nodes(8),
        TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16),
        spec(8, 2, 1, 64), // dp = 4
    );
}

#[test]
fn gpt3_64gpu_superpod_rails_fold_exactly() {
    // Rail-fabric SuperPod: cross-node routes traverse shared Switch links,
    // exercising the ×dp load multiplier on intra-replica (pp) traffic and
    // the injected full-ring plans for the dp AllReduce.
    golden(
        presets::hgx_h100_superpod(8, 4),
        TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16),
        spec(8, 2, 1, 64), // dp = 4
    );
}

#[test]
fn gpt3_512gpu_switchless_folds_exactly() {
    golden(
        presets::hgx_h100_with_nodes(64),
        TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8),
        spec(8, 8, 1, 512), // dp = 8
    );
}

#[test]
fn gpt3_512gpu_superpod_folds_exactly() {
    golden(
        presets::hgx_h100_superpod(64, 8),
        TrainJob::pretrain(models::gpt3_13b()).with_global_batch(8),
        spec(8, 8, 1, 512), // dp = 8
    );
}

#[test]
fn mixtral_expert_parallel_folds_exactly() {
    // EP all-to-all is intra-replica: groups survive folding whole and get
    // the switch multiplier on shared links.
    golden(
        presets::hgx_h100_with_nodes(8),
        TrainJob::pretrain(models::mixtral_8x7b()).with_global_batch(16),
        spec(1, 2, 8, 64), // dp = 4
    );
    golden(
        presets::hgx_h100_superpod(8, 4),
        TrainJob::pretrain(models::mixtral_8x7b()).with_global_batch(16),
        spec(2, 2, 8, 64), // dp = 2
    );
}

#[test]
fn permuted_congruent_placement_folds_exactly() {
    // Swap the node blocks of replicas 1 and 2: still a translated copy of
    // replica 0, so folding must accept it and reproduce the unfolded run
    // on the *same* permuted placement.
    let cluster = presets::hgx_h100_with_nodes(8);
    let s = spec(8, 2, 1, 64); // dp = 4, one node per (dp, pp) cell
    let grid = RankGrid::new(s);
    let table: Vec<GpuId> = (0..s.world())
        .map(|r| {
            let c = grid.coords(r);
            let swapped_dp = match c.dp {
                1 => 2,
                2 => 1,
                d => d,
            };
            GpuId((r as isize + (swapped_dp as isize - c.dp as isize) * 8) as u32)
        })
        .collect();
    let placement = Placement::from_table(&cluster, table).unwrap();
    let map = fold::detect(&cluster, &placement, &s).unwrap();
    assert_eq!(map.multiplicity, 4);

    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
    let cfg = fold_cfg();
    let folded = run_folded(&cluster, &placement, &job, &s, cfg, &FoldOptions::default());
    let unfolded = run_unfolded(&cluster, &placement, &job, &s, cfg);
    assert_metric_identical(&folded, &unfolded);
}

#[test]
fn incongruent_placement_falls_back_to_unfolded() {
    // Swap two GPUs *within* replica 1 only: slots no longer match replica
    // 0 rank-for-rank, so detection must refuse and the high-level entry
    // point must fall back (and still agree with the plain engine).
    let cluster = presets::hgx_h100_with_nodes(8);
    let s = spec(8, 2, 1, 64);
    let mut table: Vec<GpuId> = (0..s.world() as u32).map(GpuId).collect();
    table.swap(16, 17); // ranks 16/17 live in replica 1 (dp stride 8, tp 8)
    let placement = Placement::from_table(&cluster, table).unwrap();
    assert!(matches!(
        fold::detect(&cluster, &placement, &s),
        Err(SimError::FoldUnsupported(_))
    ));

    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
    let partition = StagePartition::even(job.arch.num_layers, s.pp).unwrap();
    let cfg = fold_cfg();
    let (result, report) = fold::simulate_train_folded(
        &cluster,
        &placement,
        &job,
        &s,
        PipelineSchedule::OneFOneB,
        &partition,
        cfg,
        &FoldOptions::default(),
    )
    .unwrap();
    assert!(!report.folded);
    assert!(report.reason.is_some());
    let unfolded = run_unfolded(&cluster, &placement, &job, &s, cfg);
    assert_eq!(result.step_time_s, unfolded.step_time_s);
}

#[test]
fn symmetry_breaking_config_rejects_folding() {
    let cluster = presets::hgx_h100_with_nodes(8);
    let s = spec(8, 2, 1, 64);
    let placement = Placement::identity(&cluster, s.world()).unwrap();
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
    let partition = StagePartition::even(job.arch.num_layers, s.pp).unwrap();
    let hints = DeviceHints::for_spec(cluster.gpu());
    let folded =
        lower_train_folded(&job, &s, PipelineSchedule::OneFOneB, &partition, &hints).unwrap();

    // Per-node power cap singles out one replica's node.
    let mut cfg = fold_cfg();
    cfg.node_power_cap = Some((0, 4000.0));
    let err = fold::run_folded(
        &cluster,
        &placement,
        &folded,
        &s,
        cfg,
        None,
        &FoldOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::FoldUnsupported(_)), "{err}");

    // Seeded silicon variability differs per GPU across replicas.
    let mut cfg = fold_cfg();
    cfg.uniform_variability = false;
    let err = fold::run_folded(
        &cluster,
        &placement,
        &folded,
        &s,
        cfg,
        None,
        &FoldOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, SimError::FoldUnsupported(_)), "{err}");

    // A non-empty fault plan splits via the high-level gate.
    let plan = charllm_sim::FaultPlan::none().gpu_fail_stop(0, 0.1);
    assert!(fold::split_reason(&fold_cfg(), Some(&plan)).is_some());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any placement that assigns each replica a translated copy of
    /// replica 0's node blocks — here a random permutation of the blocks —
    /// must fold, with one representative class per (tp, ep, pp) column.
    #[test]
    fn random_congruent_placements_always_fold(
        (tp, ep) in prop_oneof![
            Just((8usize, 1usize)),
            Just((4, 2)),
            Just((2, 4)),
            Just((1, 8)),
        ],
        pp in prop_oneof![Just(1usize), Just(2)],
        dp in prop_oneof![Just(2usize), Just(4)],
        swaps in collection::vec((0usize..4, 0usize..4), 0..6),
    ) {
        let world = tp * ep * pp * dp;
        let cluster = presets::hgx_h100_with_nodes(world / 8);
        let s = ParallelismSpec::infer_dp(tp, pp, ep, world, false).unwrap();
        let mut perm: Vec<usize> = (0..dp).collect();
        for (a, b) in swaps {
            perm.swap(a % dp, b % dp);
        }
        let grid = RankGrid::new(s);
        let table: Vec<GpuId> = (0..world)
            .map(|r| {
                let c = grid.coords(r);
                let node = perm[c.dp] + dp * c.pp;
                GpuId((node * 8 + c.tp + tp * c.ep) as u32)
            })
            .collect();
        let placement = Placement::from_table(&cluster, table).unwrap();
        let map = fold::detect(&cluster, &placement, &s).unwrap();
        prop_assert_eq!(map.multiplicity as usize, dp);
        prop_assert_eq!(map.active_ranks.len(), world / dp);
        prop_assert_eq!(map.active_nodes.len(), pp);
    }
}

#[test]
fn telemetry_expansion_is_optional_but_aggregates_agree() {
    let cluster = presets::hgx_h100_with_nodes(8);
    let s = spec(8, 2, 1, 64);
    let placement = Placement::identity(&cluster, s.world()).unwrap();
    let job = TrainJob::pretrain(models::gpt3_13b()).with_global_batch(16);
    let cfg = fold_cfg();

    let expanded = run_folded(
        &cluster,
        &placement,
        &job,
        &s,
        cfg,
        &FoldOptions {
            expand_telemetry: true,
            ..FoldOptions::default()
        },
    );
    let compact = run_folded(
        &cluster,
        &placement,
        &job,
        &s,
        cfg,
        &FoldOptions {
            expand_telemetry: false,
            ..FoldOptions::default()
        },
    );
    assert_eq!(expanded.step_time_s, compact.step_time_s);
    assert_eq!(expanded.energy_per_step_j, compact.energy_per_step_j);
    // Phantom GPUs mirror representatives, so peaks survive compaction.
    assert_eq!(
        expanded.telemetry.peak_temp_c(),
        compact.telemetry.peak_temp_c()
    );
    assert_eq!(
        expanded.telemetry.peak_power_w(),
        compact.telemetry.peak_power_w()
    );
    // But the compact store only carries series for stepped GPUs.
    let phantom = (8..16).find(|&g| !compact.telemetry.power(g).is_empty());
    assert_eq!(phantom, None, "phantom node series must stay empty");
    assert!(!expanded.telemetry.power(8).is_empty());
}
