//! Root facade of the CharLLM-PPT reproduction workspace.
//!
//! Re-exports the [`charllm`] facade crate; see the README for the
//! architecture overview and `examples/` for runnable scenarios.

pub use charllm::*;
