//! Ablation: uniform cooling vs. the real front-to-back airflow — isolating
//! how much of the performance/throttling behaviour is caused purely by the
//! §6 thermal imbalance mechanism.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, sim_config};
use charllm_hw::AirflowLayout;

fn main() {
    banner(
        "Ablation",
        "front-to-back airflow vs uniform cooling (imbalance off)",
    );
    let real = hgx_h200_cluster();
    let uniform = hgx_h200_cluster()
        .with_airflow(AirflowLayout::uniform(8, 26.0))
        .expect("matching slot count");
    let job = bench_job(gpt3_175b()).with_recompute(true);
    let mut rows = Vec::new();
    println!(
        "{:<12} {:<10} {:>11} {:>10} {:>9} {:>9} {:>7}",
        "config", "cooling", "tok/s", "tok/J", "gap %", "peak C", "thr %"
    );
    for label in ["TP8-PP4", "TP2-PP16"] {
        let Ok(spec) = ParallelismSpec::parse(label, real.num_gpus()) else {
            continue;
        };
        for (mode, cluster) in [("airflow", &real), ("uniform", &uniform)] {
            let Ok(r) = Experiment::builder()
                .cluster(cluster.clone())
                .job(job.clone())
                .spec(spec)
                .sim_config(sim_config())
                .run()
            else {
                continue;
            };
            println!(
                "{:<12} {:<10} {:>11.0} {:>10.3} {:>8.1}% {:>9.1} {:>6.1}%",
                label,
                mode,
                r.tokens_per_s,
                r.tokens_per_joule,
                r.thermal_gap() * 100.0,
                r.peak_temp_c,
                r.mean_throttle * 100.0,
            );
            rows.push(serde_json::json!({
                "parallelism": label,
                "cooling": mode,
                "tokens_per_s": r.tokens_per_s,
                "tokens_per_joule": r.tokens_per_joule,
                "thermal_gap": r.thermal_gap(),
                "throttle": r.mean_throttle,
            }));
        }
    }
    save_json("ablation_cooling", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: with uniform cooling the rear-GPU throttling and\n\
         straggler effect disappear and throughput improves — quantifying\n\
         the training-time cost of airflow-induced thermal imbalance."
    );
}
