//! Analytic (closed-form) step-time estimator.
//!
//! The event-driven engine captures contention, schedule jitter and thermal
//! feedback, but costs seconds per configuration. For design-space search
//! (the paper's "strategy-aware, topology-conscious tuning" recommendation)
//! a closed-form estimate is enough to rank configurations: compute time
//! from FLOPs at a derated clock, exposed communication from α-β estimates
//! of each collective on its bottleneck path, and the 1F1B pipeline-bubble
//! factor. The estimator deliberately shares the *inputs* of the full
//! simulation (trace + cluster), so the two can be cross-validated.

use std::collections::HashMap;

use charllm_hw::Cluster;
use charllm_net::lower_collective;
use charllm_parallel::Placement;
use charllm_trace::{ExecutionTrace, Step};

use crate::error::SimError;

/// A closed-form step-time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticEstimate {
    /// Estimated step time, seconds.
    pub step_time_s: f64,
    /// Compute component (slowest rank), seconds.
    pub compute_s: f64,
    /// Exposed communication component (slowest rank), seconds.
    pub comm_s: f64,
    /// Estimated throughput, tokens/s.
    pub tokens_per_s: f64,
}

/// Sustained clock derate applied to peak (DVFS/thermal average; matches
/// the event engine's typical steady state).
pub const SUSTAINED_CLOCK_DERATE: f64 = 0.93;

/// Average contention multiplier on shared-path collectives (several
/// parallel groups usually communicate at once).
pub const CONTENTION_FACTOR: f64 = 1.5;

/// Estimate step time for a lowered trace on a cluster without running the
/// event engine.
///
/// # Errors
///
/// Returns [`SimError::PlacementMismatch`] when the placement does not
/// cover the trace.
pub fn estimate(
    cluster: &Cluster,
    placement: &Placement,
    trace: &ExecutionTrace,
) -> Result<AnalyticEstimate, SimError> {
    if placement.world() < trace.world() {
        return Err(SimError::PlacementMismatch {
            trace_world: trace.world(),
            placement_world: placement.world(),
        });
    }
    let peak = cluster.gpu().peak_fp16_flops * SUSTAINED_CLOCK_DERATE;

    // Serial time per collective instance (single-flow α-β estimate over
    // the slowest flow in the plan), cached per instance.
    let mut coll_time: HashMap<u32, f64> = HashMap::new();
    let mut per_rank = vec![(0.0f64, 0.0f64); trace.world()]; // (compute, comm)

    for (rank, totals) in per_rank.iter_mut().enumerate() {
        for step in trace.steps(rank) {
            match *step {
                Step::Compute { kind, flops } => {
                    totals.0 += flops / (peak * kind.mfu());
                }
                Step::CollWait { coll } => {
                    let idx = coll.0;
                    let t = *coll_time.entry(idx).or_insert_with(|| {
                        let inst = trace.collective(coll);
                        let gpus: Vec<_> = inst.group.iter().map(|&r| placement.gpu(r)).collect();
                        let plan = lower_collective(
                            inst.kind,
                            inst.bytes_per_rank,
                            &gpus,
                            cluster,
                            inst.chunking,
                        )
                        .expect("validated placement");
                        plan.flows
                            .iter()
                            .map(|f| {
                                let route = f.route(cluster).expect("valid route");
                                if route.is_empty() {
                                    0.0
                                } else {
                                    let bw = cluster.route_bottleneck_gbps(&route) * 1e9;
                                    f.work_bytes(cluster, &route) * CONTENTION_FACTOR / bw
                                }
                            })
                            .fold(0.0, f64::max)
                    });
                    totals.1 += t;
                }
                Step::CollStart { .. } => {}
            }
        }
    }

    let compute_s = per_rank.iter().map(|r| r.0).fold(0.0, f64::max);
    let comm_s = per_rank.iter().map(|r| r.1).fold(0.0, f64::max);
    // The busiest rank's serial time is the step estimate; 1F1B stalls are
    // already visible as CollWait time on the stalled ranks.
    let step_time_s = per_rank.iter().map(|r| r.0 + r.1).fold(0.0, f64::max);
    let tokens = trace.meta().tokens_per_iteration as f64;
    Ok(AnalyticEstimate {
        step_time_s,
        compute_s,
        comm_s,
        tokens_per_s: if step_time_s > 0.0 {
            tokens / step_time_s
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimConfig, Simulator};
    use charllm_hw::presets;
    use charllm_models::{presets as models, TrainJob};
    use charllm_parallel::{ParallelismSpec, PipelineSchedule, StagePartition};
    use charllm_trace::{lower_train, DeviceHints};

    fn lowered(label: &str, gbs: usize) -> (charllm_hw::Cluster, Placement, ExecutionTrace) {
        let cluster = presets::hgx_h200_cluster();
        let spec = ParallelismSpec::parse(label, 32).unwrap();
        let job = TrainJob::pretrain(models::gpt3_13b())
            .with_global_batch(gbs)
            .with_recompute(true);
        let partition = StagePartition::even(40, spec.pp).unwrap();
        let hints = DeviceHints::for_spec(cluster.gpu());
        let t = lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
            .unwrap()
            .trace;
        let placement = Placement::identity(&cluster, spec.world()).unwrap();
        (cluster, placement, t)
    }

    #[test]
    fn estimate_is_positive_and_decomposes() {
        let (cluster, placement, trace) = lowered("TP4-PP2", 16);
        let e = estimate(&cluster, &placement, &trace).unwrap();
        assert!(e.step_time_s > 0.0);
        assert!(e.compute_s > 0.0);
        assert!(e.comm_s > 0.0);
        assert!(e.step_time_s <= e.compute_s + e.comm_s + 1e-9);
        assert!(e.tokens_per_s > 0.0);
    }

    #[test]
    fn estimate_rank_orders_like_the_event_engine() {
        // The analytic model is a *screen*: it omits synchronization stalls
        // and is therefore optimistic, but it must (a) never exceed ~1.5x
        // the engine, (b) stay within an order of magnitude, and (c)
        // preserve the engine's ranking across configurations.
        let mut analytic = Vec::new();
        let mut engine = Vec::new();
        for label in ["TP4-PP2", "TP2-PP4", "TP8-PP1"] {
            let (cluster, placement, trace) = lowered(label, 16);
            let e = estimate(&cluster, &placement, &trace).unwrap();
            let mut cfg = SimConfig::fast();
            cfg.thermal_feedback = false;
            let r = Simulator::new(&cluster, &placement, &trace, cfg)
                .unwrap()
                .run()
                .unwrap();
            let ratio = e.step_time_s / r.step_time_s;
            assert!(
                (0.1..1.5).contains(&ratio),
                "{label}: analytic {:.3}s vs engine {:.3}s (ratio {ratio:.2})",
                e.step_time_s,
                r.step_time_s
            );
            analytic.push((label, e.step_time_s));
            engine.push((label, r.step_time_s));
        }
        fn order(mut v: Vec<(&str, f64)>) -> Vec<&str> {
            v.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"));
            v.into_iter().map(|(l, _)| l).collect()
        }
        assert_eq!(order(analytic), order(engine), "ranking must agree");
    }

    #[test]
    fn comm_heavy_config_estimated_more_communication() {
        let (cluster, placement, tp) = lowered("TP8-PP1", 16);
        let e_tp = estimate(&cluster, &placement, &tp).unwrap();
        let (cluster2, placement2, pp) = lowered("TP1-PP8", 16);
        let e_pp = estimate(&cluster2, &placement2, &pp).unwrap();
        assert!(e_tp.comm_s > e_pp.comm_s);
    }

    #[test]
    fn placement_mismatch_rejected() {
        let (cluster, _, trace) = lowered("TP4-PP2", 16);
        let small = Placement::identity(&cluster, 4).unwrap();
        assert!(matches!(
            estimate(&cluster, &small, &trace),
            Err(SimError::PlacementMismatch { .. })
        ));
    }
}
