//! The evaluated cluster configurations (Table 3) plus ablation variants.

use crate::cluster::Cluster;
use crate::gpu::GpuModel;
use crate::link::LinkSpec;
use crate::node::NodeLayout;

/// The paper's HGX H200 scale-up cluster: 4 nodes x 8 H200 (32 GPUs).
pub fn hgx_h200_cluster() -> Cluster {
    hgx_h200_with_nodes(4)
}

/// An HGX H200 cluster with an arbitrary node count (scaling studies).
pub fn hgx_h200_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{}xH200", nodes * 8),
        GpuModel::H200.spec(),
        NodeLayout::hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// The paper's HGX H100 scale-out cluster: 8 nodes x 8 H100 (64 GPUs).
pub fn hgx_h100_cluster() -> Cluster {
    hgx_h100_with_nodes(8)
}

/// An HGX H100 cluster with an arbitrary node count (scaling studies).
pub fn hgx_h100_with_nodes(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{}xH100", nodes * 8),
        GpuModel::H100.spec(),
        NodeLayout::hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// The paper's AMD cluster: 4 nodes x 4 MI250 packages = 32 logical GCDs.
pub fn mi250_cluster() -> Cluster {
    Cluster::new(
        "32xMI250-GCD",
        GpuModel::Mi250Gcd.spec(),
        NodeLayout::mi250(),
        4,
    )
    .expect("preset cluster is statically valid")
}

/// The balanced-interconnect ablation of Fig. 8: four nodes with a single
/// H200 each, removing PCIe/NIC sharing between GPUs.
pub fn single_gpu_per_node_cluster(nodes: usize) -> Cluster {
    Cluster::new(
        format!("{nodes}x1xH200"),
        GpuModel::H200.spec(),
        NodeLayout::single_gpu_hgx(),
        nodes,
    )
    .expect("preset cluster is statically valid")
}

/// An H200 cluster with the NIC line rate replaced (e.g. 800 Gbps for the
/// §7.1 bandwidth scaling projection).
pub fn hgx_h200_with_ib_gbps(nodes: usize, gbps: f64) -> Cluster {
    hgx_h200_with_nodes(nodes).with_nic(LinkSpec::ib_gbps(gbps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    #[test]
    fn table3_cluster_sizes() {
        assert_eq!(hgx_h200_cluster().num_gpus(), 32);
        assert_eq!(hgx_h200_cluster().num_nodes(), 4);
        assert_eq!(hgx_h100_cluster().num_gpus(), 64);
        assert_eq!(hgx_h100_cluster().num_nodes(), 8);
        assert_eq!(mi250_cluster().num_gpus(), 32);
        assert_eq!(mi250_cluster().num_nodes(), 4);
    }

    #[test]
    fn clusters_have_similar_total_memory() {
        // Paper: "two NVIDIA-based clusters with similar total memory".
        let h200 = hgx_h200_cluster();
        let h100 = hgx_h100_cluster();
        let m200 = h200.num_gpus() as u64 * h200.gpu().memory_bytes;
        let m100 = h100.num_gpus() as u64 * h100.gpu().memory_bytes;
        let ratio = m200 as f64 / m100 as f64;
        assert!((0.7..=1.3).contains(&ratio), "total memory ratio {ratio}");
    }

    #[test]
    fn h100_cluster_has_double_aggregate_compute() {
        let h200 = hgx_h200_cluster();
        let h100 = hgx_h100_cluster();
        let f200 = h200.num_gpus() as f64 * h200.gpu().peak_fp16_flops;
        let f100 = h100.num_gpus() as f64 * h100.gpu().peak_fp16_flops;
        assert!((f100 / f200 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_gpu_per_node_has_no_fabric_sharing() {
        let c = single_gpu_per_node_cluster(4);
        assert_eq!(c.num_gpus(), 4);
        assert_eq!(c.gpus_per_node(), 1);
    }

    #[test]
    fn ib_override_applies() {
        let c = hgx_h200_with_ib_gbps(4, 800.0);
        let nic = c
            .links()
            .find(|(_, s)| s.class == LinkClass::Nic)
            .map(|(_, s)| s.bw_gbps)
            .unwrap();
        assert_eq!(nic, 100.0);
    }

    #[test]
    fn names_are_descriptive() {
        assert_eq!(hgx_h200_cluster().name(), "32xH200");
        assert_eq!(hgx_h100_cluster().name(), "64xH100");
    }
}
