//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use — the
//! [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!`/`prop_map`
//! strategies and `collection::vec` — as a deterministic random-input
//! harness. There is no shrinking: a failing case panics with the assertion
//! message directly. Generation is seeded per test from the test's name, so
//! runs are reproducible.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) per accepted case before
    /// the harness gives up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; this stand-in runs fewer cases
        // because the heavy integration properties simulate whole clusters
        // per case.
        ProptestConfig {
            cases: 32,
            max_global_rejects: 64,
        }
    }
}

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from a test name, so every test gets a distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            seed = seed.wrapping_mul(31).wrapping_add(u64::from(b));
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between homogeneous strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct OneOf<S>(pub Vec<S>);

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`Arbitrary`] `bool`.
#[derive(Debug, Clone, Copy)]
pub struct BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;

    fn arbitrary() -> BoolStrategy {
        BoolStrategy
    }
}

/// The canonical strategy of a type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};

    /// Anything usable as a collection size: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Inclusive low and exclusive high bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for vectors of `inner`-generated elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        inner: S,
        lo: usize,
        hi: usize,
    }

    /// A vector strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(inner: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        VecStrategy { inner, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..len).map(|_| self.inner.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!` test module needs.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary, Just,
        OneOf, ProptestConfig, Strategy, TestRng,
    };
}

/// Uniform choice between strategies of the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($strategy),+])
    };
}

/// Assert inside a property (no shrinking: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Reject the current case (moves on to the next generated input).
///
/// Expands to a `continue` targeting the case loop `proptest!` generates, so
/// it is only valid directly inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(config.max_global_rejects.max(2));
            while accepted < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest: too many rejected cases in {} ({accepted}/{} accepted after {attempts} attempts)",
                    stringify!($name),
                    config.cases,
                );
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                $body
                accepted += 1;
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 2u32..=4, f in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn assume_rejects_cases(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mapped_and_oneof_strategies_compose(
            v in collection::vec((0usize..4).prop_map(|i| i * 2), 1..5),
            pick in prop_oneof![Just(1usize), Just(7)],
            b in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 8));
            prop_assert!(pick == 1 || pick == 7);
            let _ = b;
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
