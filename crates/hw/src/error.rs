//! Error types for hardware-model construction and queries.

use std::fmt;

/// Errors raised while building or querying hardware topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HwError {
    /// A GPU index was out of range for the cluster.
    GpuOutOfRange {
        /// The offending global GPU index.
        gpu: u32,
        /// Number of GPUs in the cluster.
        num_gpus: u32,
    },
    /// A node index was out of range for the cluster.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the cluster.
        num_nodes: u32,
    },
    /// A node layout was internally inconsistent (e.g. preheat matrix of the
    /// wrong dimension, or a package referencing a missing GPU slot).
    InvalidNodeLayout(String),
    /// A cluster was built with zero nodes or zero GPUs per node.
    EmptyCluster,
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::GpuOutOfRange { gpu, num_gpus } => {
                write!(
                    f,
                    "gpu index {gpu} out of range for cluster with {num_gpus} gpus"
                )
            }
            HwError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node index {node} out of range for cluster with {num_nodes} nodes"
                )
            }
            HwError::InvalidNodeLayout(msg) => write!(f, "invalid node layout: {msg}"),
            HwError::EmptyCluster => write!(f, "cluster must have at least one node and one gpu"),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = HwError::GpuOutOfRange {
            gpu: 99,
            num_gpus: 32,
        };
        let s = e.to_string();
        assert!(s.contains("99"));
        assert!(s.contains("32"));
        assert_eq!(s, s.to_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }
}
