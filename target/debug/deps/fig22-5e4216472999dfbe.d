/root/repo/target/debug/deps/fig22-5e4216472999dfbe.d: crates/bench/benches/fig22.rs

/root/repo/target/debug/deps/fig22-5e4216472999dfbe: crates/bench/benches/fig22.rs

crates/bench/benches/fig22.rs:
