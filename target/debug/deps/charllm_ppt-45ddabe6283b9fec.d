/root/repo/target/debug/deps/charllm_ppt-45ddabe6283b9fec.d: src/lib.rs

/root/repo/target/debug/deps/libcharllm_ppt-45ddabe6283b9fec.rlib: src/lib.rs

/root/repo/target/debug/deps/libcharllm_ppt-45ddabe6283b9fec.rmeta: src/lib.rs

src/lib.rs:
