/root/repo/target/debug/deps/charllm_thermal-f22e6968e4419179.d: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs Cargo.toml

/root/repo/target/debug/deps/libcharllm_thermal-f22e6968e4419179.rmeta: crates/thermal/src/lib.rs crates/thermal/src/governor.rs crates/thermal/src/gpu_state.rs crates/thermal/src/power.rs crates/thermal/src/rc.rs crates/thermal/src/variability.rs Cargo.toml

crates/thermal/src/lib.rs:
crates/thermal/src/governor.rs:
crates/thermal/src/gpu_state.rs:
crates/thermal/src/power.rs:
crates/thermal/src/rc.rs:
crates/thermal/src/variability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
