/root/repo/target/release/deps/fig03-ba21a996db8cc57f.d: crates/bench/benches/fig03.rs

/root/repo/target/release/deps/fig03-ba21a996db8cc57f: crates/bench/benches/fig03.rs

crates/bench/benches/fig03.rs:
