/root/repo/target/release/examples/verify_probe_tmp-2ed8d773963a34b2.d: examples/verify_probe_tmp.rs

/root/repo/target/release/examples/verify_probe_tmp-2ed8d773963a34b2: examples/verify_probe_tmp.rs

examples/verify_probe_tmp.rs:
