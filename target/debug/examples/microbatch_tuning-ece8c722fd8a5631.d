/root/repo/target/debug/examples/microbatch_tuning-ece8c722fd8a5631.d: examples/microbatch_tuning.rs

/root/repo/target/debug/examples/microbatch_tuning-ece8c722fd8a5631: examples/microbatch_tuning.rs

examples/microbatch_tuning.rs:
