//! Phase attribution: where each rank's wall time and joules went.
//!
//! Folds a [`SpanRecorder`]'s span streams into the paper's per-phase
//! taxonomy (Figs. 4, 6–7): every instant of every rank's timeline lands in
//! exactly one [`Phase`] bucket, so per-rank phase seconds sum to the run's
//! makespan, and each GPU's measured energy is split across the same
//! buckets by integrating the control-period power windows over the phase
//! intervals — so per-rank phase joules sum to that GPU's measured energy.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::spans::{SpanKind, SpanRecorder};
use charllm_trace::KernelClass;

/// Wall-time/energy attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Running a compute kernel with no communication touching the GPU.
    Compute,
    /// Running a compute kernel while flows touch the GPU: communication
    /// hidden under compute (the overlap the paper's Fig. 11 elongates).
    OverlappedComm,
    /// Blocked on a non-P2P collective (TP/DP/EP exposed communication).
    ExposedComm,
    /// Blocked on pipeline P2P traffic (bubble in the 1F1B schedule).
    PipelineBubble,
    /// Timeline not covered by any span: before the collective a rank was
    /// woken from is rescheduled, or after the rank finished while others
    /// still run.
    Stall,
}

impl Phase {
    /// All phases in display order.
    pub fn all() -> [Phase; 5] {
        [
            Phase::Compute,
            Phase::OverlappedComm,
            Phase::ExposedComm,
            Phase::PipelineBubble,
            Phase::Stall,
        ]
    }

    fn idx(self) -> usize {
        match self {
            Phase::Compute => 0,
            Phase::OverlappedComm => 1,
            Phase::ExposedComm => 2,
            Phase::PipelineBubble => 3,
            Phase::Stall => 4,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Compute => "compute",
            Phase::OverlappedComm => "overlapped-comm",
            Phase::ExposedComm => "exposed-comm",
            Phase::PipelineBubble => "pipeline-bubble",
            Phase::Stall => "stall",
        };
        f.write_str(s)
    }
}

/// Seconds and joules per [`Phase`] for one rank (or aggregated).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    seconds: [f64; 5],
    energy_j: [f64; 5],
}

impl PhaseBreakdown {
    /// Add wall time to a phase.
    pub fn add_seconds(&mut self, phase: Phase, s: f64) {
        self.seconds[phase.idx()] += s;
    }

    /// Add energy to a phase.
    pub fn add_energy(&mut self, phase: Phase, j: f64) {
        self.energy_j[phase.idx()] += j;
    }

    /// Wall time of a phase, seconds.
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.seconds[phase.idx()]
    }

    /// Energy of a phase, joules.
    pub fn energy_j(&self, phase: Phase) -> f64 {
        self.energy_j[phase.idx()]
    }

    /// Total wall time across phases, seconds.
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Total energy across phases, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Element-wise sum.
    #[must_use]
    pub fn merged(&self, other: &PhaseBreakdown) -> PhaseBreakdown {
        let mut out = self.clone();
        for i in 0..5 {
            out.seconds[i] += other.seconds[i];
            out.energy_j[i] += other.energy_j[i];
        }
        out
    }
}

/// Aggregate busy time of one span label (kernel kind or collective).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanTotal {
    /// Label (`"Gemm"`, `"AllReduce[c12]"`, ...).
    pub label: String,
    /// Total busy seconds across all ranks.
    pub seconds: f64,
    /// Number of spans.
    pub count: u64,
}

/// The folded observability output attached to a profiled `SimResult`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Per-rank phase breakdown over the whole run (seconds tile
    /// `[0, makespan]`; joules tile the GPU's measured energy).
    pub rank_phases: Vec<PhaseBreakdown>,
    /// Per-iteration, per-rank phase breakdown (`[iteration][rank]`).
    pub iteration_phases: Vec<Vec<PhaseBreakdown>>,
    /// Span totals sorted by descending busy time (report takes top-k).
    pub top_spans: Vec<SpanTotal>,
    /// Run makespan the per-rank seconds tile, seconds.
    pub makespan_s: f64,
}

impl Profile {
    /// Sum of all ranks' breakdowns.
    pub fn cluster_total(&self) -> PhaseBreakdown {
        self.rank_phases
            .iter()
            .fold(PhaseBreakdown::default(), |acc, b| acc.merged(b))
    }

    /// Number of ranks profiled.
    pub fn world(&self) -> usize {
        self.rank_phases.len()
    }
}

/// One attributed interval on a rank's timeline.
#[derive(Debug, Clone, Copy)]
struct Interval {
    t0: f64,
    t1: f64,
    iteration: u32,
    phase: Phase,
}

/// Fold a recorder's streams into a [`Profile`].
///
/// `end_time_s` is the run makespan (`SimResult::sim_time_s`); every rank's
/// timeline is tiled over `[0, end_time_s]`. `iterations` sizes the
/// per-iteration tables (span iterations are clamped into range).
pub fn attribute(rec: &SpanRecorder, end_time_s: f64, iterations: usize) -> Profile {
    let world = rec.world();
    let iterations = iterations.max(1);
    let busy = comm_busy_by_gpu(rec, end_time_s);

    let mut rank_phases = vec![PhaseBreakdown::default(); world];
    let mut iteration_phases = vec![vec![PhaseBreakdown::default(); world]; iterations];
    // Keyed by a compact packed id rather than the label String so the
    // per-span hot loop allocates nothing; one representative `SpanKind` is
    // kept per key and its label materialized once at the end.
    let mut totals: HashMap<u64, (f64, u64, SpanKind)> = HashMap::new();

    for rank in 0..world {
        let empty = Vec::new();
        let gpu_busy = rec
            .gpu_of_rank(rank)
            .and_then(|g| busy.get(&g))
            .unwrap_or(&empty);
        let intervals = rank_intervals(rec, rank, end_time_s, gpu_busy, iterations);

        for span in rec.spans(rank) {
            let key = match span.kind {
                SpanKind::Compute { kind } => kind as u64,
                SpanKind::Collective { coll, .. } => (1 << 32) | u64::from(coll),
            };
            let e = totals.entry(key).or_insert((0.0, 0, span.kind));
            e.0 += span.dur_s();
            e.1 += 1;
        }
        for iv in &intervals {
            let dur = iv.t1 - iv.t0;
            rank_phases[rank].add_seconds(iv.phase, dur);
            iteration_phases[iv.iteration as usize][rank].add_seconds(iv.phase, dur);
        }
        attribute_energy(
            rec,
            rank,
            &intervals,
            &mut rank_phases,
            &mut iteration_phases,
        );
    }

    let mut top_spans: Vec<SpanTotal> = totals
        .into_values()
        .map(|(seconds, count, kind)| SpanTotal {
            label: kind.label(),
            seconds,
            count,
        })
        .collect();
    top_spans.sort_by(|a, b| b.seconds.total_cmp(&a.seconds).then(a.label.cmp(&b.label)));

    Profile {
        rank_phases,
        iteration_phases,
        top_spans,
        makespan_s: end_time_s,
    }
}

/// Merged intervals during which ≥1 flow touches each GPU (as src or dst).
fn comm_busy_by_gpu(rec: &SpanRecorder, end_time_s: f64) -> HashMap<u32, Vec<(f64, f64)>> {
    let mut events: HashMap<u32, Vec<(f64, i32)>> = HashMap::new();
    let mut push = |gpu: u32, t0: f64, t1: f64| {
        let e = events.entry(gpu).or_default();
        e.push((t0, 1));
        e.push((t1, -1));
    };
    for f in rec.flows() {
        push(f.src_gpu, f.t0_s, f.t1_s);
        if f.dst_gpu != f.src_gpu {
            push(f.dst_gpu, f.t0_s, f.t1_s);
        }
    }
    for f in rec.open_flows() {
        push(f.src_gpu, f.t0_s, end_time_s);
        if f.dst_gpu != f.src_gpu {
            push(f.dst_gpu, f.t0_s, end_time_s);
        }
    }
    let mut busy = HashMap::new();
    for (gpu, mut ev) in events {
        ev.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut depth = 0i32;
        let mut start = 0.0f64;
        for (t, d) in ev {
            if depth == 0 && d > 0 {
                start = t;
            }
            depth += d;
            if depth == 0 && d < 0 && t > start {
                match out.last_mut() {
                    // Merge abutting intervals so the list stays minimal.
                    Some(last) if start <= last.1 => last.1 = last.1.max(t),
                    _ => out.push((start, t)),
                }
            }
        }
        busy.insert(gpu, out);
    }
    busy
}

/// Tile one rank's `[0, end_time_s]` with phase intervals: spans become
/// compute/comm phases (compute split against the GPU's comm-busy windows),
/// uncovered time becomes [`Phase::Stall`].
fn rank_intervals(
    rec: &SpanRecorder,
    rank: usize,
    end_time_s: f64,
    gpu_busy: &[(f64, f64)],
    iterations: usize,
) -> Vec<Interval> {
    let max_iter = (iterations - 1) as u32;
    let mut out = Vec::new();
    let mut cursor = 0.0f64;
    let mut busy_ptr = 0usize;
    let mut last_iter = 0u32;
    for span in rec.spans(rank) {
        let iter = span.iteration.min(max_iter);
        last_iter = iter;
        let t0 = span.t0_s.max(cursor);
        let t1 = span.t1_s.max(t0);
        if t0 > cursor {
            out.push(Interval {
                t0: cursor,
                t1: t0,
                iteration: iter,
                phase: Phase::Stall,
            });
        }
        match span.kind {
            SpanKind::Collective { class, .. } => {
                let phase = if class == KernelClass::SendRecv {
                    Phase::PipelineBubble
                } else {
                    Phase::ExposedComm
                };
                out.push(Interval {
                    t0,
                    t1,
                    iteration: iter,
                    phase,
                });
            }
            SpanKind::Compute { .. } => {
                split_compute(t0, t1, iter, gpu_busy, &mut busy_ptr, &mut out);
            }
        }
        cursor = t1;
    }
    if end_time_s > cursor {
        out.push(Interval {
            t0: cursor,
            t1: end_time_s,
            iteration: last_iter,
            phase: Phase::Stall,
        });
    }
    out
}

/// Split a compute span `[a, b]` into [`Phase::Compute`] and
/// [`Phase::OverlappedComm`] parts against the GPU's comm-busy intervals.
/// `busy_ptr` advances monotonically across a rank's (time-ordered) spans.
fn split_compute(
    a: f64,
    b: f64,
    iteration: u32,
    busy: &[(f64, f64)],
    busy_ptr: &mut usize,
    out: &mut Vec<Interval>,
) {
    while *busy_ptr < busy.len() && busy[*busy_ptr].1 <= a {
        *busy_ptr += 1;
    }
    let mut cursor = a;
    let mut j = *busy_ptr;
    while j < busy.len() && busy[j].0 < b {
        let (b0, b1) = busy[j];
        let o0 = b0.max(cursor);
        let o1 = b1.min(b);
        if o0 > cursor {
            out.push(Interval {
                t0: cursor,
                t1: o0,
                iteration,
                phase: Phase::Compute,
            });
        }
        if o1 > o0 {
            out.push(Interval {
                t0: o0,
                t1: o1,
                iteration,
                phase: Phase::OverlappedComm,
            });
            cursor = o1;
        }
        if b1 >= b {
            break;
        }
        j += 1;
    }
    if b > cursor {
        out.push(Interval {
            t0: cursor,
            t1: b,
            iteration,
            phase: Phase::Compute,
        });
    }
}

/// Split each measuring power window of the rank's GPU across the rank's
/// phase intervals by time overlap. Because the intervals tile `[0, end]`,
/// the split conserves `power × period` per window exactly.
fn attribute_energy(
    rec: &SpanRecorder,
    rank: usize,
    intervals: &[Interval],
    rank_phases: &mut [PhaseBreakdown],
    iteration_phases: &mut [Vec<PhaseBreakdown>],
) {
    let Some(gpu) = rec.gpu_of_rank(rank) else {
        return;
    };
    let mut ptr = 0usize;
    for tick in rec.power_ticks() {
        if tick.gpu != gpu || !tick.measuring {
            continue;
        }
        let w0 = (tick.t_s - tick.period_s).max(0.0);
        let w1 = tick.t_s;
        while ptr < intervals.len() && intervals[ptr].t1 <= w0 {
            ptr += 1;
        }
        let mut j = ptr;
        while j < intervals.len() && intervals[j].t0 < w1 {
            let iv = intervals[j];
            let ov = iv.t1.min(w1) - iv.t0.max(w0);
            if ov > 0.0 {
                let e = tick.power_w * ov;
                rank_phases[rank].add_energy(iv.phase, e);
                iteration_phases[iv.iteration as usize][rank].add_energy(iv.phase, e);
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_trace::ComputeKind;

    fn compute(kind: ComputeKind) -> SpanKind {
        SpanKind::Compute { kind }
    }

    #[test]
    fn phases_tile_the_makespan() {
        let mut r = SpanRecorder::new();
        r.begin_task(0, 0, 0, compute(ComputeKind::Gemm), 0.0);
        r.end_task(0, 4.0);
        r.begin_task(
            0,
            0,
            0,
            SpanKind::Collective {
                coll: 0,
                class: KernelClass::AllReduce,
            },
            4.0,
        );
        r.end_task(0, 6.0);
        let p = attribute(&r, 10.0, 1);
        let b = &p.rank_phases[0];
        assert!((b.seconds(Phase::Compute) - 4.0).abs() < 1e-12);
        assert!((b.seconds(Phase::ExposedComm) - 2.0).abs() < 1e-12);
        assert!((b.seconds(Phase::Stall) - 4.0).abs() < 1e-12);
        assert!((b.total_seconds() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn compute_splits_against_comm_busy_windows() {
        let mut r = SpanRecorder::new();
        r.begin_task(0, 0, 0, compute(ComputeKind::Gemm), 0.0);
        r.end_task(0, 10.0);
        // Flow touches gpu 0 during [2, 5].
        r.flow_launch(0, 0, 0, 0, 1, 2.0);
        r.flow_retire(0, 5.0);
        let p = attribute(&r, 10.0, 1);
        let b = &p.rank_phases[0];
        assert!((b.seconds(Phase::OverlappedComm) - 3.0).abs() < 1e-12);
        assert!((b.seconds(Phase::Compute) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn sendrecv_waits_count_as_pipeline_bubble() {
        let mut r = SpanRecorder::new();
        r.begin_task(
            0,
            0,
            1,
            SpanKind::Collective {
                coll: 3,
                class: KernelClass::SendRecv,
            },
            0.0,
        );
        r.end_task(0, 2.0);
        let p = attribute(&r, 2.0, 2);
        assert!((p.rank_phases[0].seconds(Phase::PipelineBubble) - 2.0).abs() < 1e-12);
        // Attributed to iteration 1.
        assert!((p.iteration_phases[1][0].seconds(Phase::PipelineBubble) - 2.0).abs() < 1e-12);
        assert_eq!(p.iteration_phases[0][0].total_seconds(), 0.0);
    }

    #[test]
    fn energy_conserves_measured_windows() {
        let mut r = SpanRecorder::new();
        r.begin_task(0, 0, 0, compute(ComputeKind::Gemm), 0.0);
        r.end_task(0, 6.0);
        // Three 2-second windows at 100 W; the middle one not measuring.
        r.power_tick(0, 2.0, 100.0, 2.0, true);
        r.power_tick(0, 4.0, 100.0, 2.0, false);
        r.power_tick(0, 6.0, 100.0, 2.0, true);
        let p = attribute(&r, 6.0, 1);
        let b = &p.rank_phases[0];
        assert!((b.total_energy_j() - 400.0).abs() < 1e-9);
        assert!((b.energy_j(Phase::Compute) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn top_spans_sorted_by_busy_time() {
        let mut r = SpanRecorder::new();
        r.begin_task(0, 0, 0, compute(ComputeKind::Gemm), 0.0);
        r.end_task(0, 5.0);
        r.begin_task(0, 0, 0, compute(ComputeKind::Attention), 5.0);
        r.end_task(0, 6.0);
        r.begin_task(0, 0, 0, compute(ComputeKind::Gemm), 6.0);
        r.end_task(0, 7.0);
        let p = attribute(&r, 7.0, 1);
        assert_eq!(p.top_spans[0].label, "Gemm");
        assert_eq!(p.top_spans[0].count, 2);
        assert!((p.top_spans[0].seconds - 6.0).abs() < 1e-12);
        assert_eq!(p.top_spans[1].label, "Attention");
    }
}
