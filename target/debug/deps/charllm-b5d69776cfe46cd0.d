/root/repo/target/debug/deps/charllm-b5d69776cfe46cd0.d: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libcharllm-b5d69776cfe46cd0.rlib: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

/root/repo/target/debug/deps/libcharllm-b5d69776cfe46cd0.rmeta: crates/core/src/lib.rs crates/core/src/error.rs crates/core/src/executor.rs crates/core/src/experiment.rs crates/core/src/insights.rs crates/core/src/presets.rs crates/core/src/report.rs crates/core/src/search.rs crates/core/src/sweep.rs

crates/core/src/lib.rs:
crates/core/src/error.rs:
crates/core/src/executor.rs:
crates/core/src/experiment.rs:
crates/core/src/insights.rs:
crates/core/src/presets.rs:
crates/core/src/report.rs:
crates/core/src/search.rs:
crates/core/src/sweep.rs:
