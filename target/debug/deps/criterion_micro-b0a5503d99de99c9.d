/root/repo/target/debug/deps/criterion_micro-b0a5503d99de99c9.d: crates/bench/benches/criterion_micro.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_micro-b0a5503d99de99c9.rmeta: crates/bench/benches/criterion_micro.rs Cargo.toml

crates/bench/benches/criterion_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
