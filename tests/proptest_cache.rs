//! Property-based tests for the sweep cache (`charllm::SimCache`).
//!
//! The cache is keyed by content — the canonical serialization of every
//! input lowering consumes. Two properties keep it sound:
//!
//! - **No collisions**: any two configurations that differ in any key
//!   input (job knobs, parallelism, schedule, device hints, inference
//!   shape) must map to distinct keys. A collision would silently hand one
//!   configuration another's trace.
//! - **Hits are transparent**: a cache hit returns a trace that serializes
//!   byte-identically to the one a fresh lowering would produce, so
//!   memoized sweeps report exactly what uncached sweeps report.

use proptest::prelude::*;

use charllm::SimCache;
use charllm_hw::GpuModel;
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, StagePartition};
use charllm_trace::{lower_train, DeviceHints, InferenceConfig};

/// One point in key space: every degree of freedom the key must separate.
#[derive(Debug, Clone, PartialEq)]
struct KeyInputs {
    global_batch: usize,
    microbatch: usize,
    recompute: bool,
    cc_overlap: bool,
    tp: usize,
    pp: usize,
    interleaved: bool,
    gpu: GpuModel,
    inference: Option<InferenceConfig>,
}

fn arb_inputs() -> impl Strategy<Value = KeyInputs> {
    (
        (
            prop_oneof![Just(8usize), Just(16), Just(32)],
            prop_oneof![Just(1usize), Just(2), Just(4)],
            any::<bool>(),
            any::<bool>(),
        ),
        (
            prop_oneof![Just(1usize), Just(2), Just(4)],
            prop_oneof![Just(1usize), Just(2), Just(4)],
            any::<bool>(),
            prop_oneof![Just(GpuModel::H200), Just(GpuModel::H100)],
            prop_oneof![
                Just(None),
                Just(Some(InferenceConfig {
                    batch: 1,
                    prompt_len: 128,
                    decode_tokens: 8,
                })),
                Just(Some(InferenceConfig {
                    batch: 2,
                    prompt_len: 128,
                    decode_tokens: 8,
                })),
            ],
        ),
    )
        .prop_map(
            |(
                (global_batch, microbatch, recompute, cc_overlap),
                (tp, pp, interleaved, gpu, inference),
            )| KeyInputs {
                global_batch,
                microbatch,
                recompute,
                cc_overlap,
                tp,
                pp,
                interleaved,
                gpu,
                inference,
            },
        )
}

/// Materialize the typed lowering inputs and derive the cache key.
fn key_of(k: &KeyInputs) -> String {
    let job = TrainJob::pretrain(models::gpt3_13b())
        .with_global_batch(k.global_batch)
        .with_microbatch(k.microbatch)
        .with_recompute(k.recompute)
        .with_cc_overlap(k.cc_overlap);
    let spec = ParallelismSpec::infer_dp(k.tp, k.pp, 1, 32, false).unwrap();
    let schedule = if k.interleaved {
        PipelineSchedule::Interleaved(2)
    } else {
        PipelineSchedule::OneFOneB
    };
    let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
    let hints = DeviceHints::for_spec(&k.gpu.spec());
    SimCache::lowered_key(
        &job,
        &spec,
        schedule,
        &partition,
        &hints,
        k.inference.as_ref(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn distinct_configurations_never_collide(a in arb_inputs(), b in arb_inputs()) {
        prop_assume!(a != b);
        prop_assert!(key_of(&a) != key_of(&b), "distinct inputs {:?} vs {:?} collided", a, b);
    }

    #[test]
    fn same_configuration_keys_identically(a in arb_inputs()) {
        prop_assert_eq!(key_of(&a), key_of(&a.clone()));
    }
}

proptest! {
    // Each case lowers a real trace; keep the count moderate.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn cache_hits_return_byte_identical_traces(
        tp in prop_oneof![Just(1usize), Just(2), Just(4)],
        pp in prop_oneof![Just(1usize), Just(2)],
        recompute in any::<bool>(),
    ) {
        let job = TrainJob::pretrain(models::gpt3_13b())
            .with_global_batch(8)
            .with_recompute(recompute);
        let spec = ParallelismSpec::infer_dp(tp, pp, 1, 8, false).unwrap();
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        let hints = DeviceHints::for_spec(&GpuModel::H200.spec());
        let key = SimCache::lowered_key(
            &job, &spec, PipelineSchedule::OneFOneB, &partition, &hints, None,
        );
        let build = || {
            lower_train(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)
                .map_err(charllm::CoreError::from)
        };

        let fresh = build().unwrap();
        let cache = SimCache::new();
        let (miss, hit) = cache.lowered(&key, build).unwrap();
        prop_assert!(!hit.is_hit());
        let (served, hit) = cache
            .lowered(&key, || panic!("hit must not rebuild"))
            .unwrap();
        prop_assert!(hit.is_hit());
        let fresh = serde_json::to_string(&fresh.trace).unwrap();
        prop_assert_eq!(&serde_json::to_string(&miss.trace).unwrap(), &fresh);
        prop_assert_eq!(
            &serde_json::to_string(&served.trace).unwrap(),
            &fresh,
            "a cache hit must serve the exact trace a fresh lowering builds"
        );
    }
}
