//! Quickstart: simulate one training configuration and print the telemetry
//! summary the paper's tooling would report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use charllm::insights::Direction;
use charllm::prelude::*;
use charllm_trace::KernelClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // GPT3-175B on the paper's 32xH200 scale-up cluster with the TP8-PP4
    // strategy (DP fills nothing: 8*4 = 32).
    let cluster = hgx_h200_cluster();
    let job = TrainJob::pretrain(gpt3_175b()).with_global_batch(32);

    println!("== {} on {} ==", job.arch.name, cluster.name());
    let report = Experiment::builder()
        .cluster(cluster)
        .job(job)
        .parallelism("TP8-PP4")?
        .run()?;

    println!("{}", report.summary_line());
    println!();
    println!("step time        : {:>10.2} s", report.step_time_s);
    println!("throughput       : {:>10.0} tokens/s", report.tokens_per_s);
    println!(
        "energy efficiency: {:>10.2} tokens/J",
        report.tokens_per_joule
    );
    println!(
        "mean / peak power: {:>6.0} W / {:>6.0} W",
        report.mean_power_w, report.peak_power_w
    );
    println!(
        "mean / peak temp : {:>6.1} C / {:>6.1} C",
        report.mean_temp_c, report.peak_temp_c
    );
    println!(
        "front vs rear    : {:>6.1} C vs {:>6.1} C ({:+.1}% gap, {})",
        report.front_temp_c,
        report.rear_temp_c,
        report.thermal_gap() * 100.0,
        Direction::of(report.thermal_gap()).arrow(),
    );
    println!("mean clock       : {:>10.0} MHz", report.mean_freq_mhz);
    println!(
        "throttle ratio   : {:>9.1} % (worst {:.1} %)",
        report.mean_throttle * 100.0,
        report.max_throttle * 100.0
    );

    println!("\nPer-kernel time (mean across ranks, one step):");
    let mean = report.mean_kernel_time();
    for class in KernelClass::all() {
        let t = mean.get(class);
        if t > 0.0 {
            println!("  {class:<14} {t:>8.3} s");
        }
    }

    println!("\nPer-GPU traffic (first node):");
    for gpu in 0..8 {
        println!(
            "  gpu{gpu}: fabric {:>8.2} GB   pcie {:>7.2} GB",
            report.sim.traffic.fabric(gpu) / 1e9,
            report.sim.traffic.pcie(gpu) / 1e9
        );
    }
    Ok(())
}
