//! DVFS governor: boost/throttle behaviour of the GPU clock.
//!
//! The governor reproduces the mechanisms the paper measures as "clock
//! throttling" (Figs. 17b, 18b, 20): the clock boosts toward maximum when
//! busy, steps down when the junction temperature exceeds the throttle
//! threshold (harder beyond the slowdown threshold), is capped so board
//! power stays within TDP, and recovers with hysteresis once the device
//! cools.

use serde::{Deserialize, Serialize};

use charllm_hw::GpuSpec;

use crate::power::PowerModel;

/// Governor tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// Clock step when recovering, MHz per control period.
    pub step_up_mhz: f64,
    /// Clock step under thermal throttle, MHz per control period.
    pub step_down_mhz: f64,
    /// Extra multiplier on the step beyond the slowdown temperature.
    pub slowdown_multiplier: f64,
    /// Temperature margin below the throttle threshold required before the
    /// clock recovers, °C.
    pub hysteresis_c: f64,
    /// Board power cap, watts (TDP unless overridden).
    pub power_cap_w: f64,
}

impl GovernorConfig {
    /// Defaults for a device spec (power cap = TDP).
    pub fn for_spec(spec: &GpuSpec) -> Self {
        GovernorConfig {
            step_up_mhz: 45.0,
            step_down_mhz: 75.0,
            slowdown_multiplier: 3.0,
            hysteresis_c: 3.0,
            power_cap_w: spec.tdp_w,
        }
    }
}

/// Why the governor held the clock below boost during a period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ThrottleReason {
    /// No throttling: at (or recovering toward) boost.
    #[default]
    None,
    /// Junction temperature above the throttle threshold.
    Thermal,
    /// Board power would exceed the cap.
    Power,
    /// Device idle (clocks dropped to save power).
    Idle,
}

/// Per-GPU DVFS governor state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    freq_mhz: f64,
    cfg: GovernorConfig,
    throttled_periods: u64,
    thermal_throttled_periods: u64,
    total_busy_periods: u64,
    /// What last dropped the clock below boost. Residual below-boost periods
    /// (clock recovering, nothing actively stepping it down) are attributed
    /// to this cause rather than blindly to `Thermal`.
    cause: ThrottleReason,
}

impl DvfsGovernor {
    /// A governor starting at boost clock.
    pub fn new(spec: &GpuSpec, cfg: GovernorConfig) -> Self {
        DvfsGovernor {
            freq_mhz: spec.boost_clock_mhz,
            cfg,
            throttled_periods: 0,
            thermal_throttled_periods: 0,
            total_busy_periods: 0,
            cause: ThrottleReason::None,
        }
    }

    /// Current clock, MHz.
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Fraction of busy control periods spent throttled (any reason).
    pub fn throttle_ratio(&self) -> f64 {
        if self.total_busy_periods == 0 {
            0.0
        } else {
            self.throttled_periods as f64 / self.total_busy_periods as f64
        }
    }

    /// Fraction of busy control periods spent *thermally* throttled.
    pub fn thermal_throttle_ratio(&self) -> f64 {
        if self.total_busy_periods == 0 {
            0.0
        } else {
            self.thermal_throttled_periods as f64 / self.total_busy_periods as f64
        }
    }

    /// Advance one control period: adjust the clock given junction
    /// temperature, activity and the power model. Returns the reason the
    /// clock is (still) below boost, if any.
    pub fn update(
        &mut self,
        spec: &GpuSpec,
        power: &PowerModel,
        temp_c: f64,
        activity: f64,
        efficiency: f64,
    ) -> ThrottleReason {
        if activity <= 0.0 {
            // Idle: drop toward base clock (don't count as throttling).
            self.freq_mhz = (self.freq_mhz - self.cfg.step_down_mhz).max(spec.base_clock_mhz);
            self.cause = ThrottleReason::Idle;
            return ThrottleReason::Idle;
        }
        self.total_busy_periods += 1;

        // Power cap: the frequency the cap allows at this activity.
        let cap_ratio = power.freq_ratio_for_cap(activity, self.cfg.power_cap_w, efficiency);
        let cap_mhz = (spec.boost_clock_mhz * cap_ratio).max(spec.min_clock_mhz);

        let in_thermal_band = temp_c > spec.throttle_temp_c - self.cfg.hysteresis_c;
        let thermally_stepped = temp_c >= spec.throttle_temp_c;
        if temp_c >= spec.slowdown_temp_c {
            self.freq_mhz -= self.cfg.step_down_mhz * self.cfg.slowdown_multiplier;
        } else if thermally_stepped {
            self.freq_mhz -= self.cfg.step_down_mhz;
        } else if !in_thermal_band {
            self.freq_mhz += self.cfg.step_up_mhz;
        }
        let power_capped = self.freq_mhz > cap_mhz && cap_ratio < 1.0;
        if self.freq_mhz > cap_mhz {
            self.freq_mhz = cap_mhz;
        }
        self.freq_mhz = self
            .freq_mhz
            .clamp(spec.min_clock_mhz, spec.boost_clock_mhz);

        // Throttle residency: what NVML reports is "clock held below boost
        // while busy", not the instants the governor stepped down. An actual
        // thermal step this period takes precedence; otherwise a binding
        // power cap does (merely being inside the hysteresis band is a hold,
        // not a thermal event); otherwise the residual hold is attributed to
        // whatever originally dropped the clock — an idle drop recovering
        // toward boost is not throttling at all.
        let held_below_boost = self.freq_mhz < 0.985 * spec.boost_clock_mhz;
        let reason = if !held_below_boost {
            self.cause = ThrottleReason::None;
            ThrottleReason::None
        } else if thermally_stepped {
            self.cause = ThrottleReason::Thermal;
            ThrottleReason::Thermal
        } else if power_capped {
            self.cause = ThrottleReason::Power;
            ThrottleReason::Power
        } else {
            match self.cause {
                ThrottleReason::Thermal => ThrottleReason::Thermal,
                ThrottleReason::Power => ThrottleReason::Power,
                ThrottleReason::Idle | ThrottleReason::None => ThrottleReason::None,
            }
        };
        match reason {
            ThrottleReason::Thermal => {
                self.throttled_periods += 1;
                self.thermal_throttled_periods += 1;
            }
            ThrottleReason::Power => self.throttled_periods += 1,
            _ => {}
        }
        reason
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::GpuModel;

    fn setup() -> (GpuSpec, PowerModel, DvfsGovernor) {
        let spec = GpuModel::H200.spec();
        let power = PowerModel::for_spec(&spec);
        let cfg = GovernorConfig::for_spec(&spec);
        let gov = DvfsGovernor::new(&spec, cfg);
        (spec, power, gov)
    }

    #[test]
    fn cool_and_busy_stays_at_boost() {
        let (spec, power, mut gov) = setup();
        for _ in 0..50 {
            let r = gov.update(&spec, &power, 60.0, 0.8, 1.0);
            assert_eq!(r, ThrottleReason::None);
        }
        assert_eq!(gov.freq_mhz(), spec.boost_clock_mhz);
        assert_eq!(gov.throttle_ratio(), 0.0);
    }

    #[test]
    fn hot_gpu_throttles_down() {
        let (spec, power, mut gov) = setup();
        for _ in 0..20 {
            let r = gov.update(&spec, &power, 86.0, 1.0, 1.0);
            assert_eq!(r, ThrottleReason::Thermal);
        }
        assert!(gov.freq_mhz() < spec.boost_clock_mhz - 500.0);
        assert!(gov.throttle_ratio() > 0.99);
        assert!(gov.thermal_throttle_ratio() > 0.99);
    }

    #[test]
    fn slowdown_temperature_throttles_faster() {
        let (spec, power, _) = setup();
        let mut mild = DvfsGovernor::new(&spec, GovernorConfig::for_spec(&spec));
        let mut severe = DvfsGovernor::new(&spec, GovernorConfig::for_spec(&spec));
        for _ in 0..5 {
            mild.update(&spec, &power, 84.0, 1.0, 1.0);
            severe.update(&spec, &power, 89.0, 1.0, 1.0);
        }
        assert!(severe.freq_mhz() < mild.freq_mhz());
    }

    #[test]
    fn recovers_after_cooling_with_hysteresis() {
        let (spec, power, mut gov) = setup();
        for _ in 0..20 {
            gov.update(&spec, &power, 86.0, 1.0, 1.0);
        }
        let throttled = gov.freq_mhz();
        // Inside the hysteresis band: hold.
        gov.update(&spec, &power, 81.5, 1.0, 1.0);
        assert_eq!(gov.freq_mhz(), throttled);
        // Below the band: recover.
        for _ in 0..200 {
            gov.update(&spec, &power, 70.0, 0.5, 1.0);
        }
        assert_eq!(gov.freq_mhz(), spec.boost_clock_mhz);
    }

    #[test]
    fn power_cap_limits_clock_under_heavy_activity() {
        let (spec, power, _) = setup();
        let mut cfg = GovernorConfig::for_spec(&spec);
        cfg.power_cap_w = 500.0; // node-level cap scenario
        let mut gov = DvfsGovernor::new(&spec, cfg);
        let r = gov.update(&spec, &power, 60.0, 1.0, 1.0);
        assert_eq!(r, ThrottleReason::Power);
        let p = power.power_w(1.0, gov.freq_mhz() / spec.boost_clock_mhz, 1.0);
        assert!(p <= 501.0, "power after cap = {p}");
    }

    #[test]
    fn clock_floors_at_min() {
        let (spec, power, mut gov) = setup();
        for _ in 0..1000 {
            gov.update(&spec, &power, 95.0, 1.0, 1.0);
        }
        assert_eq!(gov.freq_mhz(), spec.min_clock_mhz);
    }

    #[test]
    fn idle_drop_then_busy_recovery_is_not_thermal() {
        // Regression: an idle period drops the clock toward base; the busy
        // periods that follow (cool device, clock stepping back up) used to
        // be misattributed to `Thermal` just because the clock was still
        // below boost.
        let (spec, power, mut gov) = setup();
        for _ in 0..10 {
            assert_eq!(
                gov.update(&spec, &power, 40.0, 0.0, 1.0),
                ThrottleReason::Idle
            );
        }
        assert!(gov.freq_mhz() < 0.985 * spec.boost_clock_mhz);
        while gov.freq_mhz() < spec.boost_clock_mhz {
            let r = gov.update(&spec, &power, 60.0, 0.8, 1.0);
            assert_eq!(r, ThrottleReason::None, "residual idle recovery");
        }
        assert_eq!(gov.thermal_throttle_ratio(), 0.0);
        assert_eq!(gov.throttle_ratio(), 0.0);
    }

    #[test]
    fn power_cap_inside_hysteresis_band_reports_power() {
        // Regression: with the cap binding and the temperature inside the
        // hysteresis band but *below* the throttle threshold (81.5 °C vs
        // 83 °C for H200), the reason is the power cap, not thermal.
        let (spec, power, _) = setup();
        let mut cfg = GovernorConfig::for_spec(&spec);
        cfg.power_cap_w = 500.0;
        let mut gov = DvfsGovernor::new(&spec, cfg);
        let warm = spec.throttle_temp_c - cfg.hysteresis_c / 2.0;
        for _ in 0..20 {
            let r = gov.update(&spec, &power, warm, 1.0, 1.0);
            assert_eq!(r, ThrottleReason::Power);
        }
        assert_eq!(gov.thermal_throttle_ratio(), 0.0);
        assert_eq!(gov.throttle_ratio(), 1.0);
    }

    #[test]
    fn residual_after_thermal_event_stays_thermal() {
        // The in-band hold after a genuine thermal event still reads as
        // thermal residency (matches NVML's sustained report).
        let (spec, power, mut gov) = setup();
        for _ in 0..20 {
            gov.update(&spec, &power, 86.0, 1.0, 1.0);
        }
        let r = gov.update(&spec, &power, 81.5, 1.0, 1.0);
        assert_eq!(r, ThrottleReason::Thermal);
        // Below the band, recovering: the cause is still the thermal event.
        let r = gov.update(&spec, &power, 70.0, 1.0, 1.0);
        assert_eq!(r, ThrottleReason::Thermal);
    }

    #[test]
    fn idle_periods_not_counted_as_throttling() {
        let (spec, power, mut gov) = setup();
        for _ in 0..10 {
            let r = gov.update(&spec, &power, 40.0, 0.0, 1.0);
            assert_eq!(r, ThrottleReason::Idle);
        }
        assert_eq!(gov.throttle_ratio(), 0.0);
        assert!(gov.freq_mhz() < spec.boost_clock_mhz);
    }
}
