//! Bounded worker-pool execution of independent experiment points.
//!
//! Sweeps ([`crate::sweep::Sweep`]) and config searches
//! ([`crate::search::search_configs`]) both reduce to the same shape: a
//! list of independent simulation points whose results must come back in
//! the order the points were enumerated, regardless of which worker
//! finished first. [`Executor`] implements that shape once, on
//! [`std::thread::scope`]:
//!
//! - `workers` threads pull point indices from a shared atomic counter
//!   (work stealing by index, so an expensive point never blocks the
//!   queue behind it);
//! - each result is written into the slot matching its point index, so
//!   the output order is deterministic and identical to serial execution;
//! - `workers == 1` (or a single point) short-circuits to a plain loop on
//!   the calling thread — no threads are spawned, which keeps the serial
//!   path exactly serial for debugging and profiling.
//!
//! A panic on any worker propagates to the caller when the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A bounded pool of workers that maps a function over a slice and returns
/// results in input order.
///
/// The worker count is fixed at construction; `0` means "one per available
/// core" (resolved at run time via [`std::thread::available_parallelism`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::auto()
    }
}

impl Executor {
    /// One worker per available core.
    pub fn auto() -> Self {
        Executor { workers: 0 }
    }

    /// Run everything on the calling thread.
    pub fn serial() -> Self {
        Executor { workers: 1 }
    }

    /// A fixed worker count (`0` = one per available core).
    pub fn with_workers(workers: usize) -> Self {
        Executor { workers }
    }

    /// The resolved worker count (auto resolves to the core count, with a
    /// floor of one).
    pub fn workers(&self) -> usize {
        if self.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    /// Workers actually worth spawning for `points` items.
    fn effective_workers(&self, points: usize) -> usize {
        self.workers().min(points).max(1)
    }

    /// Apply `f` to every item, returning results in item order.
    ///
    /// `f` receives the item's index and a reference to the item. With more
    /// than one effective worker, `f` runs concurrently on scoped threads;
    /// results are slotted by index so the output `Vec` is identical (order
    /// and content, for a deterministic `f`) to the serial path.
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run_with_worker(items, |_, i, item| f(i, item))
    }

    /// Like [`Executor::run`], but `f` also receives the index of the pool
    /// worker executing the item (`0..effective_workers`; always `0` on the
    /// serial path). Metrics layers use it to attribute busy time to
    /// per-worker series — it carries no scheduling meaning, and which
    /// worker runs which item is *not* deterministic beyond the serial case.
    pub fn run_with_worker<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &T) -> R + Sync,
    {
        let workers = self.effective_workers(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| f(0, i, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for w in 0..workers {
                let f = &f;
                let next = &next;
                let slots = &slots;
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(w, i, item);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every point index was claimed by exactly one worker")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = Executor::with_workers(4).run(&items, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<u64> = (0..33).collect();
        let f = |_: usize, &x: &u64| -> u64 { x.wrapping_mul(2654435761).rotate_left(13) };
        let serial = Executor::serial().run(&items, f);
        for workers in [2, 3, 8, 64] {
            let parallel = Executor::with_workers(workers).run(&items, f);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn auto_resolves_to_at_least_one_worker() {
        assert!(Executor::auto().workers() >= 1);
        assert_eq!(Executor::serial().workers(), 1);
        assert_eq!(Executor::with_workers(7).workers(), 7);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<i32> = Vec::new();
        assert!(Executor::auto().run(&none, |_, &x| x).is_empty());
        assert_eq!(Executor::with_workers(8).run(&[5], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn worker_index_in_range_and_zero_on_serial_path() {
        let items: Vec<usize> = (0..40).collect();
        let serial = Executor::serial().run_with_worker(&items, |w, i, _| (w, i));
        assert!(serial.iter().all(|&(w, _)| w == 0));
        let parallel = Executor::with_workers(4).run_with_worker(&items, |w, i, _| (w, i));
        assert!(parallel.iter().all(|&(w, _)| w < 4));
        let indices: Vec<usize> = parallel.iter().map(|&(_, i)| i).collect();
        assert_eq!(indices, items);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let items: Vec<usize> = (0..100).collect();
        let visits = AtomicUsize::new(0);
        let out = Executor::with_workers(5).run(&items, |i, _| {
            visits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(visits.load(Ordering::Relaxed), 100);
        assert_eq!(out, items);
    }
}
