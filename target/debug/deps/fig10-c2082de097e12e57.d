/root/repo/target/debug/deps/fig10-c2082de097e12e57.d: crates/bench/benches/fig10.rs

/root/repo/target/debug/deps/fig10-c2082de097e12e57: crates/bench/benches/fig10.rs

crates/bench/benches/fig10.rs:
