//! Figure 13: microbatch-size sweep on the H200 cluster (activation
//! recomputation enabled): efficiency, power, temperature and frequency.

use charllm::prelude::*;
use charllm::sweep::normalized;
use charllm_bench::{banner, bench_job, feasible, report_json, save_json, try_run};

fn main() {
    banner(
        "Figure 13",
        "H200 microbatch sweep (act on): efficiency/power/temp/clock",
    );
    let cluster = hgx_h200_cluster();
    let mut rows = Vec::new();
    for arch in [gpt3_175b(), llama3_70b()] {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:<4} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7}",
            "config", "mb", "eff", "avg W", "peak W", "avg C", "peak C", "MHz"
        );
        let base = bench_job(arch.clone()).with_recompute(true);
        let mut reports = Vec::new();
        for spec in paper_parallelisms(&arch, cluster.num_gpus()) {
            for mb in MICROBATCH_SWEEP {
                let job = base.clone().with_microbatch(mb);
                if job.validate_for_dp(spec.dp).is_err() || !feasible(&job, &spec, &cluster) {
                    continue;
                }
                if let Some(r) = try_run(&cluster, &job, spec) {
                    reports.push(r);
                }
            }
        }
        for (r, eff) in normalized(&reports, |r| r.tokens_per_joule) {
            println!(
                "{:<14} {:<4} {:>7.2} {:>8.0} {:>8.0} {:>8.1} {:>8.1} {:>7.0}",
                r.parallelism,
                r.microbatch,
                eff,
                r.mean_power_w,
                r.peak_power_w,
                r.mean_temp_c,
                r.peak_temp_c,
                r.mean_freq_mhz,
            );
            rows.push(report_json(r));
        }
    }
    save_json("fig13", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: larger microbatches help TP/FSDP-dominated configs\n\
         (coarser communication; TP8-FSDP gains >3x from mb1 to mb4) but hurt\n\
         PP-heavy ones (fewer microbatches deepen pipeline bubbles), while\n\
         peak power and temperature rise with microbatch size regardless."
    );
}
