/root/repo/target/release/deps/charllm_telemetry-d5df108b0b7c5973.d: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/release/deps/libcharllm_telemetry-d5df108b0b7c5973.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

/root/repo/target/release/deps/libcharllm_telemetry-d5df108b0b7c5973.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/aggregate.rs crates/telemetry/src/csv.rs crates/telemetry/src/heatmap.rs crates/telemetry/src/store.rs crates/telemetry/src/timeseries.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/aggregate.rs:
crates/telemetry/src/csv.rs:
crates/telemetry/src/heatmap.rs:
crates/telemetry/src/store.rs:
crates/telemetry/src/timeseries.rs:
