//! Per-GPU telemetry store (the Zeus-equivalent sample sink).

use serde::{Deserialize, Serialize};

use crate::timeseries::TimeSeries;

/// One telemetry sample for one GPU at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSample {
    /// Board power, watts.
    pub power_w: f64,
    /// Junction temperature, °C.
    pub temp_c: f64,
    /// Core clock, MHz.
    pub freq_mhz: f64,
    /// Kernel-activity utilization in `[0, 1]`.
    pub util: f64,
    /// Instantaneous PCIe/NIC throughput attributable to this GPU, GB/s.
    pub pcie_gbps: f64,
}

/// Sampled time series for every GPU in a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryStore {
    power_w: Vec<TimeSeries>,
    temp_c: Vec<TimeSeries>,
    freq_mhz: Vec<TimeSeries>,
    util: Vec<TimeSeries>,
    pcie_gbps: Vec<TimeSeries>,
}

impl TelemetryStore {
    /// A store for `num_gpus` devices.
    pub fn new(num_gpus: usize) -> Self {
        let mk = || vec![TimeSeries::new(); num_gpus];
        TelemetryStore {
            power_w: mk(),
            temp_c: mk(),
            freq_mhz: mk(),
            util: mk(),
            pcie_gbps: mk(),
        }
    }

    /// Number of GPUs tracked.
    pub fn num_gpus(&self) -> usize {
        self.power_w.len()
    }

    /// Record one sample for a GPU.
    ///
    /// # Panics
    ///
    /// Panics if `gpu` is out of range or time is non-monotone for the GPU.
    pub fn record(&mut self, gpu: usize, t_s: f64, sample: GpuSample) {
        self.power_w[gpu].push(t_s, sample.power_w);
        self.temp_c[gpu].push(t_s, sample.temp_c);
        self.freq_mhz[gpu].push(t_s, sample.freq_mhz);
        self.util[gpu].push(t_s, sample.util);
        self.pcie_gbps[gpu].push(t_s, sample.pcie_gbps);
    }

    /// Power series of a GPU.
    pub fn power(&self, gpu: usize) -> &TimeSeries {
        &self.power_w[gpu]
    }

    /// Temperature series of a GPU.
    pub fn temp(&self, gpu: usize) -> &TimeSeries {
        &self.temp_c[gpu]
    }

    /// Clock series of a GPU.
    pub fn freq(&self, gpu: usize) -> &TimeSeries {
        &self.freq_mhz[gpu]
    }

    /// Utilization series of a GPU.
    pub fn util(&self, gpu: usize) -> &TimeSeries {
        &self.util[gpu]
    }

    /// PCIe throughput series of a GPU.
    pub fn pcie(&self, gpu: usize) -> &TimeSeries {
        &self.pcie_gbps[gpu]
    }

    /// Overwrite one GPU's series with a copy of another's (symmetry-folded
    /// runs replicate the representative replica's telemetry onto the
    /// replicas they skipped).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn copy_gpu(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        self.power_w[to] = self.power_w[from].clone();
        self.temp_c[to] = self.temp_c[from].clone();
        self.freq_mhz[to] = self.freq_mhz[from].clone();
        self.util[to] = self.util[from].clone();
        self.pcie_gbps[to] = self.pcie_gbps[from].clone();
    }

    /// Total energy across all GPUs, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.power_w.iter().map(TimeSeries::integrate).sum()
    }

    /// Cluster-mean of per-GPU average power, watts.
    pub fn mean_power_w(&self) -> f64 {
        mean(self.power_w.iter().map(TimeSeries::mean))
    }

    /// Peak instantaneous power of any GPU, watts.
    pub fn peak_power_w(&self) -> f64 {
        self.power_w
            .iter()
            .map(TimeSeries::peak)
            .fold(0.0, f64::max)
    }

    /// Cluster-mean of per-GPU average temperature, °C.
    pub fn mean_temp_c(&self) -> f64 {
        mean(self.temp_c.iter().map(TimeSeries::mean))
    }

    /// Peak temperature of any GPU, °C.
    pub fn peak_temp_c(&self) -> f64 {
        self.temp_c.iter().map(TimeSeries::peak).fold(0.0, f64::max)
    }

    /// Cluster-mean of per-GPU average clock, MHz.
    pub fn mean_freq_mhz(&self) -> f64 {
        mean(self.freq_mhz.iter().map(TimeSeries::mean))
    }

    /// Aggregate PCIe throughput series: sums samples across GPUs at each
    /// recorded timestamp (assumes aligned sampling, which the simulator
    /// guarantees).
    pub fn aggregate_pcie(&self) -> TimeSeries {
        let mut out = TimeSeries::new();
        if self.pcie_gbps.is_empty() || self.pcie_gbps[0].is_empty() {
            return out;
        }
        let n = self.pcie_gbps[0].len();
        for i in 0..n {
            let t = self.pcie_gbps[0].times()[i];
            let total: f64 = self
                .pcie_gbps
                .iter()
                .filter_map(|s| s.values().get(i))
                .sum();
            out.push(t, total);
        }
        out
    }
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(p: f64) -> GpuSample {
        GpuSample {
            power_w: p,
            temp_c: 50.0,
            freq_mhz: 1980.0,
            util: 0.9,
            pcie_gbps: 2.0,
        }
    }

    #[test]
    fn record_and_query() {
        let mut s = TelemetryStore::new(2);
        s.record(0, 0.0, sample(100.0));
        s.record(0, 1.0, sample(200.0));
        s.record(1, 0.0, sample(300.0));
        s.record(1, 1.0, sample(300.0));
        assert_eq!(s.power(0).len(), 2);
        assert!((s.mean_power_w() - 225.0).abs() < 1e-9);
        assert_eq!(s.peak_power_w(), 300.0);
    }

    #[test]
    fn total_energy_sums_gpus() {
        let mut s = TelemetryStore::new(2);
        for gpu in 0..2 {
            s.record(gpu, 0.0, sample(100.0));
            s.record(gpu, 10.0, sample(100.0));
        }
        assert!((s.total_energy_j() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_pcie_sums_across_gpus() {
        let mut s = TelemetryStore::new(3);
        for gpu in 0..3 {
            s.record(gpu, 0.0, sample(1.0));
            s.record(gpu, 1.0, sample(1.0));
        }
        let agg = s.aggregate_pcie();
        assert_eq!(agg.len(), 2);
        assert!((agg.values()[0] - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_store_is_harmless() {
        let s = TelemetryStore::new(0);
        assert_eq!(s.total_energy_j(), 0.0);
        assert_eq!(s.mean_power_w(), 0.0);
        assert!(s.aggregate_pcie().is_empty());
    }
}
