//! Task/step definitions: the vocabulary of the execution trace.

use serde::{Deserialize, Serialize};

use charllm_net::{ChunkingPolicy, CollectiveKind};

/// Index of a collective instance within an [`crate::ExecutionTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CollectiveId(pub u32);

impl CollectiveId {
    /// Raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The class of a compute kernel (drives FLOP rate, power activity and the
/// figure breakdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeKind {
    /// Dense projection/MLP GEMMs.
    Gemm,
    /// Attention score/context kernels (flash-attention style).
    Attention,
    /// Expert FFN GEMMs (MoE).
    MoeGemm,
    /// MoE router projection + top-k.
    Router,
    /// Embedding lookup.
    Embedding,
    /// Activation recomputation (re-run forward kernels before backward).
    Recompute,
    /// Optimizer step (memory-bound elementwise).
    Optimizer,
}

impl ComputeKind {
    /// Power-model activity weight of this kernel class.
    pub fn activity(self) -> f64 {
        match self {
            ComputeKind::Gemm | ComputeKind::MoeGemm => 1.0,
            ComputeKind::Attention | ComputeKind::Recompute => 0.82,
            ComputeKind::Router | ComputeKind::Embedding | ComputeKind::Optimizer => 0.55,
        }
    }

    /// Model-FLOP-utilization achieved by kernels of this class at boost
    /// clock (calibrated to typical Hopper/CDNA2 training MFU).
    pub fn mfu(self) -> f64 {
        match self {
            ComputeKind::Gemm | ComputeKind::MoeGemm => 0.55,
            ComputeKind::Attention | ComputeKind::Recompute => 0.40,
            ComputeKind::Router | ComputeKind::Embedding => 0.10,
            // Optimizer FLOPs are pre-converted from memory-bound time.
            ComputeKind::Optimizer => 1.0,
        }
    }
}

/// The reporting buckets the paper's kernel-breakdown figures use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelClass {
    /// Dense + expert GEMMs.
    Gemm,
    /// Attention kernels.
    Attention,
    /// Recomputation forward kernels.
    Recompute,
    /// Everything else on the compute stream.
    OtherCompute,
    /// Pipeline / P2P traffic.
    SendRecv,
    /// AllReduce collectives (TP + DP).
    AllReduce,
    /// AllGather collectives (ZeRO-1 / FSDP).
    AllGather,
    /// ReduceScatter collectives (ZeRO-1 / FSDP).
    ReduceScatter,
    /// MoE All-to-All.
    AllToAll,
    /// Idle (pipeline bubbles, stragglers) — derived, not emitted.
    Idle,
}

impl KernelClass {
    /// All classes in display order.
    pub fn all() -> [KernelClass; 10] {
        [
            KernelClass::Gemm,
            KernelClass::Attention,
            KernelClass::Recompute,
            KernelClass::OtherCompute,
            KernelClass::SendRecv,
            KernelClass::AllReduce,
            KernelClass::AllGather,
            KernelClass::ReduceScatter,
            KernelClass::AllToAll,
            KernelClass::Idle,
        ]
    }

    /// Whether this is a communication class.
    pub fn is_comm(self) -> bool {
        matches!(
            self,
            KernelClass::SendRecv
                | KernelClass::AllReduce
                | KernelClass::AllGather
                | KernelClass::ReduceScatter
                | KernelClass::AllToAll
        )
    }

    /// The bucket a compute kind reports into.
    pub fn of_compute(kind: ComputeKind) -> KernelClass {
        match kind {
            ComputeKind::Gemm | ComputeKind::MoeGemm => KernelClass::Gemm,
            ComputeKind::Attention => KernelClass::Attention,
            ComputeKind::Recompute => KernelClass::Recompute,
            ComputeKind::Router | ComputeKind::Embedding | ComputeKind::Optimizer => {
                KernelClass::OtherCompute
            }
        }
    }

    /// The bucket a collective reports into.
    pub fn of_collective(kind: CollectiveKind) -> KernelClass {
        match kind {
            CollectiveKind::SendRecv | CollectiveKind::Broadcast => KernelClass::SendRecv,
            CollectiveKind::AllReduce => KernelClass::AllReduce,
            CollectiveKind::AllGather => KernelClass::AllGather,
            CollectiveKind::ReduceScatter => KernelClass::ReduceScatter,
            CollectiveKind::AllToAll => KernelClass::AllToAll,
        }
    }
}

impl std::fmt::Display for KernelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            KernelClass::Gemm => "GEMM",
            KernelClass::Attention => "Attention",
            KernelClass::Recompute => "Recompute",
            KernelClass::OtherCompute => "OtherCompute",
            KernelClass::SendRecv => "SendRecv",
            KernelClass::AllReduce => "AllReduce",
            KernelClass::AllGather => "AllGather",
            KernelClass::ReduceScatter => "ReduceScatter",
            KernelClass::AllToAll => "AllToAll",
            KernelClass::Idle => "Idle",
        };
        f.write_str(s)
    }
}

/// One step in a rank's ordered execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Step {
    /// Run a compute kernel of `flops` boost-normalized FLOPs.
    Compute {
        /// Kernel class.
        kind: ComputeKind,
        /// Boost-clock-normalized FLOPs.
        flops: f64,
    },
    /// Arrive at a collective (non-blocking). Group collectives launch once
    /// every member arrived; eager P2P sends launch immediately.
    CollStart {
        /// The collective instance.
        coll: CollectiveId,
    },
    /// Block until a collective instance completes.
    CollWait {
        /// The collective instance.
        coll: CollectiveId,
    },
}

/// A collective shared by a group of ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveInstance {
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Per-rank buffer bytes.
    pub bytes_per_rank: u64,
    /// Participating ranks (rank order defines the ring).
    pub group: Vec<usize>,
    /// Message chunking policy.
    pub chunking: ChunkingPolicy,
    /// Eager point-to-point: launches when the *sender* arrives rather than
    /// when the whole group has arrived.
    pub eager_p2p: bool,
}

impl CollectiveInstance {
    /// The reporting bucket.
    pub fn class(&self) -> KernelClass {
        KernelClass::of_collective(self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_is_hottest_kernel() {
        for k in [
            ComputeKind::Attention,
            ComputeKind::Router,
            ComputeKind::Embedding,
            ComputeKind::Optimizer,
            ComputeKind::Recompute,
        ] {
            assert!(k.activity() <= ComputeKind::Gemm.activity());
        }
    }

    #[test]
    fn mfu_in_unit_range() {
        for k in [
            ComputeKind::Gemm,
            ComputeKind::Attention,
            ComputeKind::MoeGemm,
            ComputeKind::Router,
            ComputeKind::Embedding,
            ComputeKind::Recompute,
            ComputeKind::Optimizer,
        ] {
            assert!(k.mfu() > 0.0 && k.mfu() <= 1.0);
        }
    }

    #[test]
    fn compute_classes_map_to_paper_buckets() {
        assert_eq!(
            KernelClass::of_compute(ComputeKind::MoeGemm),
            KernelClass::Gemm
        );
        assert_eq!(
            KernelClass::of_compute(ComputeKind::Recompute),
            KernelClass::Recompute
        );
        assert_eq!(
            KernelClass::of_compute(ComputeKind::Optimizer),
            KernelClass::OtherCompute
        );
    }

    #[test]
    fn collective_classes_map_one_to_one() {
        assert_eq!(
            KernelClass::of_collective(CollectiveKind::AllToAll),
            KernelClass::AllToAll
        );
        assert_eq!(
            KernelClass::of_collective(CollectiveKind::SendRecv),
            KernelClass::SendRecv
        );
        assert!(KernelClass::of_collective(CollectiveKind::AllReduce).is_comm());
    }

    #[test]
    fn idle_is_not_comm() {
        assert!(!KernelClass::Idle.is_comm());
        assert!(!KernelClass::Gemm.is_comm());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(KernelClass::SendRecv.to_string(), "SendRecv");
        assert_eq!(KernelClass::AllToAll.to_string(), "AllToAll");
    }
}
