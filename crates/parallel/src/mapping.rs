//! Rank-to-parallel-coordinate mapping in the NeMo/Megatron order.
//!
//! Both frameworks assign ranks in the order **TP → EP → DP → PP** (§3.1):
//! tensor-parallel neighbours get consecutive ranks (and therefore land in
//! the same node under the default placement), while pipeline stages are the
//! slowest-varying dimension (and therefore span nodes). This ordering is
//! what makes TP communication node-local and PP communication cross-node in
//! the paper's measurements.

use serde::{Deserialize, Serialize};

use crate::spec::ParallelismSpec;

/// The coordinates of a rank in the 4-D parallelism grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RankCoords {
    /// Tensor-parallel index (fastest-varying).
    pub tp: usize,
    /// Expert-parallel index.
    pub ep: usize,
    /// Data-parallel index.
    pub dp: usize,
    /// Pipeline stage (slowest-varying).
    pub pp: usize,
}

/// Bidirectional rank ↔ coordinate mapping plus communication-group queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankGrid {
    spec: ParallelismSpec,
}

impl RankGrid {
    /// Build the grid for a spec.
    pub fn new(spec: ParallelismSpec) -> Self {
        RankGrid { spec }
    }

    /// The spec this grid was built from.
    pub fn spec(&self) -> &ParallelismSpec {
        &self.spec
    }

    /// Total ranks.
    pub fn world(&self) -> usize {
        self.spec.world()
    }

    /// Coordinates of a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world()`.
    pub fn coords(&self, rank: usize) -> RankCoords {
        assert!(rank < self.world(), "rank {rank} out of range");
        let s = &self.spec;
        let tp = rank % s.tp;
        let ep = (rank / s.tp) % s.ep;
        let dp = (rank / (s.tp * s.ep)) % s.dp;
        let pp = rank / (s.tp * s.ep * s.dp);
        RankCoords { tp, ep, dp, pp }
    }

    /// Rank of a coordinate tuple.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds its width.
    pub fn rank(&self, c: RankCoords) -> usize {
        let s = &self.spec;
        assert!(
            c.tp < s.tp && c.ep < s.ep && c.dp < s.dp && c.pp < s.pp,
            "coords out of range"
        );
        c.tp + s.tp * (c.ep + s.ep * (c.dp + s.dp * c.pp))
    }

    /// The tensor-parallel group of a rank (all ranks differing only in tp).
    pub fn tp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.spec.tp)
            .map(|tp| self.rank(RankCoords { tp, ..c }))
            .collect()
    }

    /// The expert-parallel group of a rank.
    pub fn ep_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.spec.ep)
            .map(|ep| self.rank(RankCoords { ep, ..c }))
            .collect()
    }

    /// The data-parallel group of a rank (gradient AllReduce / FSDP group).
    pub fn dp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.spec.dp)
            .map(|dp| self.rank(RankCoords { dp, ..c }))
            .collect()
    }

    /// The pipeline group of a rank, ordered by stage.
    pub fn pp_group(&self, rank: usize) -> Vec<usize> {
        let c = self.coords(rank);
        (0..self.spec.pp)
            .map(|pp| self.rank(RankCoords { pp, ..c }))
            .collect()
    }

    /// The rank holding the next pipeline stage for this rank's (tp, ep, dp)
    /// column, or `None` at the last stage.
    pub fn pp_next(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.pp + 1 < self.spec.pp).then(|| self.rank(RankCoords { pp: c.pp + 1, ..c }))
    }

    /// The rank holding the previous pipeline stage, or `None` at stage 0.
    pub fn pp_prev(&self, rank: usize) -> Option<usize> {
        let c = self.coords(rank);
        (c.pp > 0).then(|| self.rank(RankCoords { pp: c.pp - 1, ..c }))
    }

    /// All ranks at a given pipeline stage.
    pub fn ranks_at_stage(&self, stage: usize) -> Vec<usize> {
        (0..self.world())
            .filter(|&r| self.coords(r).pp == stage)
            .collect()
    }

    /// Whether this rank executes the first pipeline stage (embedding).
    pub fn is_first_stage(&self, rank: usize) -> bool {
        self.coords(rank).pp == 0
    }

    /// Whether this rank executes the last pipeline stage (LM head / loss).
    pub fn is_last_stage(&self, rank: usize) -> bool {
        self.coords(rank).pp == self.spec.pp - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(tp: usize, pp: usize, ep: usize, dp: usize) -> RankGrid {
        RankGrid::new(ParallelismSpec::new(tp, pp, ep, dp, false).unwrap())
    }

    #[test]
    fn roundtrip_all_ranks() {
        let g = grid(2, 4, 2, 2);
        for r in 0..g.world() {
            assert_eq!(g.rank(g.coords(r)), r);
        }
    }

    #[test]
    fn tp_is_fastest_varying() {
        // Consecutive ranks should differ only in tp index: this is what
        // keeps TP groups inside a node under the default placement.
        let g = grid(4, 4, 1, 2);
        let c0 = g.coords(0);
        let c1 = g.coords(1);
        assert_eq!(c1.tp, c0.tp + 1);
        assert_eq!((c1.ep, c1.dp, c1.pp), (c0.ep, c0.dp, c0.pp));
    }

    #[test]
    fn pp_is_slowest_varying() {
        let g = grid(4, 4, 1, 2);
        // Ranks 0..8 are stage 0; ranks 8..16 stage 1, etc.
        for r in 0..8 {
            assert_eq!(g.coords(r).pp, 0);
        }
        for r in 8..16 {
            assert_eq!(g.coords(r).pp, 1);
        }
    }

    #[test]
    fn ep_between_tp_and_dp() {
        // NeMo/Megatron order TP -> EP -> DP -> PP: with tp=2, ep=4, ranks
        // 0..2 share ep=0, ranks 2..4 have ep=1, ...
        let g = grid(2, 2, 4, 1);
        assert_eq!(g.coords(0).ep, 0);
        assert_eq!(g.coords(2).ep, 1);
        assert_eq!(g.coords(6).ep, 3);
    }

    #[test]
    fn tp_group_is_consecutive() {
        let g = grid(4, 2, 1, 4);
        assert_eq!(g.tp_group(5), vec![4, 5, 6, 7]);
        assert!(g.tp_group(5).contains(&5));
    }

    #[test]
    fn dp_group_strides_by_tp_times_ep() {
        let g = grid(2, 2, 2, 4);
        // stride between dp neighbours = tp*ep = 4.
        let group = g.dp_group(0);
        assert_eq!(group, vec![0, 4, 8, 12]);
    }

    #[test]
    fn pp_group_ordered_by_stage() {
        let g = grid(2, 4, 1, 2);
        let group = g.pp_group(1);
        assert_eq!(group.len(), 4);
        for (stage, &r) in group.iter().enumerate() {
            assert_eq!(g.coords(r).pp, stage);
        }
    }

    #[test]
    fn pp_neighbours() {
        let g = grid(2, 4, 1, 2);
        let r = 1; // stage 0
        let next = g.pp_next(r).unwrap();
        assert_eq!(g.coords(next).pp, 1);
        assert_eq!(g.pp_prev(next), Some(r));
        assert_eq!(g.pp_prev(r), None);
        let last = g.pp_group(r)[3];
        assert_eq!(g.pp_next(last), None);
    }

    #[test]
    fn stage_membership() {
        let g = grid(2, 4, 1, 2);
        let stage0 = g.ranks_at_stage(0);
        assert_eq!(stage0.len(), 4);
        for r in stage0 {
            assert!(g.is_first_stage(r));
            assert!(!g.is_last_stage(r));
        }
        assert_eq!(g.ranks_at_stage(3).len(), 4);
    }

    #[test]
    fn group_sizes_match_widths() {
        let g = grid(2, 4, 2, 2);
        assert_eq!(g.tp_group(0).len(), 2);
        assert_eq!(g.ep_group(0).len(), 2);
        assert_eq!(g.dp_group(0).len(), 2);
        assert_eq!(g.pp_group(0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        grid(2, 2, 1, 1).coords(4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_spec() -> impl Strategy<Value = ParallelismSpec> {
        (1usize..=8, 1usize..=8, 1usize..=4, 1usize..=4).prop_map(|(tp, pp, ep, dp)| {
            ParallelismSpec::new(tp, pp, ep, dp, false).expect("non-zero widths")
        })
    }

    proptest! {
        #[test]
        fn rank_coords_roundtrip(spec in arb_spec()) {
            let g = RankGrid::new(spec);
            for rank in 0..g.world() {
                prop_assert_eq!(g.rank(g.coords(rank)), rank);
            }
        }

        #[test]
        fn groups_partition_the_world(spec in arb_spec()) {
            let g = RankGrid::new(spec);
            // Every rank appears in exactly one TP group; groups are disjoint
            // and cover the world.
            let mut seen = vec![false; g.world()];
            for rank in 0..g.world() {
                if g.tp_group(rank)[0] == rank {
                    for r in g.tp_group(rank) {
                        prop_assert!(!seen[r], "rank {} in two tp groups", r);
                        seen[r] = true;
                    }
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn every_group_contains_self(spec in arb_spec(), seed in 0usize..1000) {
            let g = RankGrid::new(spec);
            let rank = seed % g.world();
            prop_assert!(g.tp_group(rank).contains(&rank));
            prop_assert!(g.ep_group(rank).contains(&rank));
            prop_assert!(g.dp_group(rank).contains(&rank));
            prop_assert!(g.pp_group(rank).contains(&rank));
        }

        #[test]
        fn pp_chain_is_consistent(spec in arb_spec(), seed in 0usize..1000) {
            let g = RankGrid::new(spec);
            let rank = seed % g.world();
            if let Some(next) = g.pp_next(rank) {
                prop_assert_eq!(g.pp_prev(next), Some(rank));
            }
        }
    }
}
