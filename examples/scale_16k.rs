//! 16k-GPU power-cap sweep in seconds: symmetry folding on a two-tier
//! rail-optimized SuperPod.
//!
//! GPT-3 175B at tp8·pp16·dp128 on 2048 HGX H100 nodes (16384 GPUs).
//! All 128 data-parallel replicas are congruent, so the folded engine
//! steps only replica 0 (128 ranks / 16 nodes) and expands the results —
//! each sweep point finishes in single-digit seconds where the unfolded
//! engine would grind through 16384 rank streams. The [`SimCache`] shares
//! one lowered trace and one collective-plan set across every cap.
//!
//! ```sh
//! cargo run --release --example scale_16k
//! ```

use std::time::Instant;

use charllm::SimCache;
use charllm_hw::presets;
use charllm_models::{presets as models, TrainJob};
use charllm_parallel::{ParallelismSpec, PipelineSchedule, Placement, StagePartition};
use charllm_sim::fold::{self, FoldOptions};
use charllm_sim::SimConfig;
use charllm_trace::{lower_train_folded, DeviceHints};

/// Per-point wall-clock budget: the acceptance bar for a 16k-GPU sim.
const WALL_BUDGET_S: f64 = 10.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2048 HGX nodes × 8 H100 behind an 8-rail leaf tier + spine tier.
    let cluster = presets::hgx_h100_superpod(2048, 8);
    let spec = ParallelismSpec::infer_dp(8, 16, 1, cluster.num_gpus(), false)?;
    let job = TrainJob::pretrain(models::gpt3_175b()).with_global_batch(1024);
    let partition = StagePartition::even(job.arch.num_layers, spec.pp)?;
    let hints = DeviceHints::for_spec(cluster.gpu());
    let placement = Placement::identity(&cluster, spec.world())?;

    println!(
        "== {} on {} ({} GPUs, tp{}·pp{}·dp{}) ==",
        job.arch.name,
        cluster.name(),
        cluster.num_gpus(),
        spec.tp,
        spec.pp,
        spec.dp
    );

    let t = Instant::now();
    let folded = lower_train_folded(&job, &spec, PipelineSchedule::OneFOneB, &partition, &hints)?;
    println!(
        "folded lowering: ×{} replicas, {} representative ranks, {:.2} s",
        folded.multiplicity,
        folded.rep_ranks.len(),
        t.elapsed().as_secs_f64()
    );

    // One lowered trace, one plan set, four power-cap points.
    let cache = SimCache::new();
    let lowered_key = SimCache::lowered_key(
        &job,
        &spec,
        PipelineSchedule::OneFOneB,
        &partition,
        &hints,
        None,
    );
    let opts = FoldOptions {
        expand_telemetry: false,
        ..FoldOptions::default()
    };

    let caps: [Option<f64>; 4] = [None, Some(600.0), Some(500.0), Some(400.0)];
    let mut max_wall_s = 0.0f64;
    for cap in caps {
        let mut cfg = SimConfig::fast();
        cfg.iterations = 5;
        cfg.warmup_iterations = 1;
        cfg.uniform_variability = true;
        cfg.gpu_power_cap_w = cap;
        let (shared, plan_hit) = cache.plans(
            &cluster,
            &placement,
            &lowered_key,
            &folded.trace,
            folded.multiplicity,
        );
        let t = Instant::now();
        let (result, stats) = fold::run_folded(
            &cluster,
            &placement,
            &folded,
            &spec,
            cfg,
            Some(shared),
            &opts,
        )?;
        let wall_s = t.elapsed().as_secs_f64();
        max_wall_s = max_wall_s.max(wall_s);
        let cap_label = cap.map_or("none".to_string(), |w| format!("{w:.0} W"));
        println!(
            "cap {cap_label:>6} | step {:.2} s | {:.2} Mtokens/s | {:.3} tokens/J | \
             {:.2} MJ/step | wall {wall_s:.2} s | {} events (×{} ≈ {:.1}M events/s-eq) | \
             plans {}",
            result.step_time_s,
            result.tokens_per_s / 1e6,
            result.tokens_per_joule,
            result.energy_per_step_j / 1e6,
            stats.events,
            folded.multiplicity,
            stats.events as f64 * f64::from(folded.multiplicity) / wall_s / 1e6,
            if plan_hit.is_hit() { "hit" } else { "miss" },
        );
        println!(
            "            calendar: {} rekeys | {} bucket drains ({:.1} pops/drain) | \
             overflow peak {}",
            stats.cal_rekeys,
            stats.cal_bucket_drains,
            stats.heap_pops as f64 / stats.cal_bucket_drains.max(1) as f64,
            stats.cal_overflow_peak,
        );
        println!(
            "            arena: {} slot reuses | {} exact calendar removals | \
             {} parallel re-rate batches",
            stats.arena_slot_reuses, stats.cal_exact_removals, stats.parallel_rerate_batches,
        );
    }

    let s = cache.stats();
    println!(
        "sweep cache: plans {} hits / {} lookups",
        s.plan_hits,
        s.plan_hits + s.plan_misses
    );
    if max_wall_s < WALL_BUDGET_S {
        println!("wall budget: max {max_wall_s:.2} s within {WALL_BUDGET_S:.0} s budget: OK");
    } else {
        println!("wall budget: max {max_wall_s:.2} s exceeds {WALL_BUDGET_S:.0} s budget: FAIL");
        std::process::exit(1);
    }
    Ok(())
}
