//! Lowering workloads into execution traces.

pub mod fold;
mod grad_sync;
mod inference;
mod layer;

pub use fold::{lower_train_folded, FoldedCollective, FoldedJob};
pub use inference::{lower_inference, InferenceConfig};

use serde::{Deserialize, Serialize};

use charllm_hw::GpuSpec;
use charllm_models::{ModelError, TrainJob};
use charllm_net::{ChunkingPolicy, CollectiveKind};
use charllm_parallel::{
    ParallelError, ParallelismSpec, PipelineOp, PipelineSchedule, RankGrid, StagePartition,
};

use crate::builder::{CollKey, TraceBuilder};
use crate::task::ComputeKind;
use crate::trace::{ExecutionTrace, TraceMeta};

/// Device quantities the lowering needs to convert memory-bound kernels
/// (optimizer steps) into boost-normalized FLOPs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceHints {
    /// Peak FP16/BF16 FLOP/s at boost clock.
    pub peak_fp16_flops: f64,
    /// HBM bandwidth, GB/s.
    pub hbm_bw_gbps: f64,
}

impl DeviceHints {
    /// Extract from a GPU spec.
    pub fn for_spec(spec: &GpuSpec) -> Self {
        DeviceHints {
            peak_fp16_flops: spec.peak_fp16_flops,
            hbm_bw_gbps: spec.hbm_bw_gbps,
        }
    }
}

/// Errors raised during lowering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceError {
    /// Parallelism configuration problem.
    Parallel(ParallelError),
    /// Workload configuration problem.
    Model(ModelError),
    /// Partition/schedule mismatch with the spec.
    Mismatch(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parallel(e) => write!(f, "{e}"),
            TraceError::Model(e) => write!(f, "{e}"),
            TraceError::Mismatch(m) => write!(f, "lowering mismatch: {m}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<ParallelError> for TraceError {
    fn from(e: ParallelError) -> Self {
        TraceError::Parallel(e)
    }
}

impl From<ModelError> for TraceError {
    fn from(e: ModelError) -> Self {
        TraceError::Model(e)
    }
}

/// A lowered workload: the trace plus quantities downstream consumers need.
///
/// Serializable so a persistent cache can store lowered jobs on disk and
/// later processes can reload them instead of lowering again (lowering is
/// deterministic, so the reloaded artifact is byte-identical).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredJob {
    /// The per-rank execution trace of one training iteration.
    pub trace: ExecutionTrace,
    /// Gradient bytes one stage-0 rank contributes to DP synchronization
    /// (input to the §7.1 projection).
    pub grad_bytes_per_rank: u64,
}

/// Shared lowering context.
pub(crate) struct Ctx<'a> {
    pub job: &'a TrainJob,
    pub spec: &'a ParallelismSpec,
    pub grid: RankGrid,
    pub partition: &'a StagePartition,
    pub hints: &'a DeviceHints,
    /// Tokens per microbatch.
    pub tokens_mb: f64,
    /// Virtual chunks per stage.
    pub chunks: usize,
}

impl Ctx<'_> {
    /// Activation (or activation-grad) bytes one TP rank ships across a
    /// pipeline boundary for one microbatch: `s·b·h·2 / tp`.
    pub fn p2p_bytes(&self) -> u64 {
        ((self.tokens_mb * self.job.arch.hidden as f64 * 2.0) / self.spec.tp as f64) as u64
    }

    /// Full activation bytes of one microbatch (`s·b·h·2`) — the TP
    /// AllReduce buffer.
    pub fn tp_ar_bytes(&self) -> u64 {
        (self.tokens_mb * self.job.arch.hidden as f64 * 2.0) as u64
    }

    /// Global layer index of `(stage, chunk, layer_in_chunk)`.
    pub fn global_layer(&self, stage: usize, chunk: usize, layer: usize) -> usize {
        // Chunk c of stage s holds the (c·pp + s)-th slice of the model.
        let layers_per_chunk = self.partition.layers(stage) / self.chunks;
        let mut base = 0;
        for vs in 0..(chunk * self.spec.pp + stage) {
            let s = vs % self.spec.pp;
            base += self.partition.layers(s) / self.chunks;
        }
        let _ = layers_per_chunk;
        base + layer
    }

    /// Layers held by one `(stage, chunk)`.
    pub fn layers_in_chunk(&self, stage: usize) -> usize {
        self.partition.layers(stage) / self.chunks
    }

    /// Chunking policy for pipeline SendRecv transfers: monolithic by
    /// default (the framework behaviour §4.2 observes), NCCL-style when the
    /// `chunked_p2p` ablation is enabled.
    pub fn p2p_chunking(&self) -> ChunkingPolicy {
        if self.job.optim.chunked_p2p {
            ChunkingPolicy::nccl_default()
        } else {
            ChunkingPolicy::Unchunked
        }
    }
}

/// Lower one training iteration.
///
/// # Errors
///
/// Returns [`TraceError`] when the job, spec, partition and schedule are
/// mutually inconsistent (world/stage mismatch, indivisible batch geometry,
/// interleaving constraints).
pub fn lower_train(
    job: &TrainJob,
    spec: &ParallelismSpec,
    schedule: PipelineSchedule,
    partition: &StagePartition,
    hints: &DeviceHints,
) -> Result<LoweredJob, TraceError> {
    let (b, meta, grad_bytes_per_rank) =
        lower_train_parts(job, spec, schedule, partition, hints, false)?;
    Ok(LoweredJob {
        trace: b.build(meta),
        grad_bytes_per_rank,
    })
}

/// Shared body of [`lower_train`] and [`fold::lower_train_folded`]: validate
/// the configuration and lower rank streams into a builder.
///
/// With `reps_only`, only representative (dp == 0) ranks receive step
/// streams; every other rank's stream stays empty, and collectives touched
/// exclusively by non-representative ranks are never instantiated. Group
/// lists of the collectives that *are* created still name the full original
/// membership — the folded-lowering wrapper rewrites them.
pub(crate) fn lower_train_parts(
    job: &TrainJob,
    spec: &ParallelismSpec,
    schedule: PipelineSchedule,
    partition: &StagePartition,
    hints: &DeviceHints,
    reps_only: bool,
) -> Result<(TraceBuilder, TraceMeta, u64), TraceError> {
    job.validate_for_dp(spec.dp)?;
    if partition.num_stages() != spec.pp {
        return Err(TraceError::Mismatch(format!(
            "partition has {} stages but spec.pp = {}",
            partition.num_stages(),
            spec.pp
        )));
    }
    let chunks = schedule.chunks();
    if chunks == 0 {
        return Err(TraceError::Mismatch("schedule with zero chunks".into()));
    }
    for stage in 0..spec.pp {
        if !partition.layers(stage).is_multiple_of(chunks) {
            return Err(TraceError::Mismatch(format!(
                "stage {stage} holds {} layers, not divisible into {chunks} chunks",
                partition.layers(stage)
            )));
        }
    }
    if job.arch.is_moe() {
        let experts = job.arch.moe.expect("checked is_moe").num_experts;
        if spec.ep > experts || !experts.is_multiple_of(spec.ep) {
            return Err(TraceError::Mismatch(format!(
                "ep width {} does not divide {experts} experts",
                spec.ep
            )));
        }
    }

    let grid = RankGrid::new(*spec);
    let num_mb = job.num_microbatches(spec.dp);
    let ctx = Ctx {
        job,
        spec,
        grid,
        partition,
        hints,
        tokens_mb: job.tokens_per_microbatch() as f64,
        chunks,
    };

    let mut b = TraceBuilder::new(spec.world());
    for rank in 0..spec.world() {
        let coords = ctx.grid.coords(rank);
        if reps_only && coords.dp != 0 {
            continue;
        }
        let ops = schedule.ops(coords.pp, spec.pp, num_mb)?;
        let backward_total = ops.iter().filter(|o| !o.is_forward()).count();
        let overlap_start_after = backward_total / 4;
        let mut backward_done = 0usize;
        let mut grad_sync = grad_sync::GradSync::plan(&ctx, rank);
        for op in &ops {
            match *op {
                PipelineOp::Forward { mb, chunk } => {
                    lower_forward(&mut b, &ctx, rank, mb, chunk);
                }
                PipelineOp::Backward { mb, chunk } => {
                    lower_backward(&mut b, &ctx, rank, mb, chunk);
                    backward_done += 1;
                    if job.optim.cc_overlap && backward_done == overlap_start_after.max(1) {
                        grad_sync.start_overlapped(&mut b, rank);
                    }
                }
            }
        }
        grad_sync.finish(&mut b, &ctx, rank);
    }

    let grad_bytes_per_rank = grad_sync::grad_bytes(&ctx, 0);
    let meta = TraceMeta {
        label: format!("{} {} {}", job.arch.name, spec.label(), job.optim.label()),
        tokens_per_iteration: job.tokens_per_step(),
        cc_overlap: job.optim.cc_overlap,
    };
    Ok((b, meta, grad_bytes_per_rank))
}

pub(crate) fn lower_forward(
    b: &mut TraceBuilder,
    ctx: &Ctx<'_>,
    rank: usize,
    mb: usize,
    chunk: usize,
) {
    let c = ctx.grid.coords(rank);
    let pp = ctx.spec.pp;
    let vstage = chunk * pp + c.pp;
    let last_vstage = ctx.chunks * pp - 1;
    let col0 = ctx.grid.rank(charllm_parallel::RankCoords { pp: 0, ..c }) as u32;

    // Receive activations from the previous virtual stage.
    if vstage > 0 {
        let prev_rank = rank_of_vstage(ctx, c, vstage - 1);
        let id = b.collective(
            CollKey {
                site: "act-f",
                mb: mb as u32,
                layer: 0,
                aux: vstage as u32,
                group_lead: col0,
            },
            CollectiveKind::SendRecv,
            ctx.p2p_bytes(),
            vec![prev_rank, rank],
            ctx.p2p_chunking(),
            true,
        );
        b.wait(rank, id);
    } else {
        // Embedding lookup on the true first stage.
        b.compute(
            rank,
            ComputeKind::Embedding,
            ctx.tokens_mb * ctx.job.arch.hidden as f64 * 2.0,
        );
    }

    // FSDP: prefetch the first layer's parameters, then gather layer L+1
    // while computing layer L (the implicit overlap real FSDP provides).
    let layers = ctx.layers_in_chunk(c.pp);
    let mut pending_ag = if layers > 0 {
        let gl = ctx.global_layer(c.pp, chunk, 0);
        let id = layer::fsdp_allgather(b, ctx, rank, mb, gl, layer::Pass::Forward);
        if let Some(id) = id {
            b.start(rank, id);
        }
        id
    } else {
        None
    };
    for layer in 0..layers {
        let gl = ctx.global_layer(c.pp, chunk, layer);
        if let Some(id) = pending_ag.take() {
            b.wait(rank, id);
        }
        if layer + 1 < layers {
            let next_gl = ctx.global_layer(c.pp, chunk, layer + 1);
            pending_ag = layer::fsdp_allgather(b, ctx, rank, mb, next_gl, layer::Pass::Forward);
            if let Some(id) = pending_ag {
                b.start(rank, id);
            }
        }
        layer::emit_layer(b, ctx, rank, mb, gl, layer::Pass::Forward);
    }

    if vstage == last_vstage {
        // LM head + loss.
        let logits = ctx.tokens_mb * 2.0 * (ctx.job.arch.hidden * ctx.job.arch.vocab) as f64
            / ctx.spec.tp as f64;
        b.compute(rank, ComputeKind::Gemm, logits);
    } else {
        // Eager send to the next virtual stage.
        let next_rank = rank_of_vstage(ctx, c, vstage + 1);
        let id = b.collective(
            CollKey {
                site: "act-f",
                mb: mb as u32,
                layer: 0,
                aux: (vstage + 1) as u32,
                group_lead: col0,
            },
            CollectiveKind::SendRecv,
            ctx.p2p_bytes(),
            vec![rank, next_rank],
            ctx.p2p_chunking(),
            true,
        );
        b.start(rank, id);
    }
}

fn lower_backward(b: &mut TraceBuilder, ctx: &Ctx<'_>, rank: usize, mb: usize, chunk: usize) {
    let c = ctx.grid.coords(rank);
    let pp = ctx.spec.pp;
    let vstage = chunk * pp + c.pp;
    let last_vstage = ctx.chunks * pp - 1;
    let col0 = ctx.grid.rank(charllm_parallel::RankCoords { pp: 0, ..c }) as u32;

    // Receive gradients from the next virtual stage.
    if vstage < last_vstage {
        let next_rank = rank_of_vstage(ctx, c, vstage + 1);
        let id = b.collective(
            CollKey {
                site: "act-b",
                mb: mb as u32,
                layer: 0,
                aux: vstage as u32,
                group_lead: col0,
            },
            CollectiveKind::SendRecv,
            ctx.p2p_bytes(),
            vec![next_rank, rank],
            ctx.p2p_chunking(),
            true,
        );
        b.wait(rank, id);
    } else {
        // Loss backward (logits grad GEMM; input-grad only when the LM head
        // is frozen under LoRA).
        let head_mult = if ctx.job.optim.lora.is_some() {
            2.0
        } else {
            4.0
        };
        let logits = ctx.tokens_mb * head_mult * (ctx.job.arch.hidden * ctx.job.arch.vocab) as f64
            / ctx.spec.tp as f64;
        b.compute(rank, ComputeKind::Gemm, logits);
    }

    // Full activation recomputation re-runs the chunk's forward first.
    if ctx.job.optim.activation_recompute {
        let mut recompute_flops = 0.0;
        for layer in 0..ctx.layers_in_chunk(c.pp) {
            let gl = ctx.global_layer(c.pp, chunk, layer);
            recompute_flops += layer::layer_fwd_flops(ctx, gl);
        }
        b.compute(rank, ComputeKind::Recompute, recompute_flops);
    }

    // FSDP: re-gather parameters for backward with the same one-layer
    // prefetch, and reduce-scatter each layer's gradients asynchronously,
    // waiting only at the end of the op.
    let layers = ctx.layers_in_chunk(c.pp);
    let bwd_order: Vec<usize> = (0..layers).rev().collect();
    let mut pending_ag = bwd_order.first().and_then(|&l| {
        let gl = ctx.global_layer(c.pp, chunk, l);
        let id = layer::fsdp_allgather(b, ctx, rank, mb, gl, layer::Pass::Backward);
        if let Some(id) = id {
            b.start(rank, id);
        }
        id
    });
    let mut pending_rs = Vec::new();
    for (pos, &layer) in bwd_order.iter().enumerate() {
        let gl = ctx.global_layer(c.pp, chunk, layer);
        if let Some(id) = pending_ag.take() {
            b.wait(rank, id);
        }
        if let Some(&next_layer) = bwd_order.get(pos + 1) {
            let next_gl = ctx.global_layer(c.pp, chunk, next_layer);
            pending_ag = layer::fsdp_allgather(b, ctx, rank, mb, next_gl, layer::Pass::Backward);
            if let Some(id) = pending_ag {
                b.start(rank, id);
            }
        }
        layer::emit_layer(b, ctx, rank, mb, gl, layer::Pass::Backward);
        if let Some(id) = layer::fsdp_reducescatter(b, ctx, rank, mb, gl) {
            b.start(rank, id);
            pending_rs.push(id);
        }
    }
    for id in pending_rs {
        b.wait(rank, id);
    }

    // Eager send of input gradients to the previous virtual stage.
    if vstage > 0 {
        let prev_rank = rank_of_vstage(ctx, c, vstage - 1);
        let id = b.collective(
            CollKey {
                site: "act-b",
                mb: mb as u32,
                layer: 0,
                aux: (vstage - 1) as u32,
                group_lead: col0,
            },
            CollectiveKind::SendRecv,
            ctx.p2p_bytes(),
            vec![rank, prev_rank],
            ctx.p2p_chunking(),
            true,
        );
        b.start(rank, id);
    }
}

/// The rank holding a virtual stage within the same (tp, ep, dp) column.
fn rank_of_vstage(ctx: &Ctx<'_>, c: charllm_parallel::RankCoords, vstage: usize) -> usize {
    let pp = vstage % ctx.spec.pp;
    ctx.grid.rank(charllm_parallel::RankCoords { pp, ..c })
}

#[cfg(test)]
mod tests {
    use super::*;
    use charllm_hw::GpuModel;
    use charllm_models::presets;
    use charllm_parallel::StagePartition;

    fn hints() -> DeviceHints {
        DeviceHints::for_spec(&GpuModel::H200.spec())
    }

    fn lower(job: &TrainJob, spec: ParallelismSpec, schedule: PipelineSchedule) -> LoweredJob {
        let partition = StagePartition::even(job.arch.num_layers, spec.pp).unwrap();
        lower_train(job, &spec, schedule, &partition, &hints()).unwrap()
    }

    #[test]
    fn gpt3_tp8_pp4_lowers_and_validates() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let lowered = lower(&job, spec, PipelineSchedule::OneFOneB);
        let problems = lowered.trace.validate();
        assert!(problems.is_empty(), "{problems:?}");
        assert_eq!(lowered.trace.world(), 32);
        assert!(lowered.grad_bytes_per_rank > 0);
    }

    #[test]
    fn total_flops_approximates_six_nd() {
        // Sum of compute FLOPs across ranks should approximate
        // 3x forward = ~6·N·D per step (within kernel bookkeeping slack).
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let lowered = lower(&job, spec, PipelineSchedule::OneFOneB);
        let got = lowered.trace.total_flops();
        let expect = 6.0 * job.arch.total_params() as f64 * job.tokens_per_step() as f64;
        let rel = (got - expect).abs() / expect;
        assert!(
            rel < 0.15,
            "total flops {got:e} vs 6ND {expect:e} (rel {rel:.3})"
        );
    }

    #[test]
    fn recompute_adds_forward_flops() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(2, 16, 1, 64, false).unwrap();
        let base = lower(&job, spec, PipelineSchedule::OneFOneB);
        let with = lower(
            &job.clone().with_recompute(true),
            spec,
            PipelineSchedule::OneFOneB,
        );
        let ratio = with.trace.total_flops() / base.trace.total_flops();
        // One extra forward on ~3 passes worth of compute: ~1.33x.
        assert!((1.2..1.45).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn moe_traces_emit_all_to_all() {
        use charllm_net::CollectiveKind;
        let job = TrainJob::pretrain(presets::mixtral_8x7b());
        let spec = ParallelismSpec::infer_dp(1, 4, 8, 32, false).unwrap();
        let lowered = lower(&job, spec, PipelineSchedule::OneFOneB);
        let a2a = lowered
            .trace
            .collectives()
            .iter()
            .filter(|c| c.kind == CollectiveKind::AllToAll)
            .count();
        assert!(a2a > 0, "expert parallelism must emit all-to-all");
        assert!(lowered.trace.validate().is_empty());
    }

    #[test]
    fn dense_traces_have_no_all_to_all() {
        use charllm_net::CollectiveKind;
        let job = TrainJob::pretrain(presets::llama3_70b());
        let spec = ParallelismSpec::infer_dp(4, 4, 1, 32, false).unwrap();
        let lowered = lower(&job, spec, PipelineSchedule::OneFOneB);
        assert!(lowered
            .trace
            .collectives()
            .iter()
            .all(|c| c.kind != CollectiveKind::AllToAll));
    }

    #[test]
    fn tp_width_controls_allreduce_count() {
        use charllm_net::CollectiveKind;
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let tp8 = lower(
            &job,
            ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap(),
            PipelineSchedule::OneFOneB,
        );
        let tp1 = lower(
            &job.clone().with_recompute(true),
            ParallelismSpec::infer_dp(1, 32, 1, 32, false).unwrap(),
            PipelineSchedule::OneFOneB,
        );
        let count = |l: &LoweredJob| {
            l.trace
                .collectives()
                .iter()
                .filter(|c| c.kind == CollectiveKind::AllReduce && c.group.len() > 1)
                .count()
        };
        assert!(
            count(&tp8) > count(&tp1),
            "TP groups produce per-layer AllReduces"
        );
    }

    #[test]
    fn pipeline_p2p_messages_shrink_with_tp() {
        use charllm_net::CollectiveKind;
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let tp8 = lower(
            &job,
            ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap(),
            PipelineSchedule::OneFOneB,
        );
        let tp2 = lower(
            &job,
            ParallelismSpec::infer_dp(2, 16, 1, 32, false).unwrap(),
            PipelineSchedule::OneFOneB,
        );
        let p2p_bytes = |l: &LoweredJob| {
            l.trace
                .collectives()
                .iter()
                .find(|c| c.kind == CollectiveKind::SendRecv)
                .map(|c| c.bytes_per_rank)
                .unwrap()
        };
        // The TP+PP pathology: wider TP => each rank's P2P message is 1/tp.
        assert_eq!(p2p_bytes(&tp2), 4 * p2p_bytes(&tp8));
    }

    #[test]
    fn interleaved_schedule_lowers() {
        let job = TrainJob::pretrain(presets::gpt3_175b()).with_recompute(true);
        let spec = ParallelismSpec::infer_dp(2, 16, 1, 64, false).unwrap();
        // 96 layers / 16 stages = 6 per stage; v=2 chunks of 3.
        let lowered = lower(&job, spec, PipelineSchedule::Interleaved(2));
        assert!(lowered.trace.validate().is_empty());
    }

    #[test]
    fn mismatched_partition_rejected() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(8, 4, 1, 32, false).unwrap();
        let partition = StagePartition::even(96, 8).unwrap(); // pp=4 needed
        assert!(lower_train(
            &job,
            &spec,
            PipelineSchedule::OneFOneB,
            &partition,
            &hints()
        )
        .is_err());
    }

    #[test]
    fn indivisible_chunks_rejected() {
        let job = TrainJob::pretrain(presets::gpt3_175b());
        let spec = ParallelismSpec::infer_dp(2, 16, 1, 64, false).unwrap();
        let partition = StagePartition::even(96, 16).unwrap(); // 6 layers/stage
                                                               // v=4 does not divide 6.
        assert!(lower_train(
            &job,
            &spec,
            PipelineSchedule::Interleaved(4),
            &partition,
            &hints()
        )
        .is_err());
    }

    #[test]
    fn lora_shrinks_grad_sync_bytes() {
        let arch = presets::llama3_70b();
        let spec = ParallelismSpec::infer_dp(4, 4, 1, 32, false).unwrap();
        let full = lower(
            &TrainJob::pretrain(arch.clone()),
            spec,
            PipelineSchedule::OneFOneB,
        );
        let lora = lower(
            &TrainJob::lora_finetune(arch),
            spec,
            PipelineSchedule::OneFOneB,
        );
        assert!(lora.grad_bytes_per_rank < full.grad_bytes_per_rank / 50);
    }

    #[test]
    fn fsdp_emits_per_layer_gathers() {
        use charllm_net::CollectiveKind;
        let job = TrainJob::pretrain(presets::llama3_70b());
        let spec = ParallelismSpec::new(8, 1, 1, 4, true).unwrap();
        let lowered = lower(&job, spec, PipelineSchedule::OneFOneB);
        let ag = lowered
            .trace
            .collectives()
            .iter()
            .filter(|c| c.kind == CollectiveKind::AllGather)
            .count();
        let rs = lowered
            .trace
            .collectives()
            .iter()
            .filter(|c| c.kind == CollectiveKind::ReduceScatter)
            .count();
        assert!(ag > 100, "per-layer-per-microbatch gathers, got {ag}");
        assert!(rs > 100);
        assert!(lowered.trace.validate().is_empty());
    }
}
