/root/repo/target/debug/deps/charllm_bench-d93c0e3c48f96386.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcharllm_bench-d93c0e3c48f96386.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcharllm_bench-d93c0e3c48f96386.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
