//! Figure 8: kernel latency breakdown on the 1-GPU-per-node setup (four
//! nodes, no PCIe/NIC sharing): PP-heavy regions reduce communication time
//! while TP-heavy regions stay network-bottlenecked.

use charllm::prelude::*;
use charllm_bench::{banner, bench_job, save_json, try_run};

fn main() {
    banner(
        "Figure 8",
        "1-GPU-per-node: balanced interconnect, GPT3-13B + Mixtral-4x7B",
    );
    let cluster = single_gpu_per_node_cluster(4);
    let mut rows = Vec::new();
    let configs: Vec<(charllm_models::TransformerArch, Vec<&str>)> = vec![
        (gpt3_13b(), vec!["TP4-PP1", "TP2-PP2", "TP1-PP4"]),
        (
            mixtral_4x7b(),
            vec!["EP4-TP1-PP1", "EP2-TP2-PP1", "EP2-TP1-PP2", "TP1-PP4"],
        ),
    ];
    for (arch, labels) in configs {
        println!("\n--- {} ---", arch.name);
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>8}",
            "config", "compute s", "comm s", "comm %", "tok/s"
        );
        let job = bench_job(arch.clone());
        for label in labels {
            let Ok(spec) = ParallelismSpec::parse(label, 4) else {
                continue;
            };
            if let Some(r) = try_run(&cluster, &job, spec) {
                let k = r.mean_kernel_time();
                let share = k.comm_total() / k.busy_total().max(1e-9) * 100.0;
                println!(
                    "{:<14} {:>10.2} {:>10.2} {:>9.1}% {:>8.0}",
                    r.parallelism,
                    k.compute_total(),
                    k.comm_total(),
                    share,
                    r.tokens_per_s
                );
                rows.push(serde_json::json!({
                    "model": r.model,
                    "parallelism": r.parallelism,
                    "compute_s": k.compute_total(),
                    "comm_s": k.comm_total(),
                    "comm_share": share / 100.0,
                    "tokens_per_s": r.tokens_per_s,
                }));
            }
        }
    }
    save_json("fig08", &serde_json::Value::Array(rows));
    println!(
        "\nExpected shape: PP-only communication drops sharply; TP-heavy\n\
         setups keep >10x the communication time of PP-only even on a\n\
         balanced network; Mixtral stays communication-bound (>50%)."
    );
}
