//! Live sweep dashboard: a terminal renderer for the JSONL progress
//! stream, showing the cross-layer metrics hub while a 32-point sweep
//! runs — per-point outcomes, ETA, worker pool state, cache hit rates and
//! the engines' live gauges.
//!
//! On a TTY the screen redraws per finished point; when stdout is a pipe
//! (CI, `| tee`), the raw JSONL events stream through instead, followed by
//! the final Prometheus-text snapshot — the exact byte protocol a job
//! server would forward.
//!
//! ```sh
//! cargo run --release --example live_dashboard            # dashboard
//! cargo run --release --example live_dashboard | head -40 # JSONL + Prometheus
//! ```

use std::io::{IsTerminal, Write};
use std::sync::Arc;

use charllm::prelude::*;

/// A `Write` sink for the sweep's JSONL stream that renders each event as
/// a redrawn terminal dashboard instead of printing the line.
struct DashboardSink {
    hub: Arc<MetricsHub>,
    buf: Vec<u8>,
    lines_drawn: usize,
}

impl DashboardSink {
    fn new(hub: Arc<MetricsHub>) -> Self {
        DashboardSink {
            hub,
            buf: Vec::new(),
            lines_drawn: 0,
        }
    }

    fn render(&mut self, event: &ProgressEvent) {
        let snap = self.hub.snapshot();
        // Engine event rates are per-worker gauges; fold them for the
        // cluster-wide figure. Same for live flows.
        let mut event_rate = 0.0;
        let mut live_flows = 0.0;
        for (id, value) in snap.iter() {
            match id.name.as_str() {
                "sim_event_rate_per_s" => event_rate += value.as_f64(),
                "sim_live_flows" => live_flows += value.as_f64(),
                _ => {}
            }
        }
        let hits = snap.counter(
            "cache_lookups_total",
            &[("family", "lowered"), ("result", "hit")],
        ) + snap.counter(
            "cache_lookups_total",
            &[("family", "plans"), ("result", "hit")],
        );
        let lookups = snap.counter_sum("cache_lookups_total");
        let done = event.completed + event.skipped + event.failed;
        let width = 28usize;
        let filled = (width * done).checked_div(event.total).unwrap_or(0);
        let bar: String = "#".repeat(filled) + &"-".repeat(width - filled);
        let eta = if event.eta_s >= 0.0 {
            format!("{:.1}s", event.eta_s)
        } else {
            "--".to_string()
        };
        let mut out = std::io::stdout().lock();
        // Move the cursor back over the previous frame and redraw in place.
        if self.lines_drawn > 0 {
            let _ = write!(out, "\x1b[{}A", self.lines_drawn);
        }
        let frame = [
            format!(
                "sweep [{bar}] {done}/{} pts  elapsed {:.1}s  eta {eta}        ",
                event.total, event.elapsed_s
            ),
            format!(
                "  completed {}  skipped {}  failed {}        ",
                event.completed, event.skipped, event.failed
            ),
            format!(
                "  last: {} -> {}  {:.0} tok/s  {:.3} s/step        ",
                event.point, event.outcome, event.tokens_per_s, event.step_time_s
            ),
            format!(
                "  engine {:.2e} ev/s  {live_flows:.0} live flows  cache {hits}/{lookups} hits        ",
                event_rate
            ),
        ];
        for line in &frame {
            let _ = writeln!(out, "\x1b[2K{line}");
        }
        self.lines_drawn = frame.len();
        let _ = out.flush();
    }
}

impl Write for DashboardSink {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if let Ok(text) = std::str::from_utf8(&line) {
                if let Ok(event) = ProgressEvent::from_json_line(text.trim_end()) {
                    if event.event == "point" {
                        self.render(&event);
                    }
                }
            }
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Arc::new(single_hgx_node());
    let job = TrainJob::pretrain(gpt3_13b()).with_global_batch(8);
    let variants = vec![job.clone(), job.clone().with_cc_overlap(true)];
    // 4 specs x 2 variants x 4 microbatches = 32 points.
    let specs: Vec<ParallelismSpec> = ["TP2-PP2", "TP4-PP2", "TP2-PP4", "TP8"]
        .iter()
        .map(|l| ParallelismSpec::parse(l, cluster.num_gpus()))
        .collect::<Result<_, _>>()?;

    let hub = MetricsHub::new(8);
    let interactive = std::io::stdout().is_terminal();
    let stream = if interactive {
        Arc::new(ProgressStream::new(DashboardSink::new(Arc::clone(&hub))))
    } else {
        Arc::new(ProgressStream::stdout())
    };

    let outcomes = Sweep::new(Arc::clone(&cluster), job, specs)
        .with_job_variants(variants)
        .with_microbatches(vec![1, 2, 4, 8])
        .with_sim_config(SimConfig::fast())
        .workers(0)
        .with_metrics(Arc::clone(&hub))
        .stream(Arc::clone(&stream))
        .run_outcomes();

    let snapshot = hub.snapshot();
    let completed = snapshot.counter("sweep_points_completed_total", &[]);
    let skipped = snapshot.counter("sweep_points_skipped_total", &[]);
    if interactive {
        println!(
            "done: {completed} completed, {skipped} skipped across {} points",
            outcomes.len()
        );
        println!("final Prometheus snapshot: {} series", snapshot.len());
    } else {
        // Non-TTY consumers get the full scrape text after the JSONL.
        print!("{}", snapshot.prometheus_text());
    }

    // The hub's counters reconcile exactly with the returned outcomes.
    let reports: Vec<&RunReport> = outcomes.iter().filter_map(|o| o.report()).collect();
    assert_eq!(completed, reports.len() as u64, "hub and outcomes agree");
    let energy_mj: u64 = reports
        .iter()
        .map(|r| (r.energy_per_step_j * 1e3).round() as u64)
        .sum();
    assert_eq!(
        snapshot.counter("sweep_energy_per_step_mj_total", &[]),
        energy_mj,
        "energy counter reconciles with summed reports"
    );
    Ok(())
}
