/root/repo/target/debug/examples/config_search-965dfdb39707409a.d: examples/config_search.rs

/root/repo/target/debug/examples/config_search-965dfdb39707409a: examples/config_search.rs

examples/config_search.rs:
